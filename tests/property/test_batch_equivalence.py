"""Property tests: batched/chained execution ≡ per-item execution.

The executor promises that ``batch_mode`` and ``chaining`` are pure
performance knobs: for any job graph and any input stream, all three
execution modes produce identical sink contents AND identical
checkpoints.  These tests drive randomized streams (out-of-order
timestamps, watermark interleavings, two-sided joins) through the same
job under every mode and compare exactly.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import Element, Executor, JobBuilder, TumblingWindows

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}

stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=4),          # key
              st.floats(min_value=0.0, max_value=200.0,        # timestamp
                        allow_nan=False)),
    min_size=1, max_size=80)


def _to_elements(rows):
    return [Element(value={"k": k, "v": float(i)}, timestamp=ts)
            for i, (k, ts) in enumerate(rows)]


def _run_modes(make_builder, source_batch=256):
    out = {}
    for mode, flags in MODES.items():
        executor = Executor(make_builder().build(), **flags)
        executor.run(source_batch=source_batch)
        out[mode] = executor
    return out


def _assert_identical(executors):
    """Same sinks, same operator state, same source positions — exactly."""
    base = executors["per_item"]
    base_ckpt = base.checkpoint()
    for mode in ("batched", "chained"):
        other = executors[mode]
        for name, sink in base.sinks.items():
            assert other.sinks[name].elements == sink.elements, (mode, name)
        ckpt = other.checkpoint()
        assert ckpt.source_positions == base_ckpt.source_positions, mode
        assert ckpt.operator_state == base_ckpt.operator_state, mode
        assert ckpt.emitted_to_sinks == base_ckpt.emitted_to_sinks, mode


class TestWindowedEquivalence:
    @given(stream_strategy,
           st.integers(min_value=1, max_value=9),    # watermark cadence
           st.integers(min_value=1, max_value=32))   # source batch size
    @settings(max_examples=40, deadline=None)
    def test_out_of_order_windows(self, rows, emit_every, source_batch):
        elements = _to_elements(rows)

        def make_builder():
            builder = JobBuilder("eq")
            (builder.source("s", elements)
                    .map(lambda v: {"k": v["k"], "v": v["v"] * 2.0})
                    .with_watermarks(3.0, emit_every=emit_every)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"])
                    .sink("out"))
            return builder
        _assert_identical(_run_modes(make_builder, source_batch))

    @given(stream_strategy)
    @settings(max_examples=25, deadline=None)
    def test_late_side_output_equivalence(self, rows):
        # emit_late surfaces dropped records on the side output; the
        # late/on-time split depends on exact watermark interleaving, so
        # it is a sharp probe of batch segmentation.
        elements = _to_elements(rows)

        def make_builder():
            builder = JobBuilder("late")
            (builder.source("s", elements)
                    .with_watermarks(1.0, emit_every=2)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(5.0), "count", emit_late=True)
                    .sink("out"))
            return builder
        _assert_identical(_run_modes(make_builder))


class TestStatefulChains:
    @given(stream_strategy, st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_reduce_pipeline(self, rows, source_batch):
        elements = _to_elements(rows)

        def make_builder():
            builder = JobBuilder("red")
            (builder.source("s", elements)
                    .map(lambda v: v["v"])
                    .filter(lambda v: v != 13.0)
                    .key_by(lambda v: v % 3.0)
                    .reduce(lambda a, b: a + b)
                    .sink("out"))
            return builder
        _assert_identical(_run_modes(make_builder, source_batch))

    @given(stream_strategy)
    @settings(max_examples=25, deadline=None)
    def test_vectorized_equals_scalar_everywhere(self, rows):
        values = [float(i) for i, _ in enumerate(rows)]
        elements = [Element(v, float(i)) for i, v in enumerate(values)]

        def make_builder(vectorized):
            builder = JobBuilder("vec")
            source = builder.source("s", elements)
            if vectorized:
                (source.map(lambda v: v * 2.0 - 1.0, vectorized=True)
                       .filter(lambda v: v >= 3.0, vectorized=True)
                       .key_by(lambda v: v % 4.0, vectorized=True)
                       .reduce(np.add, vectorized=True)
                       .sink("out"))
            else:
                (source.map(lambda v: v * 2.0 - 1.0)
                       .filter(lambda v: v >= 3.0)
                       .key_by(lambda v: v % 4.0)
                       .reduce(lambda a, b: a + b)
                       .sink("out"))
            return builder

        reference = Executor(make_builder(False).build(),
                             batch_mode=False).run()["out"]
        expected = [(float(e.value), e.timestamp, float(e.key))
                    for e in reference.elements]
        for flags in MODES.values():
            got = Executor(make_builder(True).build(), **flags).run()["out"]
            assert [(float(e.value), e.timestamp, float(e.key))
                    for e in got.elements] == expected


class TestJoinEquivalence:
    @given(stream_strategy, stream_strategy,
           st.integers(min_value=1, max_value=24))
    @settings(max_examples=30, deadline=None)
    def test_interval_join_two_sided(self, left_rows, right_rows,
                                     source_batch):
        left = _to_elements(left_rows)
        right = _to_elements(right_rows)

        def make_builder():
            builder = JobBuilder("join")
            l = (builder.source("l", left)
                        .with_watermarks(2.0, emit_every=3)
                        .key_by(lambda v: v["k"]))
            r = (builder.source("r", right)
                        .with_watermarks(2.0, emit_every=3)
                        .key_by(lambda v: v["k"]))
            l.join(r, -5.0, 5.0).sink("out")
            return builder
        _assert_identical(_run_modes(make_builder, source_batch))


class TestCheckpointPortability:
    @given(stream_strategy, st.integers(min_value=1, max_value=6),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=30, deadline=None)
    def test_chained_checkpoint_restores_per_item(self, rows, cycles,
                                                  batch):
        """A snapshot taken mid-run under chained execution must restore
        into a per-item executor (and vice versa) and replay to the same
        final results — checkpoints are mode-portable because they
        capture the logical operators, not the execution plan."""
        elements = _to_elements(rows)

        def make_builder():
            builder = JobBuilder("port")
            (builder.source("s", elements)
                    .with_watermarks(5.0)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"])
                    .sink("out"))
            return builder

        expected = Executor(make_builder().build()).run()["out"].elements

        donor = Executor(make_builder().build(), batch_mode=True,
                         chaining=True)
        donor.run(source_batch=batch, max_cycles=cycles)
        checkpoint = donor.checkpoint()

        # Restore into a *fresh per-item* executor over the same logical
        # job; replay must land on the same sink contents.
        survivor = Executor(make_builder().build(), batch_mode=False)
        # Align the survivor's sink length with the snapshot's truncation
        # point by replaying the donor's sink prefix.
        survivor.sinks["out"].elements.extend(
            donor.sinks["out"].elements[:checkpoint.emitted_to_sinks["out"]])
        survivor.restore(checkpoint)
        assert survivor.run()["out"].elements == expected

    @given(stream_strategy, st.integers(min_value=1, max_value=6))
    @settings(max_examples=25, deadline=None)
    def test_batched_restore_replay_exact(self, rows, cycles):
        elements = _to_elements(rows)

        def make_builder():
            builder = JobBuilder("rr")
            (builder.source("s", elements)
                    .with_watermarks(5.0)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"])
                    .sink("out"))
            return builder

        expected = Executor(make_builder().build()).run()["out"].elements
        executor = Executor(make_builder().build())
        executor.run(source_batch=8, max_cycles=cycles)
        checkpoint = executor.checkpoint()
        executor.run()           # run ahead, then "crash"
        executor.restore(checkpoint)
        assert executor.run()["out"].elements == expected
