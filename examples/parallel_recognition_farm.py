"""Parallel execution (paper Sec. III: cloud-side scaling for AR
recognition workloads).

A recognition farm: four camera feeds (source splits) stream detection
confidences into one logical job — scale, threshold, per-camera
windowed aggregation.  The same job graph compiles to a physical plan
at parallelism 1, 2 and 4; results are bit-identical while the modelled
makespan shrinks, which is the paper's big-data answer to AR's
compute-hungry recognition path: fan the keyed work out, keep the
semantics.

Run:  python examples/parallel_recognition_farm.py
"""

from repro.streaming import (
    Element,
    JobBuilder,
    ParallelExecutor,
    TumblingWindows,
    compile_execution_graph,
)
from repro.util.rng import make_rng

N_FRAMES = 6_000
N_CAMERAS = 8
N_SPLITS = 4
WINDOW_S = 2.0


def _camera_frames() -> list[Element]:
    rng = make_rng(41)
    frames = []
    for i in range(N_FRAMES):
        frames.append(Element(
            value=float(rng.uniform(0.0, 1.0)),   # detector confidence
            timestamp=i * 0.002,
            key=f"cam-{int(rng.integers(0, N_CAMERAS))}"))
    return frames


def _build_job():
    builder = JobBuilder("recognition-farm")
    (builder.source("frames", _camera_frames(), splits=N_SPLITS)
            .with_watermarks(0.1, emit_every=64)
            .map(lambda c: c * 100.0, name="to_percent")
            .filter(lambda c: c >= 35.0, name="confident")
            .window(TumblingWindows(WINDOW_S), "mean", name="per_camera")
            .sink("detections"))
    return builder.build()


def main() -> None:
    print("physical plan at parallelism 4:")
    print(compile_execution_graph(_build_job(), 4).describe())

    results = {}
    makespans = {}
    for parallelism in (1, 2, 4):
        executor = ParallelExecutor(_build_job(), parallelism)
        executor.run(source_batch=512)
        results[parallelism] = sorted(
            repr(v) for v in executor.sinks["detections"].values)
        makespans[parallelism] = executor.modeled_makespan_s

    assert results[2] == results[1] and results[4] == results[1], \
        "parallelism changed the answer"
    print(f"\n{N_FRAMES} frames from {N_CAMERAS} cameras -> "
          f"{len(results[1])} windowed detection rates "
          "(identical at every parallelism)")
    print("\nmodelled makespan by parallelism:")
    for parallelism, makespan in makespans.items():
        speedup = makespans[1] / makespan
        bar = "#" * round(20 * makespan / makespans[1])
        print(f"  p={parallelism}: {makespan * 1e3:7.1f} ms  "
              f"{speedup:4.2f}x  {bar}")


if __name__ == "__main__":
    main()
