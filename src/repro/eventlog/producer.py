"""Producer: partition selection and append with delivery accounting.

Keyed records hash to a stable partition (so per-key order holds, the
property the streaming engine's key-by relies on); keyless records go
round-robin.  ``send`` returns the (partition, offset) coordinates.
"""

from __future__ import annotations

from typing import Any, Mapping

from ..util.clock import SimClock
from ..util.errors import BrokerDown
from ..util.ids import stable_hash
from ..util.retry import Retrier, RetryPolicy
from .broker import LogCluster
from .record import Record

# Re-exported: stable_hash historically lived here and callers import it
# from this module; the implementation moved to util.ids so the
# streaming layer's key groups hash identically without a cross-layer
# import.
__all__ = ["Producer", "stable_hash"]


class Producer:
    """Appends records to a log cluster.

    With ``idempotent=True`` the producer stamps every record with a
    (producer id, per-partition sequence) header and the cluster rejects
    duplicates — so a retry after an ambiguous failure cannot double-
    append (Kafka's idempotent-producer semantics).  ``send`` then
    returns the offset of the *original* append on a duplicate.

    A stable ``producer_id`` turns idempotence into *fencing*: a
    restarted incarnation reuses the same id and bumps the epoch, and the
    cluster rejects appends from the fenced predecessor.  That is the
    foundation of the transactional commit path
    (:meth:`begin_transaction` / :meth:`send_transactional` /
    :meth:`commit_transaction`) used by the streaming layer's
    two-phase-commit sinks: staged records buffer locally and only
    ``commit_transaction`` drives them into the log, each append retried
    idempotently so a broker flap mid-commit cannot tear or duplicate
    the transaction's records.
    """

    _next_producer_id = 0

    def __init__(self, cluster: LogCluster, clock: SimClock | None = None,
                 idempotent: bool = False, tracer: Any = None,
                 producer_id: int | None = None) -> None:
        self.cluster = cluster
        self.clock = clock
        self.idempotent = idempotent
        #: optional :class:`repro.obs.trace.Tracer` (duck-typed, like the
        #: executor's hooks).  When set, every ``send`` opens a "produce"
        #: span and stamps its context into the record's ``traceparent``
        #: header so consumers can parent their spans across the broker
        #: hop (W3C trace-context in miniature).
        self.tracer = tracer
        if producer_id is not None:
            self.producer_id = producer_id
            Producer._next_producer_id = max(Producer._next_producer_id,
                                             producer_id + 1)
        else:
            self.producer_id = Producer._next_producer_id
            Producer._next_producer_id += 1
        self.epoch = 0
        self._sequences: dict[tuple[str, int], int] = {}
        self._round_robin: dict[str, int] = {}
        self._txn: list[tuple[str, Any, str | None, float | None,
                              dict[str, str], int | None]] | None = None
        self.sent = 0
        self.bytes_sent = 0
        self.duplicates_rejected = 0
        self.retries = 0
        self.txn_commits = 0
        self.txn_aborts = 0

    def bump_epoch(self) -> int:
        """Start a new producer incarnation.

        The cluster fences appends from older epochs and resets the
        sequence space, so a restarted producer cannot collide with its
        previous self's in-flight sends."""
        self.epoch += 1
        self._sequences.clear()
        self._last_record = None
        return self.epoch

    def _choose_partition(self, topic: str, key: str | None) -> int:
        n = self.cluster.partition_count(topic)
        if key is not None:
            return stable_hash(key) % n
        cursor = self._round_robin.get(topic, 0)
        self._round_robin[topic] = cursor + 1
        return cursor % n

    def send(self, topic: str, value: Any, key: str | None = None,
             timestamp: float | None = None,
             headers: Mapping[str, str] | None = None,
             partition: int | None = None) -> tuple[int, int]:
        """Append one record; returns (partition, offset)."""
        if timestamp is None:
            timestamp = self.clock.now if self.clock is not None else 0.0
        if partition is None:
            partition = self._choose_partition(topic, key)
        all_headers = dict(headers or {})
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "produce", attrs={"topic": topic, "partition": partition})
            all_headers["traceparent"] = span.traceparent
        sequence = None
        if self.idempotent:
            sequence = self._sequences.get((topic, partition), -1) + 1
            self._sequences[(topic, partition)] = sequence
            all_headers["pid"] = str(self.producer_id)
            all_headers["epoch"] = str(self.epoch)
            all_headers["seq"] = str(sequence)
        record = Record(value=value, key=key, timestamp=timestamp,
                        headers=all_headers)
        try:
            if self.idempotent:
                # Remember the attempt *before* the append: an ambiguous
                # failure (applied but the ack was lost) must be retryable
                # via resend_last with the same sequence.
                self._last_record = (topic, partition, record, sequence,
                                     self.epoch)
                offset = self.cluster.append_idempotent(
                    topic, partition, record, self.producer_id, sequence,
                    epoch=self.epoch)
            else:
                offset = self.cluster.append(topic, partition, record)
        except Exception as exc:
            if span is not None:
                span.set_attr("error", type(exc).__name__)
                span.end()
            raise
        if span is not None:
            span.set_attr("offset", offset)
            span.end()
        self.sent += 1
        self.bytes_sent += record.size_bytes
        return partition, offset

    def resend_last(self) -> tuple[int, int]:
        """Retry the last idempotent send (e.g. after an ambiguous
        failure); the cluster deduplicates by (producer, epoch, seq)."""
        if not self.idempotent:
            raise ValueError("resend_last requires an idempotent producer")
        last = getattr(self, "_last_record", None)
        if last is None:
            raise ValueError("nothing sent yet")
        topic, partition, record, sequence, epoch = last
        span = None
        if self.tracer is not None:
            # The record keeps its original traceparent: a retry is the
            # same logical produce, so consumers still parent on the
            # first attempt's span.
            span = self.tracer.start_span(
                "produce:retry",
                attrs={"topic": topic, "partition": partition,
                       "seq": sequence})
        try:
            offset = self.cluster.append_idempotent(
                topic, partition, record, self.producer_id, sequence,
                epoch=epoch)
        except Exception as exc:
            if span is not None:
                span.set_attr("error", type(exc).__name__)
                span.end()
            raise
        if span is not None:
            span.set_attr("offset", offset)
            span.end()
        self.duplicates_rejected += 1
        return partition, offset

    def send_with_retry(self, topic: str, value: Any, key: str | None = None,
                        timestamp: float | None = None,
                        headers: Mapping[str, str] | None = None,
                        partition: int | None = None,
                        policy: RetryPolicy | None = None) -> tuple[int, int]:
        """``send`` with capped-backoff retries on :class:`BrokerDown`.

        For an idempotent producer the retries go through
        :meth:`resend_last`, so the sequence number is claimed once and
        an append that *applied* before the failure deduplicates instead
        of double-appending — at-least-once delivery with effectively-
        once log contents.  Non-idempotent producers simply re-send.
        """
        retrier = Retrier(policy or RetryPolicy(), clock=self.clock)
        state = {"started": False}

        def _attempt() -> tuple[int, int]:
            if state["started"] and self.idempotent:
                return self.resend_last()
            state["started"] = True
            return self.send(topic, value, key=key, timestamp=timestamp,
                             headers=headers, partition=partition)

        try:
            return retrier.call(_attempt, retry_on=(BrokerDown,))
        finally:
            self.retries += retrier.retries

    def send_batch(self, topic: str, values: list[Any],
                   key_fn=None) -> list[tuple[int, int]]:
        """Append many records; ``key_fn(value) -> key`` is optional."""
        coords = []
        for value in values:
            key = key_fn(value) if key_fn is not None else None
            coords.append(self.send(topic, value, key=key))
        return coords

    # -- transactional commit path -------------------------------------------

    @property
    def in_transaction(self) -> bool:
        return self._txn is not None

    def begin_transaction(self) -> None:
        """Open a transaction; requires an idempotent producer (the
        commit relies on sequence dedup to survive broker flaps)."""
        if not self.idempotent:
            raise ValueError("transactions require an idempotent producer")
        if self._txn is not None:
            raise ValueError("transaction already open")
        self._txn = []

    def send_transactional(self, topic: str, value: Any,
                           key: str | None = None,
                           timestamp: float | None = None,
                           headers: Mapping[str, str] | None = None,
                           partition: int | None = None) -> None:
        """Stage one record into the open transaction.  Nothing reaches
        the cluster until :meth:`commit_transaction`."""
        if self._txn is None:
            raise ValueError("no open transaction")
        self._txn.append((topic, value, key, timestamp,
                          dict(headers or {}), partition))

    def commit_transaction(
            self, policy: RetryPolicy | None = None) -> list[tuple[int, int]]:
        """Drive every staged record into the log and close the
        transaction; returns their (partition, offset) coordinates.

        Each append goes through :meth:`send_with_retry`, so an
        ambiguous broker failure mid-commit deduplicates on retry rather
        than tearing the transaction.  A fenced epoch (another
        incarnation took over) surfaces as the underlying
        :class:`~repro.util.errors.LogError` — the caller must not
        retry a fenced commit.
        """
        if self._txn is None:
            raise ValueError("no open transaction")
        staged, self._txn = self._txn, None
        coords = []
        for topic, value, key, timestamp, headers, partition in staged:
            coords.append(self.send_with_retry(
                topic, value, key=key, timestamp=timestamp, headers=headers,
                partition=partition, policy=policy))
        self.txn_commits += 1
        return coords

    def abort_transaction(self) -> int:
        """Discard the staged records; returns how many were dropped."""
        if self._txn is None:
            raise ValueError("no open transaction")
        dropped = len(self._txn)
        self._txn = None
        self.txn_aborts += 1
        return dropped
