"""AR-powered big data (paper Section 2, Figures 3-4).

The other direction of the convergence: AR as the visualization and
interaction layer *for* big data.  A team of analysts shares one live
social-stream analysis — windowed volumes, heavy-hitter topics, mined
associations — as an AR workspace: each analyst probes a private slice
without disturbing the others, and the interface sheds low-priority
content under its frame budget.

Run:  python examples/data_analyst_workspace.py
"""

import numpy as np

from repro import ARBigDataPipeline, PipelineConfig
from repro.analytics import HeavyHitters, LiftMiner
from repro.context import SemanticEntity
from repro.core import Probe
from repro.datagen import SocialStreamConfig, generate_posts
from repro.render.compositor import FrameBudget
from repro.util.rng import make_rng
from repro.vision import look_at


def main() -> None:
    rng = make_rng(67)
    pipeline = ARBigDataPipeline(PipelineConfig(seed=67))
    pipeline.create_topic("social", partitions=8)

    # -- a firehose of geotagged posts ------------------------------------
    pois = [(f"poi-{i:02d}", float(rng.uniform(0, 2000)),
             float(rng.uniform(0, 2000))) for i in range(30)]
    posts = generate_posts(rng, pois, SocialStreamConfig(
        rate_per_s=8.0, horizon_s=600.0, zipf_s=1.4,
        tagged_fraction=0.9))
    hitters = HeavyHitters(k=5, epsilon=0.01)
    miner = LiftMiner(min_support=0.02, min_confidence=0.15)
    basket: list[str] = []
    for post in posts:
        pipeline.ingest("social", {"user": post.user, "topic": post.topic,
                                   "poi": post.poi_id, "x": post.x,
                                   "y": post.y},
                        key=post.topic, timestamp=post.timestamp,
                        personal=True)
        hitters.add(post.topic)
        if post.poi_id:
            basket.append(post.poi_id)
            if len(basket) == 5:  # co-visit baskets per time slice
                miner.add_basket(basket)
                basket.clear()
    print(f"ingested {len(posts)} posts "
          f"({pipeline.producer.bytes_sent / 1024:.0f} KiB)")

    # -- streaming analytics ------------------------------------------------
    volumes = pipeline.windowed_aggregate(
        "social", key_fn=lambda v: v["topic"],
        value_fn=lambda v: 1.0, window_s=60.0, aggregate="count")
    print(f"\nper-topic minute volumes: {len(volumes)} windows")
    print("heavy-hitter topics:", hitters.top())
    rules = miner.rules(limit=3)
    for rule in rules:
        print(f"association: {rule.antecedent} -> {rule.consequent} "
              f"(lift {rule.lift:.1f})")

    # -- the workspace: results as spatial data blobs --------------------------
    topics = sorted({r.key for r in volumes})
    for i, topic in enumerate(topics):
        angle = 2 * np.pi * i / max(len(topics), 1)
        pipeline.add_entity(SemanticEntity(
            entity_id=f"blob:{topic}", entity_type="data-blob",
            position=np.array([0.9 * np.sin(angle),
                               0.55 * np.cos(angle), 4.0]),
            name=topic))
    pipeline.interpreter.register_default("volume")
    hot = {key for key, _est in hitters.top()}
    bound = pipeline.interpret_and_publish([
        {"tag": "volume", "subject": f"blob:{r.key}",
         "value": f"{r.value:.0f}/min",
         "priority": 10.0 if r.key in hot else 1.0}
        for r in volumes])
    print(f"\nworkspace content: {bound.bound} bound blobs "
          f"(coverage {bound.coverage:.0%})")

    # -- three analysts, three probes ------------------------------------------
    budget = FrameBudget(budget_ms=3.0)
    analysts = {}
    for name in ("alice", "bob", "carol"):
        analysts[name] = pipeline.open_session(name, budget=budget)
    analysts["alice"].open_probe(Probe(
        name="hot-only", predicate=lambda a: a.priority >= 10.0))
    analysts["bob"].open_probe(Probe(
        name="food-watch",
        predicate=lambda a: "food" in a.annotation_id))
    for session in analysts.values():
        session.sync()
    pose = look_at(eye=[0.0, 0.0, 0.0], target=[0.0, 0.0, 3.0])
    for name, session in analysts.items():
        frame = session.render(pose)
        probes = ", ".join(session.probes) or "none"
        print(f"{name:6s} (probe: {probes:10s}): {frame.drawn} blobs "
              f"drawn, {frame.shed_by_budget} shed by budget")
    # Probes are isolated: alice's filter never changed carol's view.
    assert analysts["carol"].visible_annotation_ids() >= \
        analysts["alice"].visible_annotation_ids()
    print("\nprobe isolation holds: carol sees a superset of alice")


if __name__ == "__main__":
    main()
