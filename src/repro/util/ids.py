"""Deterministic identifier generation.

Real distributed systems use UUIDs; a reproducible simulation cannot.
:class:`IdFactory` hands out readable, strictly increasing identifiers
(``"task-0001"``, ``"task-0002"``, ...) per namespace, so logs, tests and
benchmark output are stable run to run.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["IdFactory", "monotonic_ids"]


class IdFactory:
    """Per-namespace counters producing readable unique ids."""

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)

    def next(self, namespace: str) -> str:
        """Return the next id for ``namespace``, e.g. ``"frame-0007"``."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return f"{namespace}-{value:04d}"

    def next_int(self, namespace: str) -> int:
        """Return the next raw integer for ``namespace`` (starting at 0)."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return value

    def peek(self, namespace: str) -> int:
        """Return the integer the next call would use, without consuming."""
        return self._counters[namespace]


def monotonic_ids(namespace: str):
    """Infinite generator of ids for one namespace (convenience)."""
    factory = IdFactory()
    while True:
        yield factory.next(namespace)
