"""Ablation A1: what each rendering stage contributes (Section 2.1).

The paper argues AR visualization needs occlusion handling and content
that is "seamlessly integrated", not floating bubbles.  We ablate the
compositor on one dense scene: declutter on/off x occlusion policy
(ignore / hide / xray), reporting overlap, useful-label ratio, and how
much hidden-but-relevant content each policy preserves.
"""

import numpy as np

from repro.render import (
    Annotation,
    BoxOccluder,
    Compositor,
    OcclusionWorld,
    SceneGraph,
)
from repro.util.rng import make_rng
from repro.vision import CameraIntrinsics, look_at

from tableprint import print_table

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


def _scene(rng, n=60):
    scene = SceneGraph()
    for i in range(n):
        scene.add(Annotation(
            annotation_id=f"a{i:02d}",
            anchor=np.array([float(rng.uniform(-2.5, 2.5)),
                             float(rng.uniform(-1.5, 1.5)),
                             float(rng.uniform(4.0, 14.0))]),
            text=f"a{i}", priority=float(rng.uniform(0.5, 5.0)),
            width_px=70.0, height_px=20.0))
    return scene


def run_experiment():
    rng = make_rng(71)
    scene = _scene(rng)
    wall = OcclusionWorld([BoxOccluder("wall", (-3.0, -2.0, 8.0),
                                       (3.0, 2.0, 9.0))])
    pose = look_at(eye=[0.0, 0.0, 0.0], target=[0.0, 0.0, 10.0])
    rows = []
    for declutter in (False, True):
        for policy in ("ignore", "hide", "xray"):
            compositor = Compositor(INTR, occlusion=wall,
                                    occlusion_policy=policy,
                                    declutter=declutter)
            frame = compositor.compose(scene, pose)
            xray_items = sum(1 for item in frame.items
                             if item.xray and not item.label.dropped)
            rows.append([
                "on" if declutter else "off", policy, frame.drawn,
                frame.culled_occluded, xray_items,
                frame.layout.overlap_ratio,
                frame.layout.useful_ratio])
    return rows


def bench_a1_render_ablation(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A1  ablation: declutter x occlusion policy (60-label scene)",
        ["declutter", "occlusion", "drawn", "culled occluded",
         "xray styled", "overlap ratio", "useful ratio"],
        rows,
        note="'ignore'+no-declutter is the AR-browser baseline the paper "
             "criticizes; xray+declutter keeps hidden content visible "
             "AND legible")
    by_config = {(r[0], r[1]): r for r in rows}
    baseline = by_config[("off", "ignore")]
    best = by_config[("on", "xray")]
    # Declutter removes overlap entirely; baseline is badly overlapped.
    assert baseline[5] > 0.05
    assert best[5] == 0.0
    assert best[6] > baseline[6]
    # hide drops occluded content entirely; xray still *draws* occluded
    # content (in see-through style) — the capability hide lacks.
    hide = by_config[("on", "hide")]
    assert hide[3] > 0
    assert hide[4] == 0
    assert best[4] > 0
    assert best[2] > hide[2]  # xray view shows more of the scene
    # Occlusion detection itself is identical across declutter settings.
    assert by_config[("off", "hide")][3] == hide[3]
