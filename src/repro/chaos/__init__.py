"""Deterministic fault injection and crash-consistent recovery testing.

The chaos substrate the robustness suites are built on: seeded
:class:`FaultPlan` schedules, a :class:`FaultInjector` with counted
hooks threaded through the eventlog / streaming / offload layers, a
:class:`ChaosLogCluster` proxy for log-level faults, and a supervisor
harness (:func:`run_with_recovery`) that enforces the headline
invariant — sinks after recovery are bit-identical to the fault-free
run, for any seeded schedule.
"""

from .harness import (
    CoordinatedReport,
    RecoveryReport,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
    reference_operator_names,
    run_coordinated,
    run_with_recovery,
    two_region_job,
)
from .injector import ChaosLogCluster, FaultInjector
from .plan import (
    CORRUPT_TS_MODES,
    CORRUPT_VALUE_MODES,
    DATA_FAULT_KINDS,
    RESCALE_PHASES,
    SITE_APPEND,
    SITE_BARRIER,
    SITE_CHANNEL,
    SITE_CHECKPOINT,
    SITE_COORDINATOR,
    SITE_DATA,
    SITE_FETCH,
    SITE_OFFLOAD,
    SITE_OPERATOR,
    SITE_RESCALE,
    SITE_STALL,
    SITE_STORE,
    STORE_PHASES,
    FaultEvent,
    FaultPlan,
    FaultSpec,
)

__all__ = [
    "FaultSpec",
    "FaultPlan",
    "FaultEvent",
    "FaultInjector",
    "ChaosLogCluster",
    "RecoveryReport",
    "run_with_recovery",
    "CoordinatedReport",
    "run_coordinated",
    "reference_events",
    "reference_job",
    "reference_operator_names",
    "fault_free_sinks",
    "two_region_job",
    "canonical_sinks",
    "SITE_OPERATOR",
    "SITE_APPEND",
    "SITE_FETCH",
    "SITE_OFFLOAD",
    "SITE_CHANNEL",
    "SITE_BARRIER",
    "SITE_COORDINATOR",
    "SITE_STALL",
    "SITE_RESCALE",
    "RESCALE_PHASES",
    "SITE_STORE",
    "STORE_PHASES",
    "SITE_DATA",
    "SITE_CHECKPOINT",
    "DATA_FAULT_KINDS",
    "CORRUPT_VALUE_MODES",
    "CORRUPT_TS_MODES",
]
