"""Experiment F3 (Figure 3: the "Sight" retinal personal interface).

The figure envisions a personal information centre: "data from sensors,
apps, and Internet augment current views".  We fuse three per-user
streams (health wearable, messages, ambient sensors) into prioritized
personal overlay content under a strict per-frame render budget, and
measure sustained drawn-content rate and what gets shed as stream rate
grows — the device-intrusion constraint made quantitative.
"""

import numpy as np

from repro.context import SemanticEntity
from repro.core import ARBigDataPipeline, DEFAULT_INTRINSICS, PipelineConfig
from repro.render.compositor import FrameBudget
from repro.util.rng import make_rng
from repro.vision.camera import look_at

from tableprint import print_table

STREAM_RATES = [5, 20, 80, 320]  # notifications per sync interval


def run_experiment():
    rows = []
    for rate in STREAM_RATES:
        pipeline = ARBigDataPipeline(PipelineConfig(seed=23))
        rng = make_rng(23)
        # Personal HUD anchors: a ring of slots in front of the user.
        for i in range(64):
            angle = 2 * np.pi * i / 64
            pipeline.add_entity(SemanticEntity(
                entity_id=f"slot-{i:02d}", entity_type="hud-slot",
                position=np.array([2.0 * np.sin(angle),
                                   0.5 * np.cos(angle * 3), 4.0]),
                name=f"slot {i}"))
        for tag in ("health", "message", "ambient"):
            pipeline.interpreter.register_default(tag)
        session = pipeline.open_session(
            "wearer", budget=FrameBudget(budget_ms=2.0,
                                         cost_per_label_ms=0.25))
        results = []
        for k in range(rate):
            kind = ("health", "message", "ambient")[k % 3]
            priority = {"health": 10.0, "message": 3.0,
                        "ambient": 1.0}[kind]
            results.append({
                "tag": kind, "subject": f"slot-{k % 64:02d}",
                "value": f"{kind}-{k}",
                "priority": priority + float(rng.random()),
            })
        bound = pipeline.interpret_and_publish(results)
        session.sync()
        pose = look_at(eye=[0.0, 0.0, 0.0], target=[0.0, 0.0, 4.0])
        frame = session.render(pose)
        kinds_drawn = {}
        for item in frame.items:
            if not item.label.dropped:
                kinds_drawn[item.kind] = kinds_drawn.get(item.kind, 0) + 1
        rows.append([rate, bound.bound, frame.drawn,
                     frame.shed_by_budget,
                     kinds_drawn.get("health", 0),
                     kinds_drawn.get("message", 0),
                     kinds_drawn.get("ambient", 0)])
    return rows


def bench_fig3_personal_interface(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F3  Figure 3: personal retinal interface under frame budget",
        ["stream rate", "bound", "drawn", "shed by budget",
         "health drawn", "messages drawn", "ambient drawn"],
        rows,
        note="2 ms frame budget (8 labels): as streams grow, shedding "
             "keeps health content and drops ambient first")
    # Light load: nothing shed.
    assert rows[0][3] == 0
    # Heavy load: the budget sheds, drawn content stays bounded.
    assert rows[-1][3] > 0
    drawn = [r[2] for r in rows]
    assert max(drawn) <= 8  # the 2 ms budget cap
    # Priority preserved under pressure: health survives over ambient.
    heavy = rows[-1]
    assert heavy[4] >= heavy[6]
    assert heavy[4] > 0
