"""Synthetic scene imaging — the camera we don't have.

Renders a textured world plane (Z=0) through the pinhole model by
inverse warping: for every image pixel, cast a ray, intersect the plane,
bilinear-sample the texture.  Sensor noise and global illumination gain
make the images honest enough to exercise the full detect->match->pose
pipeline and measure registration error against ground truth.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import VisionError
from .camera import CameraIntrinsics, Pose

__all__ = ["make_texture", "render_plane", "PlanarTarget"]


def make_texture(rng: np.random.Generator, size: int = 256,
                 blobs: int = 60, checker: int = 8) -> np.ndarray:
    """A feature-rich texture: checkerboard base + random dark blobs.

    Checker corners plus blob edges give the corner detector plenty of
    stable structure at many scales.
    """
    if size < 32:
        raise VisionError("texture size must be >= 32")
    ys, xs = np.mgrid[0:size, 0:size]
    cell = max(1, size // checker)
    texture = (((xs // cell) + (ys // cell)) % 2).astype(float) * 0.35 + 0.45
    for _ in range(blobs):
        cx, cy = rng.uniform(0, size, size=2)
        radius = rng.uniform(size * 0.01, size * 0.06)
        intensity = rng.uniform(0.0, 1.0)
        mask = (xs - cx) ** 2 + (ys - cy) ** 2 < radius ** 2
        texture[mask] = intensity
    return np.clip(texture, 0.0, 1.0)


class PlanarTarget:
    """A textured rectangle on the world plane Z=0.

    World coordinates: the target spans [0, width_m] x [0, height_m] in
    (X, Y), texture row 0 at Y=0.
    """

    def __init__(self, texture: np.ndarray, width_m: float,
                 height_m: float) -> None:
        texture = np.asarray(texture, dtype=float)
        if texture.ndim != 2:
            raise VisionError("texture must be 2-D grayscale")
        if width_m <= 0 or height_m <= 0:
            raise VisionError("target physical size must be positive")
        self.texture = texture
        self.width_m = width_m
        self.height_m = height_m

    def texture_to_world(self, uv: np.ndarray) -> np.ndarray:
        """Texture pixel coords (Nx2, x right / y down) -> world Nx3 (Z=0)."""
        uv = np.atleast_2d(np.asarray(uv, dtype=float))
        th, tw = self.texture.shape
        x = uv[:, 0] / tw * self.width_m
        y = uv[:, 1] / th * self.height_m
        return np.column_stack([x, y, np.zeros(len(uv))])

    def world_to_texture(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        th, tw = self.texture.shape
        u = points[:, 0] / self.width_m * tw
        v = points[:, 1] / self.height_m * th
        return np.column_stack([u, v])


def _bilinear_sample(image: np.ndarray, u: np.ndarray, v: np.ndarray,
                     fill: float) -> np.ndarray:
    h, w = image.shape
    valid = (u >= 0) & (u <= w - 1) & (v >= 0) & (v <= h - 1)
    u_c = np.clip(u, 0, w - 1)
    v_c = np.clip(v, 0, h - 1)
    u0 = np.floor(u_c).astype(int)
    v0 = np.floor(v_c).astype(int)
    u1 = np.minimum(u0 + 1, w - 1)
    v1 = np.minimum(v0 + 1, h - 1)
    fu = u_c - u0
    fv = v_c - v0
    top = image[v0, u0] * (1 - fu) + image[v0, u1] * fu
    bottom = image[v1, u0] * (1 - fu) + image[v1, u1] * fu
    out = top * (1 - fv) + bottom * fv
    out[~valid] = fill
    return out


def render_plane(target: PlanarTarget, intrinsics: CameraIntrinsics,
                 pose: Pose, rng: np.random.Generator | None = None,
                 noise_sigma: float = 0.01, gain: float = 1.0,
                 background: float = 0.5) -> np.ndarray:
    """Render the target plane through the camera.

    ``gain`` models ambient-lighting variation (Section 2.1's rendering
    consideration); ``noise_sigma`` is additive sensor noise.
    """
    if gain <= 0:
        raise VisionError("gain must be positive")
    h, w = intrinsics.height, intrinsics.width
    vs, us = np.mgrid[0:h, 0:w]
    # Rays in camera frame through each pixel.
    x = (us - intrinsics.cx) / intrinsics.fx
    y = (vs - intrinsics.cy) / intrinsics.fy
    rays_cam = np.stack([x, y, np.ones_like(x)], axis=-1).reshape(-1, 3)
    # Camera center and ray directions in world frame.
    r_wc = pose.rotation.T
    center = pose.camera_center
    dirs_world = rays_cam @ r_wc.T
    # Intersect with plane Z=0: center_z + t*dir_z = 0.
    dir_z = dirs_world[:, 2]
    with np.errstate(divide="ignore", invalid="ignore"):
        t = -center[2] / dir_z
    valid = (dir_z != 0) & (t > 0)
    points = center[None, :] + t[:, None] * dirs_world
    uv = target.world_to_texture(points[:, :2])
    samples = _bilinear_sample(target.texture, uv[:, 0], uv[:, 1],
                               fill=background)
    samples[~valid] = background
    image = samples.reshape(h, w) * gain
    if rng is not None and noise_sigma > 0:
        image = image + rng.normal(0.0, noise_sigma, size=image.shape)
    return np.clip(image, 0.0, 1.0)
