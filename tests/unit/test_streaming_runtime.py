"""Unit tests: job graph validation, executor, checkpoints, connectors."""

import pytest

from repro.eventlog import LogCluster, Producer, TopicConfig
from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    TumblingWindows,
    log_sink,
    log_source,
)
from repro.util.errors import CheckpointError, JobGraphError


def _els(n, key_mod=2):
    return [Element(value={"k": i % key_mod, "v": float(i)},
                    timestamp=float(i)) for i in range(n)]


class TestJobGraph:
    def test_simple_chain_builds(self):
        builder = JobBuilder("j")
        builder.source("s", _els(3)).map(lambda v: v).sink("out")
        job = builder.build()
        assert job.topological_operators() == ["map_0"]

    def test_no_source_rejected(self):
        builder = JobBuilder("j")
        with pytest.raises(JobGraphError):
            builder.build()

    def test_duplicate_source_rejected(self):
        builder = JobBuilder("j")
        builder.source("s", _els(1))
        with pytest.raises(JobGraphError):
            builder.source("s", _els(1))

    def test_duplicate_operator_name_rejected(self):
        builder = JobBuilder("j")
        handle = builder.source("s", _els(1))
        handle.map(lambda v: v, name="m")
        with pytest.raises(JobGraphError):
            builder.source("s2", _els(1)).map(lambda v: v, name="m")

    def test_join_requires_both_sides(self):
        builder = JobBuilder("j")
        left = builder.source("l", _els(1)).key_by(lambda v: v["k"])
        right = builder.source("r", _els(1)).key_by(lambda v: v["k"])
        left.join(right, -1.0, 1.0).sink("out")
        job = builder.build()  # valid wiring builds fine
        assert "join_0" in job.operators

    def test_auto_names_increment(self):
        builder = JobBuilder("j")
        handle = builder.source("s", _els(1))
        handle = handle.map(lambda v: v).map(lambda v: v)
        handle.sink("out")
        job = builder.build()
        assert set(job.operators) == {"map_0", "map_1"}


class TestExecutor:
    def test_map_filter_pipeline(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(10))
                .map(lambda v: v["v"])
                .filter(lambda v: v >= 5.0)
                .sink("out"))
        sinks = Executor(builder.build()).run()
        assert sinks["out"].values == [5.0, 6.0, 7.0, 8.0, 9.0]

    def test_windowed_wordcount_like(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(20))
                .with_watermarks(0.0)
                .key_by(lambda v: v["k"])
                .window(TumblingWindows(10.0), "count")
                .sink("out"))
        sinks = Executor(builder.build()).run()
        results = {(r.key, r.window.start): r.value
                   for r in sinks["out"].values}
        assert results[(0, 0.0)] == 5
        assert results[(1, 0.0)] == 5
        assert results[(0, 10.0)] == 5

    def test_flush_fires_last_window(self):
        # Without flush the [10, 20) window would need a watermark past 20.
        builder = JobBuilder("j")
        (builder.source("s", _els(15))
                .with_watermarks(0.0)
                .key_by(lambda v: 0)
                .window(TumblingWindows(10.0), "count")
                .sink("out"))
        sinks = Executor(builder.build()).run()
        assert sum(r.value for r in sinks["out"].values) == 15

    def test_two_source_join(self):
        left_els = [Element(value={"k": "a", "side": "l", "i": i},
                            timestamp=float(i)) for i in range(5)]
        right_els = [Element(value={"k": "a", "side": "r", "i": i},
                             timestamp=float(i) + 0.5) for i in range(5)]
        builder = JobBuilder("j")
        left = builder.source("l", left_els).key_by(lambda v: v["k"])
        right = builder.source("r", right_els).key_by(lambda v: v["k"])
        (left.join(right, lower=0.0, upper=1.0,
                   project=lambda l, r: (l["i"], r["i"]))
             .sink("out"))
        sinks = Executor(builder.build()).run()
        # left i matches right i (+0.5) and right i-1 (-0.5 -> outside).
        assert sorted(sinks["out"].values) == [(i, i) for i in range(5)]

    def test_callable_source_reusable(self):
        builder = JobBuilder("j")
        builder.source("s", lambda: iter(_els(3))).sink("out")
        job = builder.build()
        assert len(Executor(job).run()["out"]) == 3
        assert len(Executor(job).run()["out"]) == 3  # re-runnable

    def test_drop_on_overflow_counts(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(100))
                .map(lambda v: v)
                .sink("out"))
        executor = Executor(builder.build(), channel_capacity=10,
                            drop_on_overflow=True)
        executor.run(source_batch=100)
        assert executor.dropped_overflow > 0
        assert len(executor.sinks["out"]) < 100

    def test_backpressure_counter(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(100))
                .map(lambda v: v)
                .sink("out"))
        executor = Executor(builder.build(), channel_capacity=10)
        executor.run(source_batch=100)
        assert executor.backpressure_events > 0
        assert len(executor.sinks["out"]) == 100  # nothing lost


class TestCheckpoint:
    def _job(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(20))
                .key_by(lambda v: v["k"])
                .reduce(lambda a, b: {"k": a["k"], "v": a["v"] + b["v"]})
                .sink("out"))
        return builder.build()

    def test_checkpoint_restore_replays_exactly(self):
        job = self._job()
        executor = Executor(job)
        full = [v["v"] for v in executor.run()["out"].values]
        # Fresh executor: run half, checkpoint, run rest, restore, re-run.
        job2_builder = JobBuilder("j2")
        (job2_builder.source("s", _els(20))
                     .key_by(lambda v: v["k"])
                     .reduce(lambda a, b: {"k": a["k"], "v": a["v"] + b["v"]})
                     .sink("out"))
        executor2 = Executor(job2_builder.build())
        executor2.run(source_batch=5, max_cycles=2)
        checkpoint = executor2.checkpoint()
        executor2.run()
        executor2.restore(checkpoint)
        replayed = [v["v"] for v in executor2.run()["out"].values]
        assert replayed == full

    def test_checkpoint_with_inflight_rejected(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(50))
                .map(lambda v: v)
                .map(lambda v: v)
                .sink("out"))
        executor = Executor(builder.build())
        # Manually stuff a channel to simulate in-flight data (the two
        # maps fuse under chaining, so grab whatever channel exists).
        channel = next(iter(executor._channels.values()))
        channel.append(Element(value=1, timestamp=0.0))
        with pytest.raises(CheckpointError):
            executor.checkpoint()


class TestLogConnectors:
    def test_log_source_reads_topic(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("in", partitions=2, replication=1))
        producer = Producer(cluster)
        for i in range(10):
            producer.send("in", {"i": i}, key=f"k{i % 3}",
                          timestamp=float(i))
        builder = JobBuilder("j")
        builder.source("in", log_source(cluster, "in")).sink("out")
        sinks = Executor(builder.build()).run()
        assert len(sinks["out"]) == 10
        assert {e.key for e in sinks["out"].elements} == {"k0", "k1", "k2"}

    def test_log_sink_writes_topic(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("out", partitions=1,
                                         replication=1))
        write = log_sink(cluster, "out")
        write(Element(value={"a": 1}, timestamp=1.0, key="k"))
        write(Element(value={"a": 2}, timestamp=2.0, key=7))
        assert cluster.end_offset("out", 0) == 2
