"""Two-phase-commit transactional sinks.

The coordinated-checkpoint protocol (see
:mod:`repro.streaming.coordinator`) makes sink output exactly-once by
turning every sink into a 2PC participant:

- elements delivered between barriers accumulate in an **open
  transaction** (invisible);
- when barrier *n* has arrived from **every** feeder subtask the open
  transaction **pre-commits** — it is sealed against checkpoint *n* and
  the sink acks the coordinator (phase 1);
- when the coordinator finalizes checkpoint *n* the sealed transaction
  **commits** and its elements become visible (phase 2);
- on recovery, uncommitted transactions are truncated and the visible
  output rewinds to exactly what checkpoint *n* recorded — so no
  element is ever exposed twice or lost, for any crash point.

:class:`TransactionalSink` is the in-memory collected sink
(:class:`~repro.streaming.runtime.SinkBuffer`-compatible surface).
:class:`TransactionalLogSink` mirrors committed output into an event-log
topic through a fenced idempotent producer; its resume point is derived
from the topic's end offsets, so a crash *between* checkpoint
finalization and the log append replays the delta idempotently —
end-to-end exactly-once into the log.
"""

from __future__ import annotations

from typing import Any, Hashable

from ..eventlog.broker import LogCluster
from ..eventlog.producer import Producer
from ..util.errors import CheckpointError
from .element import Element

__all__ = ["TransactionalSink", "TransactionalLogSink"]


class TransactionalSink:
    """A sink buffer whose output becomes visible only at commit.

    ``feeders`` are the upstream (node, subtask) pairs that merge into
    this sink; the sink pre-commits when each has delivered the barrier.
    Deliveries from feeders that already passed the barrier while others
    lag are staged into the *next* transaction, preserving arrival order
    within each epoch.
    """

    def __init__(self, name: str, feeders: tuple[Hashable, ...]) -> None:
        if not feeders:
            raise CheckpointError(f"sink {name!r} has no feeders")
        self.name = name
        self.feeders = tuple(feeders)
        self.committed: list[Element] = []
        self._staged: list[Element] = []
        self._staged_next: list[Element] = []
        self._barriered: set[Hashable] = set()
        self._barrier_id: int | None = None
        #: pre-committed transactions awaiting coordinator finalize
        self.pending: dict[int, list[Element]] = {}
        self.last_committed_id = -1
        self.pre_commits = 0
        self.commits = 0
        self.aborts = 0

    # -- SinkBuffer-compatible surface --------------------------------------

    @property
    def elements(self) -> list[Element]:
        """The committed (visible) output."""
        return self.committed

    @property
    def values(self) -> list[Any]:
        return [e.value for e in self.committed]

    def __len__(self) -> int:
        return len(self.committed)

    @property
    def uncommitted(self) -> int:
        """Elements staged or pre-committed but not yet visible."""
        return (len(self._staged) + len(self._staged_next)
                + sum(len(v) for v in self.pending.values()))

    # -- data plane ----------------------------------------------------------

    def deliver(self, items: list[Element], feeder: Hashable) -> None:
        """Stage delivered elements into the open transaction (or the
        next one, if this feeder already passed the pending barrier)."""
        if self._barrier_id is not None and feeder in self._barriered:
            self._staged_next.extend(items)
        else:
            self._staged.extend(items)

    def on_barrier(self, feeder: Hashable, checkpoint_id: int) -> int | None:
        """Barrier from one feeder.  Returns the checkpoint id when this
        completes phase 1 (pre-commit), else ``None``."""
        if checkpoint_id in self.pending \
                or checkpoint_id <= self.last_committed_id:
            return None  # duplicated/stale marker
        if self._barrier_id is None:
            self._barrier_id = checkpoint_id
            self._barriered = set()
        elif checkpoint_id < self._barrier_id:
            return None  # stale marker from an abandoned checkpoint
        elif checkpoint_id > self._barrier_id:
            # Newer barrier overtakes an abandoned one: restart with the
            # already-staged-next items folded back in arrival order.
            self._staged.extend(self._staged_next)
            self._staged_next = []
            self._barrier_id = checkpoint_id
            self._barriered = set()
        if feeder in self._barriered:
            return None  # duplicated marker
        self._barriered.add(feeder)
        if len(self._barriered) < len(self.feeders):
            return None
        # Phase 1: seal the open transaction against this checkpoint.
        cid = self._barrier_id
        self.pending[cid] = self._staged
        self._staged = self._staged_next
        self._staged_next = []
        self._barrier_id = None
        self._barriered = set()
        self.pre_commits += 1
        return cid

    # -- 2PC phase 2 / abort -------------------------------------------------

    def projected_committed(self, checkpoint_id: int) -> list[Element]:
        """What ``committed`` will be once ``checkpoint_id`` commits —
        recorded in the checkpoint before phase 2 runs, so recovery is
        correct whether or not the commit itself happened."""
        if checkpoint_id not in self.pending:
            raise CheckpointError(
                f"sink {self.name!r} has no pre-committed transaction "
                f"for checkpoint {checkpoint_id}")
        return self.committed + self.pending[checkpoint_id]

    def commit(self, checkpoint_id: int) -> int:
        """Phase 2: make the sealed transaction visible."""
        txn = self.pending.pop(checkpoint_id, None)
        if txn is None:
            raise CheckpointError(
                f"sink {self.name!r}: commit for unknown checkpoint "
                f"{checkpoint_id}")
        self.committed.extend(txn)
        self.last_committed_id = max(self.last_committed_id, checkpoint_id)
        self.commits += 1
        return len(txn)

    def abort_pending(self, checkpoint_id: int) -> None:
        """The coordinator abandoned ``checkpoint_id`` (e.g. it crashed
        before finalize): demote the sealed transaction back into the
        open one, ahead of anything staged since — nothing is lost, the
        elements simply commit with the next successful checkpoint."""
        txn = self.pending.pop(checkpoint_id, None)
        if txn is not None:
            self._staged = txn + self._staged
            self.aborts += 1

    def restore_elements(self, elements: list[Element]) -> None:
        """Recovery: visible output becomes exactly the checkpoint's
        record; every in-flight transaction is truncated (replay will
        regenerate it)."""
        self.committed[:] = list(elements)
        self._staged = []
        self._staged_next = []
        self._barriered = set()
        self._barrier_id = None
        if self.pending:
            self.aborts += len(self.pending)
        self.pending = {}


class TransactionalLogSink:
    """Mirrors a :class:`TransactionalSink`'s committed output into an
    event-log topic, exactly-once across crashes.

    Registered as a coordinator listener: on every checkpoint commit it
    appends the newly committed elements through a fenced idempotent
    producer transaction.  The resume point is the topic's total end
    offset — appends happen in committed order, so after a crash
    anywhere (even between the manifest write and the log append) the
    delta that is re-driven starts exactly where the log left off.
    ``fence()`` bumps the producer epoch on recovery so a zombie
    incarnation's stray appends are rejected by the cluster.
    """

    def __init__(self, cluster: LogCluster, topic: str, sink_name: str,
                 producer_id: int | None = None) -> None:
        self.cluster = cluster
        self.topic = topic
        self.sink_name = sink_name
        self.producer = Producer(cluster, idempotent=True,
                                 producer_id=producer_id)
        self.committed_appends = 0

    def _log_length(self) -> int:
        return sum(
            self.cluster.end_offset(self.topic, p)
            - self.cluster.base_offset(self.topic, p)
            for p in range(self.cluster.partition_count(self.topic)))

    def fence(self) -> int:
        """New incarnation: fence the previous epoch and re-derive the
        resume point from the log itself."""
        epoch = self.producer.bump_epoch()
        self.committed_appends = self._log_length()
        return epoch

    def on_checkpoint_committed(self, checkpoint_id: int,
                                committed: list[Element]) -> int:
        """Append the delta of newly committed elements; returns how
        many records were appended (0 when replaying an already-applied
        commit)."""
        delta = committed[self.committed_appends:]
        if not delta:
            return 0
        self.producer.begin_transaction()
        for element in delta:
            key = (element.key if isinstance(element.key, str)
                   else None if element.key is None else str(element.key))
            self.producer.send_transactional(
                self.topic, element.value, key=key,
                timestamp=element.timestamp,
                headers={"checkpoint": str(checkpoint_id)})
        appended = len(self.producer.commit_transaction())
        self.committed_appends = len(committed)
        return appended
