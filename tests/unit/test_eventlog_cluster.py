"""Unit tests: log cluster, replication, failover, producer/consumer."""

import pytest

from repro.eventlog import (
    Consumer,
    ConsumerGroup,
    LogCluster,
    Producer,
    TopicConfig,
    stable_hash,
)
from repro.util.errors import (
    BrokerDown,
    ConfigError,
    LogError,
    OffsetOutOfRange,
    TopicExists,
    TopicNotFound,
)


def _cluster(brokers=3, partitions=4, replication=2, name="t"):
    cluster = LogCluster(num_brokers=brokers)
    cluster.create_topic(TopicConfig(name, partitions=partitions,
                                     replication=replication))
    return cluster


class TestTopics:
    def test_create_and_list(self):
        cluster = _cluster()
        assert cluster.topics() == ["t"]
        assert cluster.partition_count("t") == 4

    def test_duplicate_topic_rejected(self):
        cluster = _cluster()
        with pytest.raises(TopicExists):
            cluster.create_topic(TopicConfig("t"))

    def test_unknown_topic_rejected(self):
        cluster = _cluster()
        with pytest.raises(TopicNotFound):
            cluster.partition_count("nope")

    def test_replication_beyond_brokers_rejected(self):
        cluster = LogCluster(num_brokers=2)
        with pytest.raises(ConfigError):
            cluster.create_topic(TopicConfig("t", replication=3))

    def test_replicas_placed_on_distinct_brokers(self):
        cluster = _cluster()
        for p in range(4):
            state = cluster.partition_state("t", p)
            assert len(set(state.replica_brokers)) == 2

    def test_leaders_spread_across_brokers(self):
        cluster = _cluster(brokers=4, partitions=4)
        leaders = {cluster.partition_state("t", p).leader for p in range(4)}
        assert len(leaders) >= 2


class TestReplicationFailover:
    def test_append_replicates_to_isr(self):
        cluster = _cluster()
        producer = Producer(cluster)
        producer.send("t", {"v": 1}, key="k")
        state = next(cluster.partition_state("t", p) for p in range(4)
                     if cluster.end_offset("t", p) == 1)
        for broker_id in state.replica_brokers:
            log = cluster.brokers[broker_id].replicas[("t", state.index)]
            assert log.end_offset == 1

    def test_failover_preserves_data(self):
        cluster = _cluster()
        producer = Producer(cluster)
        for i in range(40):
            producer.send("t", {"i": i}, key=f"k{i}")
        before = {p: cluster.end_offset("t", p) for p in range(4)}
        cluster.fail_broker(0)
        after = {p: cluster.end_offset("t", p) for p in range(4)}
        assert before == after  # acks=all means no loss

    def test_unavailable_when_all_replicas_down(self):
        cluster = _cluster(brokers=2, partitions=1, replication=2)
        cluster.fail_broker(0)
        cluster.fail_broker(1)
        with pytest.raises(BrokerDown):
            cluster.append("t", 0, __import__(
                "repro.eventlog", fromlist=["Record"]).Record(value=1))

    def test_writes_continue_after_failover(self):
        cluster = _cluster()
        producer = Producer(cluster)
        cluster.fail_broker(0)
        for i in range(20):
            producer.send("t", {"i": i}, key=f"k{i}")
        assert sum(cluster.end_offset("t", p) for p in range(4)) == 20

    def test_recovered_broker_catches_up(self):
        cluster = _cluster()
        producer = Producer(cluster)
        cluster.fail_broker(0)
        for i in range(20):
            producer.send("t", {"i": i}, key=f"k{i}")
        cluster.recover_broker(0)
        for p in range(4):
            state = cluster.partition_state("t", p)
            if 0 not in state.replica_brokers:
                continue
            assert 0 in state.isr
            leader_end = cluster.end_offset("t", p)
            assert cluster.brokers[0].replicas[("t", p)].end_offset == \
                leader_end


class TestProducer:
    def test_keyed_records_stay_on_one_partition(self):
        cluster = _cluster()
        producer = Producer(cluster)
        partitions = {producer.send("t", i, key="fixed")[0]
                      for i in range(20)}
        assert len(partitions) == 1

    def test_keyless_round_robin(self):
        cluster = _cluster()
        producer = Producer(cluster)
        partitions = [producer.send("t", i)[0] for i in range(8)]
        assert partitions == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_stable_hash_is_stable(self):
        assert stable_hash("abc") == stable_hash("abc")
        assert stable_hash("abc") != stable_hash("abd")

    def test_explicit_partition(self):
        cluster = _cluster()
        producer = Producer(cluster)
        partition, offset = producer.send("t", 1, partition=2)
        assert (partition, offset) == (2, 0)


class TestConsumer:
    def test_poll_reads_everything(self):
        cluster = _cluster()
        producer = Producer(cluster)
        for i in range(30):
            producer.send("t", {"i": i}, key=f"k{i}")
        consumer = Consumer(cluster, "t")
        rows = consumer.poll(max_records=100)
        assert len(rows) == 30
        assert consumer.total_lag() == 0

    def test_poll_resumes_from_position(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster)
        for i in range(10):
            producer.send("t", i)
        consumer = Consumer(cluster, "t")
        first = consumer.poll(max_records=4)
        second = consumer.poll(max_records=100)
        assert [r.value for r in first] == [0, 1, 2, 3]
        assert [r.value for r in second] == [4, 5, 6, 7, 8, 9]

    def test_latest_start_skips_history(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster)
        producer.send("t", 0)
        consumer = Consumer(cluster, "t", start="latest")
        assert consumer.poll() == []
        producer.send("t", 1)
        assert [r.value for r in consumer.poll()] == [1]

    def test_seek_validation(self):
        cluster = _cluster(partitions=1)
        consumer = Consumer(cluster, "t")
        with pytest.raises(OffsetOutOfRange):
            consumer.seek(0, 5)

    def test_lag(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster)
        for i in range(5):
            producer.send("t", i)
        consumer = Consumer(cluster, "t")
        assert consumer.lag(0) == 5
        consumer.poll(max_records=2)
        assert consumer.lag(0) == 3


class TestConsumerGroup:
    def test_single_member_gets_all_partitions(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        member = group.join("m1")
        assert member.partitions == [0, 1, 2, 3]

    def test_two_members_split_evenly(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        group.join("m2")
        assert group.member("m1").partitions == [0, 1]
        assert group.member("m2").partitions == [2, 3]

    def test_uneven_split(self):
        cluster = _cluster(partitions=5)
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        group.join("m2")
        assert group.member("m1").partitions == [0, 1, 2]
        assert group.member("m2").partitions == [3, 4]

    def test_leave_rebalances(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        group.join("m2")
        group.leave("m2")
        assert group.member("m1").partitions == [0, 1, 2, 3]

    def test_committed_offsets_survive_rebalance(self):
        cluster = _cluster(partitions=2)
        producer = Producer(cluster)
        for i in range(20):
            producer.send("t", i)
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        group.member("m1").poll(max_records=100)
        group.commit("m1")
        group.join("m2")  # triggers rebalance
        # Both members resume from committed positions: nothing re-read.
        assert group.poll_all() == []

    def test_duplicate_join_rejected(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        with pytest.raises(LogError):
            group.join("m1")

    def test_group_consumes_disjoint_records(self):
        cluster = _cluster()
        producer = Producer(cluster)
        for i in range(40):
            producer.send("t", {"i": i}, key=f"k{i}")
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m1")
        group.join("m2")
        rows = group.poll_all(max_records_per_member=100)
        seen = [(r.partition, r.offset) for r in rows]
        assert len(seen) == 40
        assert len(set(seen)) == 40


class TestRetentionCompactionCluster:
    def test_cluster_retention(self):
        cluster = LogCluster(3)
        cluster.create_topic(TopicConfig("t", partitions=1, replication=2,
                                         retention_seconds=10.0))
        producer = Producer(cluster)
        for i in range(10):
            producer.send("t", i, timestamp=float(i))
        dropped = cluster.run_retention(now=15.0)
        assert dropped == 5  # timestamps 0..4 dropped (15 - 10 = 5 cutoff)
        assert cluster.base_offset("t", 0) == 5

    def test_cluster_compaction(self):
        cluster = LogCluster(3)
        cluster.create_topic(TopicConfig("t", partitions=1, replication=1,
                                         compacted=True))
        producer = Producer(cluster)
        for i in range(6):
            producer.send("t", i, key=f"k{i % 2}", partition=0)
        removed = cluster.run_compaction()
        assert removed == 4
