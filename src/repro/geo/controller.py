"""Region-level failure detection.

A region is *healthy* while at least one of its nodes is up and
reachable from the observer; the controller beats a per-region
heartbeat on every healthy observation and declares the region lost
when the deadline detector times out.  The detector is the same
:class:`~repro.streaming.coordinator.HeartbeatMonitor` the checkpoint
coordinator uses for fail-silent subtasks — one failure-detection
mechanism, two scales.
"""

from __future__ import annotations

from typing import Any

from ..streaming.coordinator import HeartbeatMonitor
from ..util.clock import SimClock
from ..util.errors import NetworkError

__all__ = ["RegionController"]

_PREFIX = "region:"


class RegionController:
    """Deadline failure detector over regions.

    ``observer`` names the topology node the controller runs on (the
    survivor's vantage point): a region partitioned away from the
    observer is just as lost as one whose nodes are down — CAP does
    not care why the packets stop.
    """

    def __init__(self, clock: SimClock | None = None, *,
                 timeout_s: float = 5.0,
                 observer: str | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self.monitor = HeartbeatMonitor(self.clock, timeout_s=timeout_s)
        self.observer = observer
        self._regions: list[str] = []
        #: last sim time each region was observed healthy
        self.last_seen: dict[str, float] = {}

    @property
    def regions(self) -> list[str]:
        return list(self._regions)

    def register(self, region: str) -> None:
        if region not in self._regions:
            self._regions.append(region)
            self.monitor.register(_PREFIX + region)
            self.last_seen[region] = self.clock.now

    def beat(self, region: str) -> None:
        """Record a healthy observation of ``region`` now."""
        if region not in self._regions:
            raise NetworkError(f"region {region!r} is not registered")
        self.monitor.beat(_PREFIX + region)
        self.last_seen[region] = self.clock.now

    def observe(self, topology: Any) -> list[str]:
        """Probe every registered region against a live topology and
        beat the healthy ones.  Returns the regions seen healthy."""
        healthy = []
        for region in self._regions:
            if self._healthy(topology, region):
                self.beat(region)
                healthy.append(region)
        return healthy

    def _healthy(self, topology: Any, region: str) -> bool:
        try:
            specs = topology.nodes(region=region)
        except NetworkError:
            return False
        for spec in specs:
            if not spec.up:
                continue
            if self.observer is None or spec.name == self.observer:
                return True
            if topology.reachable(self.observer, spec.name):
                return True
        return False

    def lost(self) -> list[str]:
        """Regions whose last healthy observation is older than the
        detection timeout."""
        return [key[len(_PREFIX):] for key in self.monitor.dead()
                if key.startswith(_PREFIX)]

    def reset(self, region: str) -> None:
        """A recovered region starts a fresh deadline."""
        self.monitor.reset(_PREFIX + region)
        self.last_seen[region] = self.clock.now
