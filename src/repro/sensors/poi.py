"""Point-of-interest database.

The "POI databases, geocoded Tweets, and Flickr" data source of Section
3.2, reduced to one queryable store: POIs carry category, name,
popularity and free-form attributes; queries are radius / k-nearest /
category-filtered, served from the quadtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..util.errors import SensorError
from ..util.geometry import Rect
from .spatial import QuadTree, SpatialPoint

__all__ = ["Poi", "PoiDatabase"]


@dataclass(frozen=True)
class Poi:
    """A point of interest in local metre coordinates."""

    poi_id: str
    name: str
    category: str
    x: float
    y: float
    popularity: float = 0.0
    attributes: dict[str, Any] = field(default_factory=dict)


class PoiDatabase:
    """Quadtree-backed POI store with category-aware queries."""

    def __init__(self, bounds: Rect) -> None:
        self._tree = QuadTree(bounds)
        self._by_id: dict[str, Poi] = {}

    def add(self, poi: Poi) -> None:
        if poi.poi_id in self._by_id:
            raise SensorError(f"duplicate POI id {poi.poi_id!r}")
        self._tree.insert(SpatialPoint(poi.x, poi.y, payload=poi))
        self._by_id[poi.poi_id] = poi

    def add_all(self, pois) -> None:
        for poi in pois:
            self.add(poi)

    def get(self, poi_id: str) -> Poi:
        try:
            return self._by_id[poi_id]
        except KeyError:
            raise SensorError(f"unknown POI {poi_id!r}") from None

    def __len__(self) -> int:
        return len(self._by_id)

    def categories(self) -> list[str]:
        return sorted({p.category for p in self._by_id.values()})

    def within(self, x: float, y: float, radius: float,
               category: str | None = None) -> list[Poi]:
        """POIs within ``radius`` metres, optionally category-filtered,
        ordered by distance then id."""
        hits = [p.payload for p in self._tree.query_radius(x, y, radius)]
        if category is not None:
            hits = [p for p in hits if p.category == category]
        hits.sort(key=lambda p: ((p.x - x) ** 2 + (p.y - y) ** 2, p.poi_id))
        return hits

    def nearest(self, x: float, y: float, k: int = 1,
                category: str | None = None) -> list[Poi]:
        """k nearest POIs; with a category filter we over-fetch and trim."""
        if category is None:
            return [p.payload for p in self._tree.nearest(x, y, k)]
        fetch = min(len(self._by_id), max(k * 4, 16))
        while True:
            candidates = [p.payload for p in self._tree.nearest(x, y, fetch)]
            matching = [p for p in candidates if p.category == category]
            if len(matching) >= k or fetch >= len(self._by_id):
                return matching[:k]
            fetch = min(len(self._by_id), fetch * 2)

    def most_popular(self, k: int = 10,
                     category: str | None = None) -> list[Poi]:
        pois = list(self._by_id.values())
        if category is not None:
            pois = [p for p in pois if p.category == category]
        pois.sort(key=lambda p: (-p.popularity, p.poi_id))
        return pois[:k]
