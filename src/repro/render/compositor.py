"""Overlay composition: world annotations -> one AR frame.

The compositor runs the full per-frame path: project anchors through the
camera, cull off-screen content, resolve occlusion per policy, lay out
labels, and enforce a frame budget by shedding low-priority content.
Its output, :class:`OverlayFrame`, is what the application "sees"; its
metrics are what the visualization experiments measure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.errors import RenderError
from ..util.geometry import Rect
from ..vision.camera import CameraIntrinsics, Pose
from .layout import (
    LayoutMetrics,
    PlacedLabel,
    clutter_metrics,
    declutter_layout,
    naive_layout,
)
from .occlusion import OcclusionWorld
from .scene import SceneGraph

__all__ = ["OverlayItem", "OverlayFrame", "Compositor", "FrameBudget"]


@dataclass(frozen=True)
class OverlayItem:
    """One composited piece of content."""

    annotation_id: str
    kind: str
    label: PlacedLabel
    depth_m: float
    occluded: bool
    xray: bool  # drawn in see-through style
    payload: dict = field(default_factory=dict)


@dataclass
class OverlayFrame:
    """Result of compositing one frame."""

    items: list[OverlayItem]
    culled_offscreen: int
    culled_occluded: int
    shed_by_budget: int
    layout: LayoutMetrics

    @property
    def drawn(self) -> int:
        return sum(1 for item in self.items if not item.label.dropped)


@dataclass(frozen=True)
class FrameBudget:
    """Per-frame cost model: a label costs ``cost_per_label`` ms, x-ray
    styling costs extra; content is shed lowest-priority-first when the
    total exceeds ``budget_ms`` (the AR real-time cap of Section 4.1)."""

    budget_ms: float = 16.0
    cost_per_label_ms: float = 0.25
    xray_surcharge_ms: float = 0.15

    def __post_init__(self) -> None:
        if self.budget_ms <= 0 or self.cost_per_label_ms <= 0:
            raise RenderError("budget and label cost must be positive")


class Compositor:
    """Projects, culls, occludes, lays out and sheds annotations."""

    def __init__(self, intrinsics: CameraIntrinsics,
                 occlusion: OcclusionWorld | None = None,
                 occlusion_policy: str = "xray",
                 declutter: bool = True,
                 budget: FrameBudget | None = None,
                 tracer=None, metrics=None) -> None:
        if occlusion_policy not in ("hide", "xray", "ignore"):
            raise RenderError(
                f"unknown occlusion policy {occlusion_policy!r}")
        self.intrinsics = intrinsics
        self.occlusion = occlusion if occlusion is not None else OcclusionWorld()
        self.occlusion_policy = occlusion_policy
        self.declutter = declutter
        self.budget = budget
        # Duck-typed observability hooks, same convention as the
        # streaming executor; None keeps compose() hook-free.
        self.tracer = tracer
        self.metrics = metrics
        self.frames_composited = 0

    def compose(self, scene: SceneGraph, pose: Pose) -> OverlayFrame:
        if self.tracer is None:
            return self._compose(scene, pose)
        span = self.tracer.start_span("render:compose")
        with self.tracer.activate(span):
            frame = self._compose(scene, pose)
        span.set_attr("drawn", frame.drawn)
        span.set_attr("culled_offscreen", frame.culled_offscreen)
        span.set_attr("culled_occluded", frame.culled_occluded)
        span.set_attr("shed_by_budget", frame.shed_by_budget)
        span.end()
        return frame

    def _compose(self, scene: SceneGraph, pose: Pose) -> OverlayFrame:
        self.frames_composited += 1
        screen = Rect(0, 0, self.intrinsics.width, self.intrinsics.height)
        annotations = scene.all_world_annotations()
        camera_center = pose.camera_center

        rows = []  # (annotation, anchor_world, pixel, depth)
        culled_offscreen = 0
        if annotations:
            anchors = np.stack([anchor for _a, anchor in annotations])
            cam_points = pose.transform(anchors)
            pixels = self.intrinsics.project(cam_points)
            in_view = self.intrinsics.in_view(pixels)
            for (annotation, anchor), pixel, depth, ok in zip(
                    annotations, pixels, cam_points[:, 2], in_view):
                if not ok:
                    culled_offscreen += 1
                    continue
                rows.append((annotation, anchor, pixel, float(depth)))

        culled_occluded = 0
        visible_rows = []
        for annotation, anchor, pixel, depth in rows:
            occluded = False
            if self.occlusion_policy != "ignore" and self.occlusion.occluders:
                occluded = not self.occlusion.check(camera_center,
                                                    anchor).visible
            if occluded and self.occlusion_policy == "hide":
                culled_occluded += 1
                continue
            visible_rows.append((annotation, anchor, pixel, depth, occluded))

        # Frame budget: shed lowest priority first.
        shed = 0
        if self.budget is not None:
            visible_rows.sort(key=lambda r: (-r[0].priority,
                                             r[0].annotation_id))
            cost = 0.0
            kept = []
            for row in visible_rows:
                item_cost = self.budget.cost_per_label_ms
                if row[4] and self.occlusion_policy == "xray":
                    item_cost += self.budget.xray_surcharge_ms
                if cost + item_cost > self.budget.budget_ms:
                    shed += 1
                    continue
                cost += item_cost
                kept.append(row)
            visible_rows = kept

        layout_input = [
            (a.annotation_id, float(px[0]), float(px[1]),
             a.width_px, a.height_px, a.priority)
            for a, _anchor, px, _depth, _occ in visible_rows
        ]
        if self.declutter:
            placed = declutter_layout(layout_input, screen)
        else:
            placed = naive_layout(layout_input)
        placed_by_id = {p.annotation_id: p for p in placed}

        items = []
        for annotation, _anchor, _pixel, depth, occluded in visible_rows:
            label = placed_by_id[annotation.annotation_id]
            items.append(OverlayItem(
                annotation_id=annotation.annotation_id,
                kind=annotation.kind,
                label=label,
                depth_m=depth,
                occluded=occluded,
                xray=occluded and self.occlusion_policy == "xray",
                payload=annotation.payload,
            ))
        frame = OverlayFrame(
            items=items,
            culled_offscreen=culled_offscreen,
            culled_occluded=culled_occluded,
            shed_by_budget=shed,
            layout=clutter_metrics(placed, screen),
        )
        if self.metrics is not None:
            m = self.metrics
            m.counter("render.frames").inc()
            m.counter("render.culled_offscreen").inc(culled_offscreen)
            m.counter("render.culled_occluded").inc(culled_occluded)
            m.counter("render.shed_by_budget").inc(shed)
            m.summary("render.drawn_per_frame").observe(frame.drawn)
        return frame
