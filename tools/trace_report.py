#!/usr/bin/env python
"""Render a span tree, critical path and metrics summary for a trace.

Two input modes:

- default: run the end-to-end traced reference pipeline
  (``repro.obs.traced_reference_run``) and report on the live trace;
- ``--input trace.jsonl``: re-parse a file written by
  :class:`repro.obs.JsonLinesExporter` and report on that instead —
  the round-trip produces the identical tree.

Usage:  python tools/trace_report.py [--events N] [--mode chained]
        python tools/trace_report.py --input runs/trace.jsonl
        python tools/trace_report.py --export runs/trace.jsonl
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.obs import (  # noqa: E402  (path bootstrap above)
    ConsoleExporter,
    JsonLinesExporter,
    build_tree,
    critical_path,
    read_jsonl,
    render_tree,
    span_to_dict,
    traced_reference_run,
)

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}


def report(span_dicts: list[dict], snapshot: dict[str, float] | None) -> None:
    roots = build_tree(span_dicts)
    print("== span tree ==")
    render_tree(roots, sys.stdout)
    for root in roots:
        path = critical_path(root)
        total = root.duration
        print("\n== critical path ==")
        for node in path:
            share = (node.duration / total) if total else 0.0
            print(f"  {node.name:<24} {node.duration * 1e3:10.3f}ms "
                  f"({share:6.1%})")
    if snapshot:
        print("\n== metrics ==")
        ConsoleExporter(sys.stdout).export_metrics(snapshot)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--input", type=Path, default=None,
                        help="report on an exported JSON-lines trace "
                             "instead of running the pipeline")
    parser.add_argument("--export", type=Path, default=None,
                        help="also write the trace + metrics to this "
                             "JSON-lines file")
    parser.add_argument("--events", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--mode", choices=sorted(MODES), default="chained")
    args = parser.parse_args()

    if args.input is not None:
        spans, metric_snapshots = read_jsonl(args.input)
        if not spans:
            print(f"no spans found in {args.input}")
            return 1
        report(spans, metric_snapshots[-1] if metric_snapshots else None)
        return 0

    run = traced_reference_run(seed=args.seed, n_events=args.events,
                               **MODES[args.mode])
    if args.export is not None:
        args.export.parent.mkdir(parents=True, exist_ok=True)
        args.export.unlink(missing_ok=True)
        exporter = JsonLinesExporter(args.export)
        exporter.export_spans(run.tracer.spans)
        exporter.export_metrics(run.registry.snapshot())
        print(f"trace written to {args.export}\n")
    report([span_to_dict(s) for s in run.tracer.spans],
           run.registry.snapshot())
    return 0


if __name__ == "__main__":
    sys.exit(main())
