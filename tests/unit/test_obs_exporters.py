"""Unit tests: repro.obs exporters, serialization and reports."""

import io
import json
import math

import pytest

from repro.obs import (
    ConsoleExporter,
    InMemoryExporter,
    JsonLinesExporter,
    Tracer,
    build_tree,
    critical_path,
    json_safe,
    read_jsonl,
    render_tree,
    span_from_dict,
    span_to_dict,
    tree_is_connected,
)
from repro.util import SimClock


def _small_trace() -> Tracer:
    clock = SimClock()
    tracer = Tracer(clock)
    with tracer.span("frame") as frame:
        with tracer.span("ingest"):
            clock.advance(0.2)
        with tracer.span("render") as render:
            render.set_attr("drawn", 3)
            render.add_event("shed", count=1)
            clock.advance(0.5)
    assert frame.duration == 0.7
    return tracer


class TestSerialization:
    def test_span_dict_round_trip(self):
        tracer = _small_trace()
        for span in tracer.spans:
            rebuilt = span_from_dict(span_to_dict(span))
            assert span_to_dict(rebuilt) == span_to_dict(span)

    def test_round_trip_preserves_tree_shape(self):
        tracer = _small_trace()
        direct = build_tree(tracer.spans)
        rebuilt = build_tree([span_from_dict(span_to_dict(s))
                              for s in tracer.spans])

        def shape(node):
            return (node.name, node.duration,
                    [shape(c) for c in node.children])

        assert [shape(r) for r in rebuilt] == [shape(r) for r in direct]

    def test_json_safe_scrubs_non_finite(self):
        payload = {"ok": 1.5, "bad": math.nan, "worse": math.inf,
                   "nested": [math.nan, {"x": -math.inf}]}
        safe = json_safe(payload)
        assert safe == {"ok": 1.5, "bad": None, "worse": None,
                        "nested": [None, {"x": None}]}
        json.dumps(safe, allow_nan=False)  # must not raise


class TestInMemoryExporter:
    def test_collects_spans_and_metrics(self):
        tracer = _small_trace()
        exporter = InMemoryExporter()
        assert exporter.export_spans(tracer.spans) == 3
        exporter.export_metrics({"a": 1.0})
        assert [s["name"] for s in exporter.spans] == ["frame", "ingest",
                                                       "render"]
        assert exporter.metrics == [{"a": 1.0}]


class TestJsonLinesExporter:
    def test_file_round_trip_rebuilds_the_tree(self, tmp_path):
        tracer = _small_trace()
        path = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(path)
        exporter.export_spans(tracer.spans)
        exporter.export_metrics({"render.frames": 1.0})

        spans, metrics = read_jsonl(path)
        assert len(spans) == 3
        assert metrics == [{"render.frames": 1.0}]
        assert tree_is_connected(spans)
        roots = build_tree(spans)
        assert [r.name for r in roots] == ["frame"]
        assert {c.name for c in roots[0].children} == {"ingest", "render"}
        render = next(c for c in roots[0].children if c.name == "render")
        assert render.span["attrs"] == {"drawn": 3}
        assert render.span["events"][0]["attrs"] == {"count": 1}

    def test_torn_final_line_is_skipped(self, tmp_path):
        # a crash mid-write leaves partial JSON with no newline; the
        # durable prefix must still parse for post-crash analysis
        tracer = _small_trace()
        path = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(path)
        exporter.export_spans(tracer.spans)
        exporter.export_metrics({"render.frames": 1.0})
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"type": "span", "name": "torn", "start')
        spans, metrics = read_jsonl(path)
        assert len(spans) == 3
        assert metrics == [{"render.frames": 1.0}]
        assert all(s["name"] != "torn" for s in spans)

    def test_torn_only_file_reads_empty(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"type": "span"', encoding="utf-8")
        assert read_jsonl(path) == ([], [])

    def test_mid_file_corruption_still_raises(self, tmp_path):
        # a malformed line *before* the tail is corruption, not a torn
        # write — it must surface, not be silently dropped
        path = tmp_path / "trace.jsonl"
        path.write_text('not json at all\n'
                        '{"type": "metrics", "values": {}}\n',
                        encoding="utf-8")
        with pytest.raises(json.JSONDecodeError):
            read_jsonl(path)

    def test_nan_metric_serializes_as_null(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        JsonLinesExporter(path).export_metrics({"bad": math.nan})
        line = json.loads(path.read_text().strip())
        assert line == {"type": "metrics", "values": {"bad": None}}


class TestConsoleExporter:
    def test_renders_aligned_tables(self):
        tracer = _small_trace()
        out = io.StringIO()
        exporter = ConsoleExporter(out)
        exporter.export_spans(tracer.spans)
        exporter.export_metrics({"frames": 1.0, "drawn": 3.0})
        text = out.getvalue()
        assert "frame" in text and "render" in text
        assert "drawn" in text and "3" in text


class TestReport:
    def test_orphan_parents_become_roots(self):
        tracer = _small_trace()
        dicts = [span_to_dict(s) for s in tracer.spans
                 if s.name != "frame"]  # drop the root from the batch
        assert not tree_is_connected(dicts)
        roots = build_tree(dicts)
        assert sorted(r.name for r in roots) == ["ingest", "render"]

    def test_critical_path_follows_longest_child(self):
        tracer = _small_trace()
        [root] = build_tree(tracer.spans)
        path = critical_path(root)
        assert [n.name for n in path] == ["frame", "render"]

    def test_render_tree_collapses_large_sibling_groups(self):
        clock = SimClock()
        tracer = Tracer(clock)
        with tracer.span("batch"):
            for _ in range(10):
                with tracer.span("produce"):
                    clock.advance(0.01)
        out = io.StringIO()
        render_tree(build_tree(tracer.spans), out)
        text = out.getvalue()
        assert "produce x10" in text
        assert text.count("produce") == 1  # aggregated, not 10 lines

    def test_self_time_excludes_children(self):
        tracer = _small_trace()
        [root] = build_tree(tracer.spans)
        assert math.isclose(root.self_time, 0.0, abs_tol=1e-12)
        assert len(list(root.walk())) == 3
