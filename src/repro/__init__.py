"""repro — reproduction of "When Augmented Reality Meets Big Data"
(Huang, Hui, Peylo; ICDCS 2017).

The paper is a vision paper: big-data backends feeding AR front-ends,
AR as the interface to big data, and three convergence challenges
(timeliness, interpretation, privacy).  This library builds the whole
envisioned system from scratch:

- :mod:`repro.core` — the AR x Big-Data convergence pipeline (the
  contribution), sessions, timeliness control, privacy guard, the
  Figure-5 influence model.
- Substrates: :mod:`repro.eventlog` (Kafka-like), :mod:`repro.streaming`
  (Flink-like), :mod:`repro.vision` (AR SDK), :mod:`repro.sensors`,
  :mod:`repro.render`, :mod:`repro.offload` (CloudRiDAR-like),
  :mod:`repro.privacy`, :mod:`repro.analytics`, :mod:`repro.simnet`.
- :mod:`repro.datagen` — seeded workload generators for every scenario.
- :mod:`repro.apps` — retail, tourism, healthcare, public services.

Quick start::

    from repro import ARBigDataPipeline, PipelineConfig
    pipeline = ARBigDataPipeline(PipelineConfig(seed=7))
    pipeline.create_topic("demo")
    pipeline.ingest("demo", {"reading": 21.5}, key="sensor-1", timestamp=0.0)
"""

from .core import (
    ARBigDataPipeline,
    ARSession,
    PipelineConfig,
    PrivacyConfig,
    SharedDataset,
)

__version__ = "1.0.0"

__all__ = [
    "ARBigDataPipeline",
    "ARSession",
    "PipelineConfig",
    "PrivacyConfig",
    "SharedDataset",
    "__version__",
]
