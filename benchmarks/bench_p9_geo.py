"""P9: geo-distributed placement — overlay latency, diurnal scale, MTTR.

Three measurements over the canonical :func:`repro.simnet.region_topology`
(two edge zones + one core, WiFi access / LTE fallback / WAN backhaul):

1. **Overlay-update latency, edge vs all-cloud.**  An AR overlay update
   is a device round trip to its serving tier: upload a pose+feature
   payload, run the recognition/annotation compute, download the
   overlay.  With *edge placement* the serving tier is the zone's edge
   server over the WiFi access link; *all-cloud* serves every session
   from the core over its cheapest path (the LTE fallback beats
   WiFi+WAN backhaul).  Both placements price the same nominal route
   (propagation + store-and-forward per hop) plus load-scaled compute.

2. **A million-session diurnal day.**  Sessions arrive on a diurnal
   curve (quiet nights, an evening peak); each session's tier
   utilization follows the curve, inflating compute by 1/(1-rho).  The
   whole day is vectorized numpy — a row per session — so the bench
   holds 1M sessions in a few hundred MB and runs in seconds.  The
   gated statistic is the p99 overlay-update latency per placement:
   the paper's timeliness argument is exactly that the access-network
   RTT, not the datacenter, dominates the AR tail.

3. **Failover MTTR.**  A live :class:`repro.geo.GeoDeployment` run
   (simnet heartbeats, mirrored log, checkpointed job) loses its
   primary region mid-stream; reported are the detection-to-recovery
   time and the replay volume vs a full restart of the replica.

Results merge into ``BENCH_streaming.json`` under the ``"geo"`` key;
``tools/check_geo.py`` gates the edge-vs-cloud p99 advantage and the
failover replay bound.
"""

import sys
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

import benchlib
from tableprint import print_table

from repro.eventlog import LogCluster, Producer, TopicConfig
from repro.geo import GeoDeployment
from repro.simnet import (
    FailureInjector,
    RegionFailureEvent,
    Simulator,
    Topology,
    region_topology,
)
from repro.streaming import JobBuilder, parallel_log_source
from repro.streaming.placement import placement_from_topology
from repro.streaming.windows import TumblingWindows
from repro.util.rng import make_rng

N_SESSIONS = 1_000_000
PAYLOAD_BYTES = 2_048.0      # pose + feature descriptors up
RESPONSE_BYTES = 16_384.0    # rendered overlay delta down
COMPUTE_CYCLES = 2e6         # recognition + annotation lookup
PEAK_RHO_EDGE = 0.70         # evening-peak utilization, edge tier
PEAK_RHO_CORE = 0.45         # core absorbs the same peak with headroom
JITTER_STD_S = 0.002
#: committed floor: edge placement must beat all-cloud on overlay p99
#: by at least this factor (tools/check_geo.py)
MIN_EDGE_P99_ADVANTAGE = 2.0

# -- failover MTTR scenario (mirrors tests/property/test_geo_chaos.py) --
TOPIC = "geo.events"
N_RECORDS = 240
KEYS = 8
PINS = {TOPIC: "edge-a", "by_key": "edge-a",
        "window_sum": "edge-a", "out": "edge-a"}


def _nominal_one_way(topo: Topology, src: str, dst: str,
                     size_bytes: float) -> float:
    """Deterministic store-and-forward time along the current route:
    per hop, propagation latency plus serialization at link bandwidth."""
    total = 0.0
    path = topo.route(src, dst)
    for a, b in zip(path, path[1:]):
        spec = topo.link(a, b).spec
        total += spec.latency_s + size_bytes / spec.bandwidth_bps
    return total


def _base_rtt(topo: Topology, device: str, tier: str) -> float:
    return (_nominal_one_way(topo, device, tier, PAYLOAD_BYTES)
            + _nominal_one_way(topo, tier, device, RESPONSE_BYTES))


def _diurnal_weights(hours: int = 24) -> np.ndarray:
    """Arrival mass per hour: quiet early morning, evening peak."""
    h = np.arange(hours)
    curve = 1.0 + 0.9 * np.sin((h - 9.0) * 2.0 * np.pi / 24.0)
    return curve / curve.sum()


def run_latency_experiment(n_sessions: int = N_SESSIONS) -> dict:
    rng = np.random.default_rng(29)
    topo = region_topology(make_rng(11))
    devices = sorted(s.name for s in topo.nodes(role="device"))
    edge_of = {d: f"{topo.region_of(d)}-edge" for d in devices}

    weights = _diurnal_weights()
    hour = rng.choice(len(weights), size=n_sessions, p=weights)
    load = weights / weights.max()          # 0..1 diurnal load factor
    dev_idx = rng.integers(0, len(devices), size=n_sessions)
    jitter = {
        "edge": np.abs(rng.normal(0.0, JITTER_STD_S, size=n_sessions)),
        "cloud": np.abs(rng.normal(0.0, JITTER_STD_S, size=n_sessions)),
    }

    base = {
        "edge": np.array([_base_rtt(topo, d, edge_of[d])
                          for d in devices]),
        "cloud": np.array([_base_rtt(topo, d, "core")
                           for d in devices]),
    }
    hz = {"edge": topo.node("edge-a-edge").cpu_hz,
          "cloud": topo.node("core").cpu_hz}
    peak = {"edge": PEAK_RHO_EDGE, "cloud": PEAK_RHO_CORE}

    stats: dict[str, float] = {}
    for placement in ("edge", "cloud"):
        rho = peak[placement] * load[hour]
        latency = (base[placement][dev_idx]
                   + COMPUTE_CYCLES / (hz[placement] * (1.0 - rho))
                   + jitter[placement])
        stats[f"{placement}_p50_ms"] = float(
            np.percentile(latency, 50) * 1e3)
        stats[f"{placement}_p99_ms"] = float(
            np.percentile(latency, 99) * 1e3)
    stats["p99_edge_advantage"] = (stats["cloud_p99_ms"]
                                   / stats["edge_p99_ms"])
    return stats


def _build_job(cluster: LogCluster):
    builder = JobBuilder("p9-geo")
    factory, splits = parallel_log_source(cluster, TOPIC)
    (builder.source(TOPIC, splits=splits, split_factory=factory)
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(20.0), "sum",
                    value_fn=lambda v: v["v"], name="window_sum")
            .sink("out"))
    for node, region in PINS.items():
        builder.pin_region(node, region)
    builder.declare_cross_region(TOPIC, "by_key")
    return builder.build()


def run_failover_experiment() -> dict:
    primary = LogCluster(num_brokers=1)
    standby = LogCluster(num_brokers=1)
    primary.create_topic(TopicConfig(name=TOPIC, partitions=4))
    producer = Producer(primary, idempotent=True)
    for i in range(N_RECORDS):
        producer.send(TOPIC, {"k": i % KEYS, "v": float(i)},
                      key=f"k-{i % KEYS}", timestamp=float(i))
    topo = region_topology(make_rng(11))
    sim = Simulator()
    FailureInjector(sim, topo).schedule_region(
        RegionFailureEvent("edge-a", down_at=4.0, up_at=1e9))
    deployment = GeoDeployment(
        _build_job,
        primary_cluster=primary, standby_cluster=standby, topic=TOPIC,
        primary_region="edge-a", standby_region="core",
        placement=placement_from_topology(topo, dict(PINS),
                                          default_region="core"),
        parallelism=2, source_batch=8, step_cycles=2, interval_cycles=2,
        region_timeout_s=2.0, topology=topo, simulator=sim,
        observer="core")
    report = deployment.run()
    failover = report.failover
    assert failover is not None, "region loss was not detected"
    assert failover.replayed < failover.full_restart_equiv, (
        "failover replayed as much as a full restart")
    return {
        "mttr_s": failover.mttr_s,
        "replayed": failover.replayed,
        "full_restart_equiv": failover.full_restart_equiv,
        "replay_fraction": (failover.replayed
                            / failover.full_restart_equiv),
        "records": N_RECORDS,
        "mirror_pumped": report.mirror_pumped,
    }


def run_experiment(n_sessions: int = N_SESSIONS) -> dict:
    latency = run_latency_experiment(n_sessions)
    failover = run_failover_experiment()
    return {
        "config": {"n_sessions": n_sessions,
                   "payload_bytes": PAYLOAD_BYTES,
                   "response_bytes": RESPONSE_BYTES,
                   "compute_cycles": COMPUTE_CYCLES,
                   "peak_rho_edge": PEAK_RHO_EDGE,
                   "peak_rho_core": PEAK_RHO_CORE,
                   "failover_records": N_RECORDS},
        "geo": {**latency, **{f"failover_{k}": v
                              for k, v in failover.items()}},
    }


def report(results: dict) -> None:
    geo = results["geo"]
    print_table(
        f"P9  geo placement ({results['config']['n_sessions']:,} "
        "diurnal sessions, overlay-update round trip)",
        ["placement", "p50 ms", "p99 ms"],
        [["edge zone", geo["edge_p50_ms"], geo["edge_p99_ms"]],
         ["all-cloud", geo["cloud_p50_ms"], geo["cloud_p99_ms"]]],
        note=f"edge p99 advantage {geo['p99_edge_advantage']:.1f}x "
             f"(floor {MIN_EDGE_P99_ADVANTAGE:.1f}x, "
             "tools/check_geo.py)")
    print_table(
        "P9  region failover (whole edge-region loss, live deployment)",
        ["metric", "value"],
        [["MTTR (sim s)", geo["failover_mttr_s"]],
         ["records replayed", geo["failover_replayed"]],
         ["full-restart equivalent", geo["failover_full_restart_equiv"]],
         ["replay fraction", geo["failover_replay_fraction"]]],
        note="exactly-once across the failover is asserted by the geo "
             "chaos suite (make geo)")


def bench_p9_geo(benchmark):
    """pytest-benchmark entry: smaller session count, same invariants."""
    results = benchmark.pedantic(lambda: run_experiment(100_000),
                                 rounds=1, iterations=1)
    report(results)
    assert (results["geo"]["p99_edge_advantage"]
            >= MIN_EDGE_P99_ADVANTAGE)


def main() -> None:
    parser = benchlib.bench_parser(__doc__)
    parser.add_argument("--sessions", type=int, default=N_SESSIONS)
    args = parser.parse_args()
    results = run_experiment(args.sessions)
    report(results)
    benchlib.merge_section(args.out, "geo", results)


if __name__ == "__main__":
    main()
