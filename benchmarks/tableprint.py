"""Shared table printing for the experiment benches.

Every bench regenerates the rows/series of one paper figure or claim and
prints them through here, so `pytest benchmarks/ --benchmark-only -s`
produces a readable experiment report.
"""

from __future__ import annotations

from typing import Any, Sequence


def print_table(title: str, headers: Sequence[str],
                rows: Sequence[Sequence[Any]], note: str = "") -> None:
    """Print one experiment's table to stdout (survives pytest capture
    via -s; also written to stderr so --benchmark-only logs keep it)."""
    widths = [len(h) for h in headers]
    rendered = []
    for row in rows:
        cells = [_fmt(cell) for cell in row]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        rendered.append(cells)
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    out = [f"\n== {title} ==", line, "-" * len(line)]
    for cells in rendered:
        out.append("  ".join(c.ljust(w) for c, w in zip(cells, widths)))
    if note:
        out.append(f"note: {note}")
    text = "\n".join(out)
    print(text)


def _fmt(cell: Any) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000 or abs(cell) < 0.001:
            return f"{cell:.3g}"
        return f"{cell:.3f}"
    return str(cell)
