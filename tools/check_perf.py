#!/usr/bin/env python
"""Perf gate: tier-1 tests + a throughput smoke vs the committed baseline.

Runs the full tier-1 suite, then a short (~5 s) run of
``benchmarks/bench_p1_throughput.py`` and compares batched/chained
elements-per-second against the committed ``benchmarks/BENCH_streaming.json``.
Fails (exit 1) if either regresses more than ``--tolerance`` (default
20%) — the guard that keeps future PRs from quietly giving back the
batched-execution win.

Also runs ``benchmarks/bench_p4_parallel.py`` and gates the *modelled*
parallel scaling: the keyed-window workload at parallelism 4 must model
at least ``--min-parallel-speedup`` (default 1.5x) over parallelism 1.
The gate is absolute, not baseline-relative — a modelled ratio is
machine-speed-robust, so any plan that stops overlapping subtask work
fails regardless of where it runs.

The committed baseline itself is also gated when it was produced on the
reference 100k-event workload: ``chained_eps`` must stay >= 1M and the
modelled ``lane_overlap_p4`` > 3.2 — the columnar hot-path floors a PR
cannot regress by committing a slower baseline.  A columnar-vs-
per-element equivalence smoke (identical sinks and operator snapshots)
runs in-process before any timing.

Usage:  python tools/check_perf.py [--events N] [--tolerance 0.2]
        python tools/check_perf.py --skip-tests   # bench gate only
"""

from __future__ import annotations

import argparse
import json
import sys

from gatelib import REPO, Gate, ensure_paths, run_bench, run_suite

try:
    import numpy  # noqa: F401  (presence check only)
except ImportError:  # pragma: no cover - environment guard
    sys.exit("check_perf: numpy is required for the perf gate (the "
             "columnar hot path and the benchmarks are numpy-based); "
             "install it with `pip install numpy>=1.24` and re-run "
             "`make perf`.")

BASELINE = REPO / "benchmarks" / "BENCH_streaming.json"
GATED = ["batched_eps", "chained_eps"]
#: Absolute floors for a committed baseline measured on the reference
#: workload (100k events): the columnar hot path must keep chained
#: throughput over 1M eps and parallelism-4 lane overlap above 3.2.
FLOOR_EVENTS = 100_000
FLOOR_CHAINED_EPS = 1_000_000
FLOOR_LANE_OVERLAP_P4 = 3.2


def run_bench_smoke(events: int) -> dict | None:
    print(f"\n== throughput smoke ({events} events) ==", flush=True)
    return run_bench("bench_p1_throughput.py", "--events", str(events))


def run_parallel_smoke(events: int) -> dict | None:
    print(f"\n== parallel scaling smoke ({events} events) ==", flush=True)
    return run_bench("bench_p4_parallel.py", "--events", str(events))


def check_parallel_speedup(current: dict, minimum: float,
                           min_lane_overlap: float) -> bool:
    speedup = current["parallel"]["speedup_p4"]
    overlap = current["parallel"]["lane_overlap_p4"]
    ok_speedup = speedup >= minimum
    ok_overlap = overlap >= min_lane_overlap
    print(f"\n== parallel scaling gate (minimum {minimum:.2f}x, "
          f"lane overlap {min_lane_overlap:.2f}) ==")
    print(f"     speedup_p4: {speedup:10.2f}x  (absolute floor "
          f"{minimum:.2f}x)  {'ok' if ok_speedup else 'TOO SLOW'}")
    print(f"  lane_overlap_p4: {overlap:8.2f}   (absolute floor "
          f"{min_lane_overlap:.2f})   "
          f"{'ok' if ok_overlap else 'TOO SERIAL'}")
    return ok_speedup and ok_overlap


def check_columnar_equivalence(events: int = 5_000) -> bool:
    """In-process smoke: the columnar representation must be invisible —
    identical sink contents and identical window-operator snapshots
    against the same chained job run with ``columnar=False``."""
    print(f"\n== columnar equivalence smoke ({events} events) ==",
          flush=True)
    ensure_paths()
    from bench_p1_throughput import SOURCE_BATCH, _build_job, _elements
    from repro.streaming import Executor

    elements = _elements(events)
    runs = {}
    for label, columnar in (("columnar", True), ("per-element", False)):
        job = _build_job(elements)
        executor = Executor(job, batch_mode=True, chaining=True,
                            columnar=columnar)
        sinks = executor.run(source_batch=SOURCE_BATCH)
        snapshots = {name: op.snapshot()
                     for name, op in sorted(job.operators.items())
                     if hasattr(op, "snapshot")}
        runs[label] = ([(r.key, r.window.start, r.value, r.count)
                        for r in sinks["out"].values], snapshots)
    same_sinks = runs["columnar"][0] == runs["per-element"][0]
    same_state = runs["columnar"][1] == runs["per-element"][1]
    print(f"  sinks identical: {same_sinks}   "
          f"operator snapshots identical: {same_state}")
    return same_sinks and same_state


def check_committed_floors() -> bool:
    """Absolute floors on the *committed* baseline: when the numbers in
    ``BENCH_streaming.json`` were measured on the reference workload,
    they must clear the columnar hot-path targets — a PR cannot sneak a
    regression in by regenerating a slower baseline."""
    if not BASELINE.exists():
        return True
    baseline = json.loads(BASELINE.read_text())
    ok = True
    print("\n== committed baseline floors ==")
    if baseline.get("config", {}).get("n_events") == FLOOR_EVENTS:
        chained = baseline["throughput"]["chained_eps"]
        good = chained >= FLOOR_CHAINED_EPS
        ok = ok and good
        print(f"    chained_eps: {chained:12.0f}/s  (floor "
              f"{FLOOR_CHAINED_EPS}/s)  {'ok' if good else 'BELOW FLOOR'}")
    else:
        print(f"  (baseline not measured at {FLOOR_EVENTS} events; "
              "skipping chained_eps floor)")
    pconf = baseline.get("parallel_config", {})
    if pconf.get("n_events") == FLOOR_EVENTS and "parallel" in baseline:
        overlap = baseline["parallel"]["lane_overlap_p4"]
        good = overlap > FLOOR_LANE_OVERLAP_P4
        ok = ok and good
        print(f"  lane_overlap_p4: {overlap:8.2f}   (floor > "
              f"{FLOOR_LANE_OVERLAP_P4})   "
              f"{'ok' if good else 'BELOW FLOOR'}")
    else:
        print(f"  (parallel baseline not measured at {FLOOR_EVENTS} "
              "events; skipping lane_overlap_p4 floor)")
    return ok


def check_regression(current: dict, tolerance: float) -> bool:
    if not BASELINE.exists():
        print(f"no baseline at {BASELINE}; run "
              "benchmarks/bench_p1_throughput.py to create one")
        return True
    baseline = json.loads(BASELINE.read_text())
    ok = True
    print(f"\n== regression gate (tolerance {tolerance:.0%}) ==")
    same_size = (current["config"]["n_events"]
                 == baseline["config"]["n_events"])
    if same_size:
        # Absolute throughput only compares like-for-like stream sizes
        # (fixed costs amortize differently on a smoke-sized stream).
        for key in GATED:
            base = baseline["throughput"][key]
            now = current["throughput"][key]
            ratio = now / base
            status = "ok" if ratio >= 1.0 - tolerance else "REGRESSED"
            if status == "REGRESSED":
                ok = False
            print(f"  {key:>15}: baseline {base:12.0f}/s  "
                  f"now {now:12.0f}/s  ({ratio:6.1%})  {status}")
    else:
        print(f"  (stream sizes differ — {current['config']['n_events']} vs "
              f"baseline {baseline['config']['n_events']} — skipping "
              "absolute eps; speedup tolerance doubled, since fixed "
              "costs amortize less on a smoke-sized stream)")
    # Speedup vs the per-item baseline is a within-run ratio, robust to
    # machine speed; across stream sizes it shifts with amortization,
    # so the cross-size gate is loose where the like-size gate is not.
    speedup_tolerance = tolerance if same_size else 2 * tolerance
    for key in ("speedup_batched", "speedup_chained"):
        base = baseline["throughput"][key]
        now = current["throughput"][key]
        ratio = now / base
        status = "ok" if ratio >= 1.0 - speedup_tolerance else "REGRESSED"
        if status == "REGRESSED":
            ok = False
        print(f"  {key:>15}: baseline {base:10.2f}x   now {now:10.2f}x   "
              f"({ratio:6.1%})  {status}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=30_000,
                        help="smoke-run stream size (default keeps the "
                             "bench near 5 seconds; `make perf` passes "
                             "the reference 100000 for a like-for-like "
                             "baseline comparison)")
    parser.add_argument("--parallel-events", type=int, default=30_000,
                        help="parallel smoke stream size (kept small — "
                             "its gates are absolute ratios, and the "
                             "100k lane-overlap floor is enforced on "
                             "the committed baseline instead)")
    parser.add_argument("--tolerance", type=float, default=0.20)
    parser.add_argument("--min-parallel-speedup", type=float, default=1.5)
    parser.add_argument("--min-lane-overlap", type=float, default=2.5,
                        help="absolute floor on the smoke run's modelled "
                             "lane_overlap_p4 (the committed 100k "
                             "baseline is separately floored at "
                             f"{FLOOR_LANE_OVERLAP_P4})")
    parser.add_argument("--skip-tests", action="store_true")
    args = parser.parse_args()

    gate = Gate("check_perf")
    if not args.skip_tests and not run_suite("tier-1 test suite",
                                             fail_fast=True):
        return gate.fail("tier-1 tests")
    if not check_columnar_equivalence():
        return gate.fail("columnar execution diverged")
    if not check_committed_floors():
        return gate.fail("committed baseline below floor")
    current = run_bench_smoke(args.events)
    if current is None:
        return gate.fail("benchmark crashed")
    if not check_regression(current, args.tolerance):
        return gate.fail("throughput regression")
    parallel = run_parallel_smoke(args.parallel_events)
    if parallel is None:
        return gate.fail("parallel benchmark crashed")
    if not check_parallel_speedup(parallel, args.min_parallel_speedup,
                                  args.min_lane_overlap):
        return gate.fail("parallel scaling below floor")
    return gate.ok()


if __name__ == "__main__":
    sys.exit(main())
