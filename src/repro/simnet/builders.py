"""Canonical topology builders.

:func:`region_topology` builds the geo-distributed shape the paper's
timeliness argument needs (Sec 4.1, CloudRiDAR): several *edge regions*
— each an edge zone with an edge server and its attached devices — plus
one deep *core* region, wired with realistic link tiers:

- device -> zone edge server: an access link (WiFi by default),
- device -> core: a cellular fallback (LTE by default) — the path a
  session degrades onto when its edge zone is down or partitioned,
- edge region <-> edge region: metro fibre,
- edge region <-> core: a WAN backhaul.

Every node carries its region (and, for edge nodes, zone) tag, so
whole-region loss and partitions (:meth:`Topology.fail_region`,
:meth:`Topology.partition_region`) and the geo placement layer all act
on the same labels.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from ..util.errors import ConfigError
from .network import LINK_PRESETS, LinkSpec
from .topology import NodeSpec, Topology

__all__ = ["region_topology"]


def region_topology(rng: np.random.Generator, *,
                    edge_regions: Sequence[str] = ("edge-a", "edge-b"),
                    devices_per_zone: int = 2,
                    core_region: str = "core",
                    device_cpu_hz: float = 1.5e9,
                    edge_cpu_hz: float = 8e9,
                    core_cpu_hz: float = 64e9,
                    access: str | LinkSpec = "wifi",
                    fallback: str | LinkSpec | None = "lte",
                    inter_edge: str | LinkSpec = "metro",
                    backhaul: str | LinkSpec = "wan") -> Topology:
    """Edge zones + one core, with realistic inter-region latency.

    Node naming is deterministic: ``{region}-edge`` per edge region,
    ``{region}-dev{i}`` for its devices, and ``{core_region}`` for the
    cloud node — tests and benchmarks address nodes by these names.
    """
    if not edge_regions:
        raise ConfigError("need at least one edge region")
    if len(set(edge_regions)) != len(edge_regions):
        raise ConfigError("edge region names must be unique")
    if core_region in edge_regions:
        raise ConfigError(f"core region {core_region!r} collides with an "
                          "edge region")
    if devices_per_zone < 0:
        raise ConfigError("devices_per_zone must be non-negative")

    def _spec(preset: str | LinkSpec) -> LinkSpec:
        if isinstance(preset, LinkSpec):
            return preset
        try:
            return LINK_PRESETS[preset]
        except KeyError:
            raise ConfigError(f"unknown link preset {preset!r}") from None

    topo = Topology(rng)
    topo.add_node(NodeSpec(name=core_region, cpu_hz=core_cpu_hz,
                           role="cloud", cores=16, power_w=250.0,
                           region=core_region))
    edge_names = []
    for region in edge_regions:
        edge = f"{region}-edge"
        topo.add_node(NodeSpec(name=edge, cpu_hz=edge_cpu_hz, role="edge",
                               cores=4, power_w=45.0, region=region,
                               zone=region))
        topo.add_link(edge, core_region, _spec(backhaul))
        for i in range(devices_per_zone):
            dev = f"{region}-dev{i}"
            topo.add_node(NodeSpec(name=dev, cpu_hz=device_cpu_hz,
                                   role="device", region=region,
                                   zone=region, forwards=False))
            topo.add_link(dev, edge, _spec(access))
            if fallback is not None:
                topo.add_link(dev, core_region, _spec(fallback))
        edge_names.append(edge)
    for i, a in enumerate(edge_names):
        for b in edge_names[i + 1:]:
            topo.add_link(a, b, _spec(inter_edge))
    return topo
