"""Unit tests: sketches, quantiles, incremental computation."""

import math

import numpy as np
import pytest

from repro.analytics import (
    BloomFilter,
    CountMinSketch,
    DecayedCounter,
    HyperLogLog,
    IncrementalQuery,
    IncrementalTopK,
    P2Quantile,
    ReservoirSample,
    RunningStats,
)
from repro.util.errors import ConfigError
from repro.util.rng import make_rng


class TestCountMinSketch:
    def test_never_underestimates(self):
        cms = CountMinSketch(epsilon=0.01, delta=0.01)
        truth = {}
        rng = make_rng(0)
        for _ in range(2000):
            key = f"k{int(rng.integers(0, 100))}"
            truth[key] = truth.get(key, 0) + 1
            cms.add(key)
        for key, count in truth.items():
            assert cms.estimate(key) >= count

    def test_error_bound_roughly_holds(self):
        cms = CountMinSketch(epsilon=0.005, delta=0.01)
        rng = make_rng(1)
        for _ in range(5000):
            cms.add(f"k{int(rng.integers(0, 50))}")
        # Overestimate should be within eps * N (generous 3x slack).
        errors = [cms.estimate(f"k{i}") for i in range(50)]
        assert max(errors) <= 5000 / 50 + 3 * 0.005 * 5000

    def test_weighted_add(self):
        cms = CountMinSketch()
        cms.add("x", count=7)
        assert cms.estimate("x") >= 7

    def test_merge(self):
        a = CountMinSketch(epsilon=0.01, delta=0.1)
        b = CountMinSketch(epsilon=0.01, delta=0.1)
        a.add("x", 3)
        b.add("x", 4)
        a.merge(b)
        assert a.estimate("x") >= 7

    def test_merge_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            CountMinSketch(epsilon=0.01).merge(CountMinSketch(epsilon=0.001))

    def test_invalid_params_rejected(self):
        with pytest.raises(ConfigError):
            CountMinSketch(epsilon=0.0)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        keys = [f"k{i}" for i in range(1000)]
        for key in keys:
            bloom.add(key)
        assert all(key in bloom for key in keys)

    def test_false_positive_rate_near_target(self):
        bloom = BloomFilter(capacity=2000, fp_rate=0.02)
        for i in range(2000):
            bloom.add(f"in-{i}")
        fps = sum(1 for i in range(10000) if f"out-{i}" in bloom)
        assert fps / 10000 < 0.06  # 3x slack over target

    def test_empty_contains_nothing(self):
        bloom = BloomFilter(capacity=10)
        assert "x" not in bloom


class TestHyperLogLog:
    def test_estimates_within_error(self):
        hll = HyperLogLog(precision=12)
        n = 50_000
        for i in range(n):
            hll.add(f"item-{i}")
        rel_error = abs(hll.estimate() - n) / n
        assert rel_error < 0.05  # ~3 sigma for p=12

    def test_small_cardinality_linear_counting(self):
        hll = HyperLogLog(precision=10)
        for i in range(10):
            hll.add(f"x{i}")
        assert abs(hll.estimate() - 10) < 2

    def test_duplicates_not_counted(self):
        hll = HyperLogLog()
        for _ in range(1000):
            hll.add("same")
        assert hll.estimate() < 3

    def test_merge_unions(self):
        a = HyperLogLog(precision=12)
        b = HyperLogLog(precision=12)
        for i in range(10000):
            a.add(f"a-{i}")
            b.add(f"b-{i}")
        a.merge(b)
        assert abs(a.estimate() - 20000) / 20000 < 0.05

    def test_bad_precision_rejected(self):
        with pytest.raises(ConfigError):
            HyperLogLog(precision=3)


class TestReservoirSample:
    def test_fills_then_stays_at_k(self):
        reservoir = ReservoirSample(10, make_rng(0))
        for i in range(100):
            reservoir.add(i)
        assert len(reservoir.sample()) == 10
        assert reservoir.seen == 100

    def test_roughly_uniform(self):
        hits = np.zeros(100)
        for seed in range(300):
            reservoir = ReservoirSample(10, make_rng(seed))
            for i in range(100):
                reservoir.add(i)
            for item in reservoir.sample():
                hits[item] += 1
        # Each item expected 30 times; gross skew would break this.
        assert hits.min() > 5
        assert hits.max() < 80


class TestP2Quantile:
    def test_median_of_uniform(self):
        q = P2Quantile(0.5)
        rng = make_rng(0)
        for _ in range(5000):
            q.add(float(rng.random()))
        assert abs(q.value() - 0.5) < 0.03

    def test_p95_of_normal(self):
        q = P2Quantile(0.95)
        rng = make_rng(1)
        for _ in range(10000):
            q.add(float(rng.normal(0, 1)))
        assert abs(q.value() - 1.645) < 0.15

    def test_small_samples_exact_ish(self):
        q = P2Quantile(0.5)
        for v in [1.0, 2.0, 3.0]:
            q.add(v)
        assert q.value() == 2.0

    def test_empty_is_nan(self):
        assert math.isnan(P2Quantile(0.5).value())

    def test_bad_quantile_rejected(self):
        with pytest.raises(ConfigError):
            P2Quantile(1.5)


class TestRunningStats:
    def test_matches_numpy(self):
        rng = make_rng(2)
        data = rng.normal(5, 2, size=500)
        stats = RunningStats()
        for v in data:
            stats.add(v)
        assert stats.mean == pytest.approx(float(np.mean(data)))
        assert stats.variance == pytest.approx(float(np.var(data)))
        assert stats.minimum == pytest.approx(float(data.min()))
        assert stats.maximum == pytest.approx(float(data.max()))

    def test_merge_equals_sequential(self):
        rng = make_rng(3)
        a_data = rng.normal(0, 1, size=100)
        b_data = rng.normal(10, 5, size=200)
        merged = RunningStats()
        for v in list(a_data) + list(b_data):
            merged.add(v)
        a = RunningStats()
        b = RunningStats()
        for v in a_data:
            a.add(v)
        for v in b_data:
            b.add(v)
        a.merge(b)
        assert a.mean == pytest.approx(merged.mean)
        assert a.variance == pytest.approx(merged.variance)
        assert a.count == merged.count

    def test_merge_with_empty(self):
        a = RunningStats()
        a.add(1.0)
        a.merge(RunningStats())
        assert a.count == 1


class TestDecayedCounter:
    def test_decays_exponentially(self):
        counter = DecayedCounter(tau=10.0)
        counter.add(now=0.0)
        assert counter.value(10.0) == pytest.approx(math.exp(-1))

    def test_accumulates(self):
        counter = DecayedCounter(tau=1e9)
        counter.add(0.0)
        counter.add(1.0)
        assert counter.value(1.0) == pytest.approx(2.0, rel=1e-6)

    def test_time_backwards_rejected(self):
        counter = DecayedCounter(tau=1.0)
        counter.add(5.0)
        with pytest.raises(ConfigError):
            counter.value(4.0)


class TestIncrementalTopK:
    def test_top_ordering(self):
        topk = IncrementalTopK(2)
        for key, n in [("a", 3), ("b", 5), ("c", 1)]:
            for _ in range(n):
                topk.add(key)
        assert topk.top() == [("b", 5.0), ("a", 3.0)]

    def test_tie_broken_by_key(self):
        topk = IncrementalTopK(2)
        topk.add("z")
        topk.add("a")
        assert topk.top() == [("a", 1.0), ("z", 1.0)]


class TestIncrementalQuery:
    def test_update_answers_match_rebuild(self):
        history = [{"cat": "a", "v": float(i)} for i in range(10)]
        query = IncrementalQuery(criteria=lambda e: e["cat"] == "a",
                                 value_fn=lambda e: e["v"])
        for element in history:
            query.update(element)
        assert query.answer() == pytest.approx(4.5)
        assert query.updates == 10
        assert query.rebuilds == 0

    def test_criteria_change_rebuilds_from_history(self):
        history = [{"cat": "a" if i % 2 else "b", "v": float(i)}
                   for i in range(10)]
        query = IncrementalQuery(criteria=lambda e: e["cat"] == "a",
                                 value_fn=lambda e: e["v"])
        for element in history:
            query.update(element)
        query.change_criteria(lambda e: e["cat"] == "b", history)
        assert query.rebuilds == 1
        assert query.rebuild_cost == 10
        assert query.answer() == pytest.approx(np.mean([0, 2, 4, 6, 8]))


class TestBatchKernels:
    """Vectorized add_many/estimate_many/contains_many are bit-identical
    to the scalar loops they replace."""

    KEYS = [f"user-{i % 37}-{i}" for i in range(500)] + ["", "x", "x"]

    def test_cms_add_many_matches_loop(self):
        loop = CountMinSketch(epsilon=0.01, delta=0.01)
        batch = CountMinSketch(epsilon=0.01, delta=0.01)
        for k in self.KEYS:
            loop.add(k)
        batch.add_many(self.KEYS)
        assert (loop._table == batch._table).all()
        assert loop.total == batch.total

    def test_cms_add_many_with_counts(self):
        loop = CountMinSketch(epsilon=0.01, delta=0.01)
        batch = CountMinSketch(epsilon=0.01, delta=0.01)
        counts = [(i % 5) for i in range(len(self.KEYS))]
        for k, c in zip(self.KEYS, counts):
            loop.add(k, c)
        batch.add_many(self.KEYS, counts)
        assert (loop._table == batch._table).all()
        assert loop.total == batch.total

    def test_cms_estimate_many_matches_scalar(self):
        cms = CountMinSketch(epsilon=0.01, delta=0.01)
        cms.add_many(self.KEYS)
        queries = self.KEYS[:50] + ["never-seen-1", "never-seen-2"]
        got = cms.estimate_many(queries)
        assert got.tolist() == [cms.estimate(q) for q in queries]

    def test_cms_add_many_validates_counts(self):
        cms = CountMinSketch()
        with pytest.raises(ConfigError):
            cms.add_many(["a", "b"], [1])
        with pytest.raises(ConfigError):
            cms.add_many(["a", "b"], [1, -1])

    def test_cms_add_many_empty_is_noop(self):
        cms = CountMinSketch()
        cms.add_many([])
        assert cms.total == 0

    def test_bloom_add_many_matches_loop(self):
        loop = BloomFilter(capacity=1000, fp_rate=0.01)
        batch = BloomFilter(capacity=1000, fp_rate=0.01)
        for k in self.KEYS:
            loop.add(k)
        batch.add_many(self.KEYS)
        assert (loop._bits == batch._bits).all()
        assert loop.added == batch.added

    def test_bloom_contains_many_matches_scalar(self):
        bloom = BloomFilter(capacity=1000, fp_rate=0.01)
        bloom.add_many(self.KEYS)
        queries = self.KEYS[:50] + [f"absent-{i}" for i in range(200)]
        got = bloom.contains_many(queries)
        assert got.tolist() == [q in bloom for q in queries]
        assert got[:50].all()  # no false negatives, ever

    def test_hll_add_many_matches_loop(self):
        loop, batch = HyperLogLog(10), HyperLogLog(10)
        for k in self.KEYS:
            loop.add(k)
        batch.add_many(self.KEYS)
        assert (loop._registers == batch._registers).all()
        assert loop.estimate() == batch.estimate()

    def test_hll_add_many_incremental_merge(self):
        # Splitting the stream across add_many calls lands on the same
        # registers as one call (register updates are max-commutative).
        one = HyperLogLog(10)
        split = HyperLogLog(10)
        one.add_many(self.KEYS)
        split.add_many(self.KEYS[:100])
        split.add_many(self.KEYS[100:])
        assert (one._registers == split._registers).all()
