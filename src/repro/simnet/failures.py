"""Failure injection for topology nodes.

Schedules down/up transitions on the discrete-event kernel so experiments
and tests can exercise recovery paths (event-log leader failover, offload
fallback to local execution, remote-diagnosis link loss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError
from .kernel import Simulator
from .topology import Topology

__all__ = ["FailureEvent", "RegionFailureEvent", "FailureInjector",
           "channel_fault_specs"]


@dataclass(frozen=True)
class FailureEvent:
    node: str
    down_at: float
    up_at: float

    def __post_init__(self) -> None:
        if self.up_at <= self.down_at:
            raise ConfigError("up_at must be after down_at")


#: how a region can fail: all nodes down, a full (two-way) partition, or
#: an asymmetric one-way partition (only outbound / only inbound blocked)
REGION_FAILURE_MODES = ("loss", "partition", "partition_out",
                        "partition_in")


@dataclass(frozen=True)
class RegionFailureEvent:
    """A scheduled whole-region outage.

    ``mode``:

    - ``loss``           every node in the region goes down
    - ``partition``      links crossing the region boundary drop both ways
    - ``partition_out``  only traffic *leaving* the region is dropped
    - ``partition_in``   only traffic *entering* the region is dropped
    """

    region: str
    down_at: float
    up_at: float
    mode: str = "loss"

    def __post_init__(self) -> None:
        if self.up_at <= self.down_at:
            raise ConfigError("up_at must be after down_at")
        if self.mode not in REGION_FAILURE_MODES:
            raise ConfigError(
                f"unknown region failure mode {self.mode!r}; expected one "
                f"of {REGION_FAILURE_MODES}")


def channel_fault_specs(events: list[FailureEvent], *,
                        occurrences_per_second: float = 1.0,
                        kind: str = "channel_partition") -> list:
    """Bridge simnet outages onto the streaming chaos plan.

    Each scheduled :class:`FailureEvent` becomes one channel-fault
    :class:`~repro.chaos.plan.FaultSpec` at the
    ``streaming.channel`` site: the outage interval maps to an
    occurrence window (``occurrences_per_second`` converts simulated
    seconds to channel offers) and the repair time to the hold length,
    so a link that is down for 3 simulated seconds partitions a
    dataflow channel for ~3 delivery cycles.  This is how network-level
    experiments (A5 remote-diagnosis link loss) reuse the coordinated
    checkpoint suite without re-modelling faults twice.
    """
    from ..chaos.plan import SITE_CHANNEL, FaultSpec
    if occurrences_per_second <= 0:
        raise ConfigError("occurrences_per_second must be positive")
    specs = []
    for event in events:
        at = int(event.down_at * occurrences_per_second)
        width = max(1, int((event.up_at - event.down_at)
                           * occurrences_per_second))
        specs.append(FaultSpec(kind, SITE_CHANNEL, at=at, count=width,
                               param=width))
    return sorted(specs, key=lambda s: (s.at, s.count))


class FailureInjector:
    """Applies scripted or random outages to a topology."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self.injected: list[FailureEvent] = []
        self.region_injected: list[RegionFailureEvent] = []

    def schedule(self, event: FailureEvent) -> None:
        """Schedule one scripted outage."""
        self.topology.node(event.node)  # validate
        self.sim.schedule_at(event.down_at,
                             lambda: self.topology.fail_node(event.node),
                             label=f"fail:{event.node}")
        self.sim.schedule_at(event.up_at,
                             lambda: self.topology.recover_node(event.node),
                             label=f"recover:{event.node}")
        self.injected.append(event)

    def schedule_region(self, event: RegionFailureEvent) -> None:
        """Schedule a whole-region outage (loss or partition).

        ``loss`` maps onto :meth:`Topology.fail_region` /
        :meth:`Topology.recover_region`; the partition modes onto
        :meth:`Topology.partition_region` with the matching direction and
        :meth:`Topology.heal_region` — so heal-after-partition restores
        every blocked link direction at ``up_at``.
        """
        topo = self.topology
        topo._region_node_names(event.region)  # validate region exists
        if event.mode == "loss":
            down = lambda: topo.fail_region(event.region)  # noqa: E731
            up = lambda: topo.recover_region(event.region)  # noqa: E731
        else:
            direction = {"partition": "both", "partition_out": "out",
                         "partition_in": "in"}[event.mode]
            down = lambda: topo.partition_region(  # noqa: E731
                event.region, direction)
            up = lambda: topo.heal_region(event.region)  # noqa: E731
        self.sim.schedule_at(event.down_at, down,
                             label=f"{event.mode}:{event.region}")
        self.sim.schedule_at(event.up_at, up,
                             label=f"heal:{event.region}")
        self.region_injected.append(event)

    def schedule_random(self, node: str, rng: np.random.Generator,
                        horizon: float, mtbf: float, mttr: float) -> int:
        """Poisson outages for ``node`` over [now, now+horizon).

        ``mtbf``/``mttr`` are exponential means for time-between-failures
        and time-to-repair.  Returns the number of outages scheduled.
        """
        if mtbf <= 0 or mttr <= 0 or horizon <= 0:
            raise ConfigError("mtbf, mttr and horizon must be positive")
        t = self.sim.now
        end = t + horizon
        count = 0
        while True:
            t += rng.exponential(mtbf)
            if t >= end:
                break
            repair = rng.exponential(mttr)
            up_at = min(t + repair, end)
            if up_at <= t:
                continue
            self.schedule(FailureEvent(node=node, down_at=t, up_at=up_at))
            t = up_at
            count += 1
        return count
