"""StoreSink epoch protocol + checkpoint retention + app serving wiring.

Three seams of the tiered-store bugfix sweep:

* the sink's prefix-delta logic (apply exactly the unapplied suffix,
  tolerate replayed commits, refuse rewound streams);
* the CheckpointStore retain-watermark (pruning must never delete the
  checkpoint a lagging store consumer would rewind to — the regression
  that motivated satellite #1);
* the three apps' serving stores end to end over real topics.
"""

import pytest

from repro.eventlog import LogCluster, Producer, TopicConfig
from repro.store import StoreSink, TieredStore, canonical_contents, serve_topic
from repro.streaming.coordinator import CheckpointManifest, CheckpointStore
from repro.streaming.element import Element
from repro.streaming.execution import ParallelCheckpoint
from repro.util.errors import CheckpointError, StoreError
from repro.util.rng import make_rng


def _checkpoint(cid):
    return ParallelCheckpoint(
        checkpoint_id=cid, num_key_groups=8, parallelism={},
        num_splits={}, source_positions={}, keyed_state={},
        scalar_state={}, sink_elements={})


def _finalize(store, cid):
    manifest = CheckpointManifest(checkpoint_id=cid)
    store.record(manifest)
    store.finalize(_checkpoint(cid), manifest)


def _els(n, offset=0):
    return [Element(value={"v": i}, timestamp=float(i), key=f"k-{i % 3}")
            for i in range(offset, offset + n)]


class _FakeCoordinator:
    def __init__(self):
        self.store = CheckpointStore(keep=1)
        self.listeners = []


class TestStoreSinkDelta:
    def test_applies_only_the_unapplied_suffix(self):
        sink = StoreSink(TieredStore(num_shards=2))
        committed = _els(5)
        assert sink.on_checkpoint_committed(1, committed) == 5
        committed = committed + _els(3, offset=5)
        assert sink.on_checkpoint_committed(2, committed) == 3
        assert sink.store.analytical.rows == 8
        assert sink.store.hot.rows == 8
        assert sink.last_applied_epoch == 2

    def test_replayed_commit_is_a_noop(self):
        sink = StoreSink(TieredStore(num_shards=2))
        committed = _els(5)
        sink.on_checkpoint_committed(1, committed)
        assert sink.on_checkpoint_committed(1, committed) == 0
        assert sink.store.analytical.rows == 5
        assert sink.applied_epochs == 2  # second apply installed nothing

    def test_rewound_stream_raises(self):
        sink = StoreSink(TieredStore(num_shards=2))
        sink.on_checkpoint_committed(1, _els(5))
        with pytest.raises(StoreError):
            sink.on_checkpoint_committed(2, _els(3))

    def test_sink_name_filter(self):
        sink = StoreSink(TieredStore(num_shards=2), sink_name="store")
        coord = _FakeCoordinator()
        sink.attach(coord)
        (listener,) = coord.listeners
        listener(1, "other-sink", _els(4))
        assert sink.store.analytical.rows == 0
        listener(1, "store", _els(4))
        assert sink.store.analytical.rows == 4

    def test_attach_is_idempotent_and_advances_watermark(self):
        sink = StoreSink(TieredStore(num_shards=2), sink_name="store")
        coord = _FakeCoordinator()
        sink.attach(coord)
        sink.attach(coord)  # re-attach after a coordinator rebuild
        assert len(coord.listeners) == 1
        assert coord.store.retain_watermark() == 0
        coord.listeners[0](3, "store", _els(6))
        assert coord.store.retain_watermark() == 3


class TestRetainWatermark:
    """Regression: pruning must honour lagging consumers (satellite #1)."""

    def test_pruning_never_deletes_at_or_above_watermark(self):
        store = CheckpointStore(keep=1)
        store.register_consumer("serving-store", 2)
        for cid in range(1, 6):
            _finalize(store, cid)
        # keep=1 would leave only 5; the watermark pins 2, 3, 4 too
        assert store.retained_ids() == [2, 3, 4, 5]
        assert store.pruned == 1

    def test_restore_from_oldest_retained_after_pruning(self):
        store = CheckpointStore(keep=1)
        store.register_consumer("serving-store", 2)
        for cid in range(1, 6):
            _finalize(store, cid)
        # the consumer rewinds to its watermark: the snapshot must exist
        oldest = store.retain_watermark()
        snap = store.snapshot(oldest)
        assert snap is not None and snap.checkpoint_id == 2
        # once the consumer catches up, pruning resumes
        store.consumer_applied("serving-store", 5)
        assert store.retained_ids() == [5]
        assert store.snapshot(2) is None

    def test_consumer_applied_is_monotonic_and_validated(self):
        store = CheckpointStore()
        with pytest.raises(CheckpointError):
            store.consumer_applied("nobody", 1)
        store.register_consumer("c", 3)
        store.consumer_applied("c", 2)  # late report: does not rewind
        assert store.retain_watermark() == 3

    def test_unregister_releases_the_watermark(self):
        store = CheckpointStore(keep=1)
        store.register_consumer("c", 1)
        for cid in range(1, 5):
            _finalize(store, cid)
        assert len(store.retained_ids()) == 4
        store.unregister_consumer("c")
        assert store.retained_ids() == [4]


class TestServeTopic:
    def _cluster(self, topic, n=120):
        cluster = LogCluster(num_brokers=1)
        cluster.create_topic(TopicConfig(name=topic, partitions=2))
        producer = Producer(cluster)
        rng = make_rng(13)
        for i in range(n):
            producer.send(topic, {"m": float(rng.uniform(0, 10)), "i": i},
                          key=f"u-{i % 5}", timestamp=float(i))
        return cluster

    def test_fault_free_run_feeds_both_tiers(self):
        cluster = self._cluster("t.events")
        store, report = serve_topic(cluster, "t.events",
                                    metric_fn=lambda v: v["m"])
        assert report.checkpoints >= 1
        assert store.analytical.rows == 120
        assert store.hot.rows == 120
        # newest record per key is the highest-timestamp one
        for k in range(5):
            (ts, value), = store.latest(f"u-{k}", 1)
            assert value["i"] == 115 + k
        # dashboards see every committed row
        assert sum(store.group_by("count").values()) == 120

    def test_restore_rewinds_to_a_retained_checkpoint(self):
        """A store crash forces a restore; the watermark guarantees the
        rewind target survived pruning, and the store converges to the
        fault-free contents."""
        from repro.chaos.injector import FaultInjector
        from repro.chaos.plan import SITE_STORE, FaultPlan, FaultSpec

        golden, _ = serve_topic(self._cluster("t.gold"), "t.gold",
                                metric_fn=lambda v: v["m"],
                                interval_cycles=2, source_batch=32)
        plan = FaultPlan(specs=(
            FaultSpec(kind="store_crash", site=SITE_STORE,
                      target="apply", at=1),))
        store, report = serve_topic(self._cluster("t.chaos"), "t.chaos",
                                    metric_fn=lambda v: v["m"],
                                    interval_cycles=2, source_batch=32,
                                    injector=FaultInjector(plan))
        assert report.crashes >= 1
        assert report.full_restores >= 1
        assert canonical_contents(store) == canonical_contents(golden)
        assert store.analytical.rows == golden.analytical.rows
