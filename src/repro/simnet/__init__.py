"""Discrete-event simulation kernel, network model, topology, failures."""

from .failures import FailureEvent, FailureInjector
from .kernel import ScheduledEvent, Simulator
from .network import LINK_PRESETS, Link, LinkSpec
from .queueing import ProcessingQueue, QueuedTask
from .topology import NodeSpec, Topology

__all__ = [
    "Simulator",
    "ScheduledEvent",
    "LinkSpec",
    "Link",
    "LINK_PRESETS",
    "NodeSpec",
    "Topology",
    "ProcessingQueue",
    "QueuedTask",
    "FailureEvent",
    "FailureInjector",
]
