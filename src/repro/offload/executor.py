"""Offload plan pricing: latency and energy per (pipeline, cut, tier).

The cost model behind experiment T1:

    latency(cut, tier) = local_cycles / device_hz
                       + upload_time + remote_cycles / tier_hz + download_time
    energy(cut, tier)  = P_active * local_compute_time
                       + P_radio * transfer_time
                       + P_idle * remote_wait_time

All-local plans pay no network; remote plans pay the (sampled, jittery,
lossy) round trip from :mod:`repro.simnet`.  ``plan`` enumerates every
valid cut on every tier and returns the frontier the policies choose
from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..simnet.topology import Topology
from ..util.errors import NetworkError, OffloadError
from .tasks import Pipeline

__all__ = ["EnergyModel", "PlanOutcome", "OffloadPlanner"]


@dataclass(frozen=True)
class EnergyModel:
    """Device power states in watts."""

    active_w: float = 2.5
    radio_w: float = 1.2
    idle_w: float = 0.3

    def __post_init__(self) -> None:
        if min(self.active_w, self.radio_w, self.idle_w) < 0:
            raise OffloadError("power draws must be non-negative")


@dataclass(frozen=True)
class PlanOutcome:
    """One priced execution plan."""

    pipeline: str
    tier_node: str  # node name; == device for all-local
    cut: int
    latency_s: float
    energy_j: float
    upload_bytes: float
    local_compute_s: float
    remote_compute_s: float
    network_s: float

    @property
    def is_local(self) -> bool:
        return self.network_s == 0.0


class OffloadPlanner:
    """Enumerates and prices plans over a topology."""

    def __init__(self, topology: Topology, device: str,
                 energy: EnergyModel | None = None,
                 result_bytes: float = 128.0) -> None:
        self.topology = topology
        self.device = topology.node(device)
        self.energy = energy if energy is not None else EnergyModel()
        self.result_bytes = result_bytes
        self._tier_load: dict[str, float] = {}

    def set_tier_load(self, node: str, utilization: float) -> None:
        """Report a tier's current utilization (offered load / capacity).

        Remote compute time is inflated by the M/M/1-style factor
        1/(1 - rho); at rho >= 1 the tier is saturated and treated as
        infeasible (A6 measured exactly that knee).  Load reports come
        from whatever admission/monitoring loop the caller runs — the
        planner just prices what it is told.
        """
        if utilization < 0:
            raise OffloadError("utilization must be non-negative")
        self.topology.node(node)  # validate
        self._tier_load[node] = float(utilization)

    def _congestion_factor(self, node: str) -> float:
        rho = self._tier_load.get(node, 0.0)
        if rho >= 1.0:
            raise OffloadError(f"tier {node!r} saturated (rho={rho:.2f})")
        return 1.0 / (1.0 - rho)

    def price(self, pipeline: Pipeline, cut: int,
              tier_node: str) -> PlanOutcome:
        """Price one (cut, tier) plan with sampled network times."""
        local_s = pipeline.local_cycles(cut) / self.device.cpu_hz
        remote_cycles = pipeline.remote_cycles(cut)
        upload = pipeline.upload_bytes(cut)
        if remote_cycles == 0 or tier_node == self.device.name:
            # All-local (any nominally "remote" cycles run on the device).
            total_local_s = pipeline.total_cycles / self.device.cpu_hz
            return PlanOutcome(
                pipeline=pipeline.name, tier_node=self.device.name,
                cut=max(pipeline.valid_cuts()), latency_s=total_local_s,
                energy_j=self.energy.active_w * total_local_s,
                upload_bytes=0.0, local_compute_s=total_local_s,
                remote_compute_s=0.0, network_s=0.0)
        tier = self.topology.node(tier_node)
        if not tier.up:
            raise OffloadError(f"tier node {tier_node!r} is down")
        remote_s = (remote_cycles / tier.cpu_hz
                    * self._congestion_factor(tier_node))
        up_s = self.topology.transfer_time(self.device.name, tier_node,
                                           upload)
        down_s = self.topology.transfer_time(tier_node, self.device.name,
                                             self.result_bytes)
        network_s = up_s + down_s
        latency = local_s + network_s + remote_s
        energy = (self.energy.active_w * local_s
                  + self.energy.radio_w * network_s
                  + self.energy.idle_w * remote_s)
        return PlanOutcome(
            pipeline=pipeline.name, tier_node=tier_node, cut=cut,
            latency_s=latency, energy_j=energy, upload_bytes=upload,
            local_compute_s=local_s, remote_compute_s=remote_s,
            network_s=network_s)

    def plan(self, pipeline: Pipeline,
             tiers: list[str] | None = None) -> list[PlanOutcome]:
        """Price every valid cut on every reachable tier (+ all-local)."""
        if tiers is None:
            tiers = [n.name for n in self.topology.nodes()
                     if n.name != self.device.name and n.up]
        cuts = pipeline.valid_cuts()
        outcomes = [self.price(pipeline, max(cuts), self.device.name)]
        for tier in tiers:
            for cut in cuts:
                if pipeline.remote_cycles(cut) == 0:
                    continue
                try:
                    outcomes.append(self.price(pipeline, cut, tier))
                except (OffloadError, NetworkError):
                    continue  # tier down or unreachable over the net
        return outcomes
