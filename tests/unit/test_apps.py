"""Unit tests: the four domain applications."""

import numpy as np
import pytest

from repro.apps import (
    HealthcareApp,
    PublicServicesApp,
    RetailApp,
    TourismApp,
)
from repro.core import ARBigDataPipeline, DEFAULT_INTRINSICS, PipelineConfig
from repro.datagen import (
    Episode,
    ExcavationSite,
    MobilityConfig,
    RetailWorld,
    RingRoadSim,
    generate_patients,
    generate_population,
    vitals_stream,
)
from repro.sensors import Poi, PoiDatabase
from repro.util.errors import PipelineError
from repro.util.geometry import Rect
from repro.util.rng import make_rng


def _pipeline(seed=0):
    return ARBigDataPipeline(PipelineConfig(seed=seed))


class TestRetailApp:
    def _app(self, seed=0, shoppers=30):
        rng = make_rng(seed)
        world = RetailWorld.generate(rng, num_products=80,
                                     num_categories=8,
                                     num_shoppers=shoppers,
                                     preference_concentration=0.2)
        app = RetailApp(_pipeline(seed), world)
        app.ingest_interactions(world.interactions(rng,
                                                   events_per_shopper=25))
        return app, rng

    def test_cf_beats_popularity(self):
        app, rng = self._app()
        evaluation = app.evaluate(rng, k=5, max_users=20)
        assert evaluation.cf_precision > evaluation.popularity_precision
        assert evaluation.uplift > 0.0

    def test_recommendations_are_personal(self):
        app, _rng = self._app()
        a = [i for i, _s in app.recommend("s-0000", k=5)]
        b = [i for i, _s in app.recommend("s-0001", k=5)]
        assert a != b

    def test_popularity_mode_is_global(self):
        app, _rng = self._app()
        a = app.recommend("s-0000", k=5, personalized=False)
        b = app.recommend("s-0001", k=5, personalized=False)
        # Identical except for seen-item exclusion; compare scores pool.
        assert {i for i, _ in a} <= {i for i, _ in
                                     app.popularity.recommend("s-0001",
                                                              k=100,
                                                              exclude_seen=False)}
        assert len(a) == len(b) == 5

    def test_gaze_boosts_looked_at_neighbourhood(self):
        app, rng = self._app()
        shopper = app.world.shoppers[0]
        events = app.world.gaze_stream(rng, shopper, n_events=8)
        app.ingest_gaze(events)
        recs = app.recommend(shopper.shopper_id, k=5,
                             now=events[-1].timestamp)
        assert len(recs) == 5

    def test_xray_locator_sees_through_shelf(self):
        app, _rng = self._app()
        # Pick a product behind at least one shelf from the user position.
        result = None
        for product in app.world.products:
            result = app.locate_product("s-0000", product.product_id,
                                        (0.5, 0.5))
            if result["occluded"]:
                break
        assert result is not None and result["found"]
        if result["occluded"]:
            assert result["xray"]

    def test_unknown_product_rejected(self):
        app, _rng = self._app()
        with pytest.raises(PipelineError):
            app.locate_product("s-0000", "nope", (0, 0))

    def test_publish_recommendations_binds(self):
        app, _rng = self._app()
        bound = app.publish_recommendations("s-0000", k=5)
        assert bound == 5


class TestTourismApp:
    def _app(self, seed=1, n_pois=120, area=3000.0):
        rng = make_rng(seed)
        pois = PoiDatabase(Rect(0, 0, area, area))
        categories = ["landmark", "museum", "cafe", "park"]
        for i in range(n_pois):
            pois.add(Poi(poi_id=f"poi-{i:03d}", name=f"POI {i}",
                         category=categories[i % 4],
                         x=float(rng.uniform(0, area)),
                         y=float(rng.uniform(0, area)),
                         popularity=float(n_pois - i)))
        return TourismApp(_pipeline(seed), pois), rng

    def test_nearby_content_limited_and_prioritized(self):
        app, _rng = self._app()
        annotations = app.nearby_content(1500, 1500, radius_m=2000,
                                         limit=10)
        assert len(annotations) == 10

    def test_smart_overlay_beats_naive(self):
        app, _rng = self._app()
        comparison = app.compare_overlays(1500, 1500, (1600, 1500),
                                          DEFAULT_INTRINSICS,
                                          radius_m=1200)
        assert comparison.smart_useful_ratio >= comparison.naive_useful_ratio
        assert comparison.smart_overlap_ratio <= comparison.naive_overlap_ratio

    def test_trending_decays(self):
        app, _rng = self._app()
        app.record_visit("u1", "poi-000", timestamp=0.0)
        app.record_visit("u2", "poi-001", timestamp=3600.0)
        trending = app.trending(now=3600.0, k=2)
        assert trending[0][0] == "poi-001"

    def test_game_increases_engagement(self):
        app, rng = self._app()
        traces = generate_population(
            15, rng, MobilityConfig(steps=150, area_m=3000.0))
        stats = app.run_game(traces, portal_count=15, encounter_m=50.0,
                             detour_m=200.0)
        assert stats.visits_gamified >= stats.visits_plain

    def test_dwell_sessions_split_by_gap(self):
        app, _rng = self._app()
        # u1 dwells at poi-000: 4 visits within minutes, then returns
        # hours later for 2 more; u2 walks past once.
        for t in (0.0, 120.0, 240.0, 360.0):
            app.record_visit("u1", "poi-000", timestamp=t)
        app.record_visit("u2", "poi-000", timestamp=400.0)
        for t in (7200.0, 7300.0):
            app.record_visit("u1", "poi-000", timestamp=t)
        sessions = app.dwell_sessions(gap_s=900.0)
        by_user = {}
        for s in sessions:
            by_user.setdefault(s.key[0], []).append(s.value)
        # Pseudonymized keys: find them by session shape.
        counts = sorted(v for values in by_user.values() for v in values)
        assert counts == [1, 2, 4]
        assert len(by_user) == 2  # two distinct (pseudonymous) users

    def test_private_trending_release(self):
        app, rng = self._app()
        for i in range(300):
            app.record_visit(f"u{i % 20}",
                             f"poi-{0 if i % 2 else i % 50:03d}",
                             timestamp=i * 10.0)
        truth = [poi for poi, _s in app.trending(now=3000.0, k=3)]
        released = app.trending_private(now=3000.0, k=3, epsilon=50.0,
                                        rng=rng)
        assert len(released) == 3
        # Generous epsilon: the dominant POI survives the release.
        assert truth[0] in released

    def test_private_trending_needs_candidates(self):
        app, rng = self._app()
        app.record_visit("u1", "poi-000", timestamp=0.0)
        with pytest.raises(PipelineError):
            app.trending_private(now=1.0, k=5, epsilon=1.0, rng=rng)

    def test_translation_coverage(self):
        app, _rng = self._app()
        phrasebook = {"出口": "Exit", "入口": "Entrance"}
        out = app.translate_signs([("s1", "出口"), ("s2", "駅"),
                                   ("s3", "入口")], phrasebook)
        assert [o["covered"] for o in out] == [True, False, True]


class TestHealthcareApp:
    def _app(self, seed=2, n=4):
        rng = make_rng(seed)
        patients = generate_patients(rng, n=n, episode_rate=0.0,
                                     horizon_s=1200.0)
        # One scripted, strong episode for determinism.
        patients[0].episodes.append(Episode(
            vital="heart_rate", onset_s=600.0, end_s=1100.0,
            magnitude=70.0, ramp_s=60.0))
        app = HealthcareApp(_pipeline(seed), patients)
        return app, patients, rng

    def test_episode_detected_with_lead_time(self):
        app, patients, rng = self._app()
        for patient in patients:
            app.ingest_vitals(vitals_stream(patient, rng,
                                            horizon_s=1200.0,
                                            period_s=5.0))
        outcomes = app.detection_outcomes()
        assert len(outcomes) == 1
        assert outcomes[0].detected
        assert outcomes[0].lead_delay_s < 300.0

    def test_quiet_patients_raise_few_alarms(self):
        app, patients, rng = self._app()
        raised = 0
        for patient in patients[1:]:
            raised += app.ingest_vitals(vitals_stream(
                patient, rng, horizon_s=1200.0, period_s=5.0))
        # 3 patients x 4 vitals x 240 samples: tolerate a tiny FP budget.
        assert raised <= 20

    def test_ehr_overlay_binds(self):
        app, _patients, _rng = self._app()
        assert app.publish_ehr_overlay("pt-000") == 1

    def test_unknown_patient_rejected(self):
        app, _patients, _rng = self._app()
        with pytest.raises(PipelineError):
            app.publish_ehr_overlay("pt-999")

    def test_compound_pattern_detects_only_the_sick_patient(self):
        rng = make_rng(10)
        patients = generate_patients(rng, n=4, episode_rate=0.0,
                                     horizon_s=2400.0)
        # pt-001 deteriorates: tachycardia then hypotension.
        patients[1].episodes.append(Episode(
            vital="heart_rate", onset_s=800.0, end_s=2000.0,
            magnitude=55.0, ramp_s=60.0))
        patients[1].episodes.append(Episode(
            vital="systolic_bp", onset_s=1100.0, end_s=2000.0,
            magnitude=-45.0, ramp_s=120.0))
        app = HealthcareApp(_pipeline(10), patients)
        for patient in patients:
            app.ingest_vitals(vitals_stream(patient, rng,
                                            horizon_s=2400.0,
                                            period_s=10.0))
        matches = app.detect_compound()
        assert matches
        assert {m.key for m in matches} == {"pt-001"}
        # The first compound alarm fires shortly after the BP drop.
        first = min(m.timestamps[-1] for m in matches)
        assert 1100.0 <= first <= 1400.0
        # Each match is ordered and within the CEP window.
        for m in matches:
            assert m.timestamps[0] <= m.timestamps[-1]
            assert m.span_s <= 600.0

    def test_remote_diagnosis_budget(self):
        app, _patients, rng = self._app()
        lan = app.remote_diagnosis(rng, link="lan", frames=100)
        wan = app.remote_diagnosis(rng, link="wan", frames=100)
        assert lan.mean_latency_s < wan.mean_latency_s
        assert lan.miss_rate == 0.0


class TestPublicServicesApp:
    def test_threats_during_slowdown(self):
        rng = make_rng(3)
        app = PublicServicesApp(_pipeline(3))
        sim = RingRoadSim(rng, num_vehicles=30, ring_length_m=1500.0)
        sim.force_slowdown(5, start_s=5.0, end_s=100.0, speed_mps=0.3)
        warned_ever = False
        min_ttc = float("inf")
        for _ in range(40):  # sample while the shock wave forms
            sim.step(0.5)
            threats = app.assess_threats(sim)
            warned_ever = warned_ever or any(t.warning for t in threats)
            min_ttc = min(min_ttc, min(t.ttc_s for t in threats))
        assert warned_ever
        assert min_ttc < 4.0  # someone closed in fast on the blockage

    def test_blind_spot_warnings_use_xray(self):
        rng = make_rng(4)
        app = PublicServicesApp(_pipeline(4))
        sim = RingRoadSim(rng, num_vehicles=30, ring_length_m=1500.0)
        sim.force_slowdown(5, start_s=5.0, end_s=100.0, speed_mps=0.2)
        for _ in range(60):
            sim.step(0.5)
        warned = app.blind_spot_warnings(sim, lookahead=3)
        assert len(warned) >= 1

    def test_ar_screening_beats_manual(self):
        rng = make_rng(5)
        app = PublicServicesApp(_pipeline(5))
        manual = app.run_screening(rng, mode="manual", passengers=150)
        ar = app.run_screening(rng, mode="ar", passengers=150)
        assert ar.mean_wait_s < manual.mean_wait_s
        assert ar.throughput_per_min > manual.throughput_per_min

    def test_unknown_screening_mode_rejected(self):
        app = PublicServicesApp(_pipeline(6))
        with pytest.raises(PipelineError):
            app.run_screening(make_rng(0), mode="psychic")

    def test_excavation_overlay_tracks_deviation(self):
        rng = make_rng(7)
        app = PublicServicesApp(_pipeline(7))
        site = ExcavationSite(rng)
        scene_before = app.excavation_overlay(site)
        for _ in range(25):
            site.excavate_day(fraction=0.3, noise_m=0.05)
        scene_after = app.excavation_overlay(site)
        assert len(scene_after) < len(scene_before)

    def test_role_views_partition_utilities(self):
        app = PublicServicesApp(_pipeline(8))
        utilities = [{"id": 1, "kind": "electrical", "x": 0, "y": 0,
                      "depth": 1.0},
                     {"id": 2, "kind": "water", "x": 1, "y": 0,
                      "depth": 2.0},
                     {"id": 3, "kind": "water", "x": 2, "y": 0,
                      "depth": 2.0}]
        views = {v.role: v for v in app.role_views(utilities)}
        assert views["plumber"].visible == 2
        assert views["electrician"].visible == 1
        assert views["electrician"].hidden == 2


class TestServingStores:
    """Tiered serving store wiring: hot overlays + analytical dashboards."""

    def test_retail_overlay_and_engagement(self):
        rng = make_rng(0)
        world = RetailWorld.generate(rng, num_products=40,
                                     num_categories=4, num_shoppers=10,
                                     preference_concentration=0.2)
        app = RetailApp(_pipeline(0), world)
        with pytest.raises(PipelineError):
            app.overlay_state("s-0000")
        shopper = world.shoppers[0]
        events = world.gaze_stream(rng, shopper, n_events=12)
        app.ingest_gaze(events)
        app.build_serving_store()
        overlay = app.overlay_state(shopper.shopper_id, n=3)
        assert len(overlay) == 3
        assert overlay[0]["ts"] >= overlay[1]["ts"] >= overlay[2]["ts"]
        dash = app.engagement_dashboard()
        total = sum(dash.values())
        assert total == pytest.approx(sum(e.dwell_s for e in events))

    def test_tourism_recent_visits_and_footfall(self):
        rng = make_rng(1)
        pois = PoiDatabase(Rect(0, 0, 100, 100))
        for i in range(4):
            pois.add(Poi(poi_id=f"p-{i}", name=f"POI {i}",
                         category="museum", x=float(i * 10), y=5.0))
        app = TourismApp(_pipeline(1), pois)
        for t in range(10):
            app.record_visit(f"u-{t % 3}", f"p-{t % 4}",
                             timestamp=float(t * 100))
        app.build_serving_store()
        recent = app.recent_visits("u-0", 3)
        assert [poi for _ts, poi in recent] == ["p-1", "p-2", "p-3"]
        footfall = app.footfall_dashboard()
        assert sum(footfall.values()) == 10
        assert footfall["p-0"] == 3.0
        # time-bounded dashboard sees only the window
        early = app.footfall_dashboard(start=0.0, end=300.0)
        assert sum(early.values()) == 3

    def test_healthcare_latest_vitals_and_dashboard(self):
        rng = make_rng(2)
        patients = generate_patients(rng, n=3, episode_rate=0.0,
                                     horizon_s=120.0)
        app = HealthcareApp(_pipeline(2), patients)
        streams = {p.patient_id: vitals_stream(p, rng, horizon_s=60.0,
                                               period_s=10.0)
                   for p in patients}
        for samples in streams.values():
            app.ingest_vitals(samples)
        app.build_serving_store()
        pid = patients[0].patient_id
        latest = app.latest_vitals(pid)
        # every vital present, each matching the newest ingested sample
        newest = {}
        for s in streams[pid]:
            if s.vital not in newest or s.timestamp >= newest[s.vital][0]:
                newest[s.vital] = (s.timestamp, s.value)
        assert latest == newest
        with pytest.raises(PipelineError):
            app.latest_vitals("pt-999")
        dash = app.vitals_dashboard(window_s=30.0)
        rows = sum(len(v) for v in streams.values())
        assert app.serving_store.analytical.rows == rows
        assert dash  # per (patient:vital, window) means
