"""Keyed interval join of two streams.

Joins elements of a left and right stream that share a key and whose
event timestamps are within ``[lower, upper]`` of each other
(Flink's interval join).  Buffers are pruned by the watermark, bounding
state.  The two inputs are distinguished by tagging elements with a
side; the executor delivers items from each upstream edge with its tag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..util.errors import StreamError
from .element import Element, StreamItem, Watermark
from .operators import Operator

__all__ = ["Joined", "IntervalJoinOperator"]


@dataclass(frozen=True)
class Joined:
    """One join match."""

    key: Any
    left: Any
    right: Any
    left_ts: float
    right_ts: float


class IntervalJoinOperator(Operator):
    """Two-input keyed interval join.

    ``lower <= right_ts - left_ts <= upper`` pairs match.  The executor
    calls :meth:`process_side` with side "left"/"right"; plain
    :meth:`process` raises, so mis-wiring fails loudly.
    """

    SIDES = ("left", "right")
    requires_shuffle = True

    def __init__(self, name: str, lower: float, upper: float,
                 project: Callable[[Any, Any], Any] | None = None) -> None:
        super().__init__(name)
        if lower > upper:
            raise StreamError(f"empty join interval [{lower}, {upper}]")
        self.lower = lower
        self.upper = upper
        self.project = project
        # side -> key -> list[(ts, value)]
        self._buffers: dict[str, dict[Any, list[tuple[float, Any]]]] = {
            "left": {}, "right": {},
        }
        self._wm: dict[str, float] = {"left": float("-inf"),
                                      "right": float("-inf")}
        self.matches = 0

    def process(self, element: Element) -> list[StreamItem]:
        raise StreamError(
            f"join {self.name!r} needs side-tagged input; wire it as a "
            "two-input operator"
        )

    def process_side(self, side: str, element: Element) -> list[StreamItem]:
        if side not in self.SIDES:
            raise StreamError(f"unknown join side {side!r}")
        if element.key is None:
            raise StreamError(f"join {self.name!r} requires keyed input")
        self.processed += 1
        buffers = self._buffers[side]
        buffers.setdefault(element.key, []).append(
            (element.timestamp, element.value))
        other = "right" if side == "left" else "left"
        out: list[StreamItem] = []
        for other_ts, other_value in self._buffers[other].get(element.key, ()):
            if side == "left":
                delta = other_ts - element.timestamp
                left_ts, right_ts = element.timestamp, other_ts
                left_v, right_v = element.value, other_value
            else:
                delta = element.timestamp - other_ts
                left_ts, right_ts = other_ts, element.timestamp
                left_v, right_v = other_value, element.value
            if self.lower <= delta <= self.upper:
                self.matches += 1
                payload: Any = Joined(key=element.key, left=left_v,
                                      right=right_v, left_ts=left_ts,
                                      right_ts=right_ts)
                if self.project is not None:
                    payload = self.project(left_v, right_v)
                out.append(Element(value=payload,
                                   timestamp=max(left_ts, right_ts),
                                   key=element.key))
        self.emitted += len(out)
        return out

    def process_side_batch(self, side: str,
                           items: "Iterable[StreamItem]") -> list[StreamItem]:
        """Batch dispatch for one side's channel: same per-item order and
        counters as the executor's per-item loop."""
        out: list[StreamItem] = []
        process_side = self.process_side
        on_watermark_side = self.on_watermark_side
        for item in items:
            if isinstance(item, Watermark):
                out.extend(on_watermark_side(side, item))
            else:
                out.extend(process_side(side, item))
        return out

    def on_watermark_side(self, side: str, watermark: Watermark) -> list[StreamItem]:
        """Advance one side's watermark; prune; forward the min watermark."""
        self._wm[side] = max(self._wm[side], watermark.timestamp)
        combined = min(self._wm.values())
        self._prune(combined)
        return [Watermark(combined)] if combined > float("-inf") else []

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        raise StreamError(
            f"join {self.name!r} needs side-tagged watermarks"
        )

    def _prune(self, watermark: float) -> None:
        """Drop buffered entries that can no longer match anything.

        A left element at ts can match right elements in
        [ts+lower, ts+upper]; once the watermark passes ts+upper it is
        dead.  Symmetrically for the right side with -lower.
        """
        for side, horizon in (("left", self.upper), ("right", -self.lower)):
            buffers = self._buffers[side]
            for key in list(buffers):
                kept = [(ts, v) for ts, v in buffers[key]
                        if ts + horizon >= watermark]
                if kept:
                    buffers[key] = kept
                else:
                    del buffers[key]

    def buffered(self) -> int:
        return sum(len(rows) for side in self._buffers.values()
                   for rows in side.values())

    def snapshot(self) -> Any:
        import copy
        return {"buffers": copy.deepcopy(self._buffers),
                "wm": dict(self._wm), "matches": self.matches}

    def restore(self, snapshot: Any) -> None:
        import copy
        snapshot = snapshot or {}
        self._buffers = copy.deepcopy(
            snapshot.get("buffers", {"left": {}, "right": {}}))
        self._wm = dict(snapshot.get(
            "wm", {"left": float("-inf"), "right": float("-inf")}))
        self.matches = snapshot.get("matches", 0)

    # -- key-grouped checkpoints (parallel plans) ----------------------------

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        import copy
        from .shuffle import key_group_for
        groups: dict[int, Any] = {}
        for side, per_key in self._buffers.items():
            for key, rows in per_key.items():
                blob = groups.setdefault(
                    key_group_for(key, num_key_groups),
                    {"left": {}, "right": {}})
                blob[side][key] = copy.deepcopy(rows)
        return groups

    def scalar_snapshot(self) -> Any:
        return {"wm": dict(self._wm), "matches": self.matches}

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        import copy
        self._buffers = {"left": {}, "right": {}}
        for blob in groups.values():
            for side in self.SIDES:
                self._buffers[side].update(copy.deepcopy(blob[side]))
        if len(scalars) == 1:
            self._wm = dict(scalars[0]["wm"])
            self.matches = scalars[0]["matches"]
        else:
            # Rescale: per-side watermarks regress to the minimum (prune
            # later, never earlier); the match total rides the primary.
            self._wm = {
                side: min((s["wm"][side] for s in scalars),
                          default=float("-inf"))
                for side in self.SIDES
            }
            self.matches = sum(s["matches"] for s in scalars) \
                if primary else 0
