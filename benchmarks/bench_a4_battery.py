"""Ablation A4: battery life vs offload policy across device classes.

Section 4 lists battery life among the practical barriers, and Section
4.1 notes offloading "enables client-side AR devices to be small and
sustainable".  We sweep device class (phone -> glasses -> contact lens)
and policy (always-local / always-edge / deadline-energy-aware) and
report projected battery life at 30 fps plus whether the device can even
hold the deadline locally — the minimization-vs-volume conflict.
"""

from repro.offload import (
    DEVICE_CLASSES,
    AlwaysLocal,
    AlwaysRemote,
    DeadlineEnergyAware,
    OffloadPlanner,
    vision_pipeline,
)
from repro.simnet import LINK_PRESETS, NodeSpec, Topology
from repro.util.rng import make_rng
from repro.vision.tracker import StageProfile

from tableprint import print_table

FPS = 30.0
DEADLINE_S = 1.0 / 30.0
PROFILE = StageProfile(pixels=320 * 240, features=300, matches=120,
                       ransac_iterations=80)


def _planner(device):
    topology = Topology(make_rng(81))
    topology.add_node(NodeSpec("device", cpu_hz=device.cpu_hz,
                               role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge",
                               cores=8))
    topology.add_link("device", "edge", LINK_PRESETS["wifi"])
    return OffloadPlanner(topology, "device", energy=device.energy)


def run_experiment():
    pipeline = vision_pipeline(PROFILE)
    rows = []
    for name, device in DEVICE_CLASSES.items():
        planner = _planner(device)
        for policy in (AlwaysLocal(), AlwaysRemote("edge"),
                       DeadlineEnergyAware(DEADLINE_S)):
            decision = policy.decide(planner, pipeline)
            outcome = decision.outcome
            battery = device.battery()
            hours = battery.lifetime_hours(max(outcome.energy_j, 1e-12),
                                           FPS)
            rows.append([name, policy.name,
                         outcome.latency_s * 1000,
                         outcome.latency_s <= DEADLINE_S,
                         outcome.energy_j * 1000, hours])
    return rows


def bench_a4_battery(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A4  ablation: battery life vs offload policy per device class",
        ["device", "policy", "latency ms", "meets 33ms",
         "energy mJ/frame", "battery hours @30fps"],
        rows,
        note="the minimization conflict: smaller devices cannot track "
             "locally at all; offloading is what makes them viable")
    by_key = {(r[0], r[1]): r for r in rows}
    # Phones can go local; glasses blow the deadline locally; the lens
    # is hopeless without offload.
    assert by_key[("phone", "always-local")][3]
    assert not by_key[("glasses", "always-local")][3]
    assert not by_key[("contact-lens", "always-local")][3]
    # Offloading rescues the glasses' deadline.
    assert by_key[("glasses", "always-edge")][3]
    # Offloading extends battery life on every constrained device.
    for device in ("glasses", "contact-lens"):
        local_hours = by_key[(device, "always-local")][5]
        remote_hours = by_key[(device, "always-edge")][5]
        assert remote_hours > local_hours
    # The deadline-energy policy tracks the best deadline-meeting
    # single placement on energy (within link-jitter noise: every plan
    # pricing re-samples the network).
    for device in DEVICE_CLASSES:
        smart = by_key[(device, f"deadline-{DEADLINE_S * 1000:.0f}ms")]
        candidates = [by_key[(device, p)] for p in
                      ("always-local", "always-edge")
                      if by_key[(device, p)][3]]
        if candidates:
            assert smart[5] >= max(c[5] for c in candidates) * 0.8
