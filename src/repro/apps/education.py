"""Education application (paper intro: AR "for teaching 2nd grade
students" [Freitas & Campos]; Figure 5 includes education among the
influenced fields).

An AR classroom: lesson content pops up on fiducial markers glued to
physical objects (the intro's "virtual pop-up objects on 2D markers"
pattern, done properly); students' quiz results stream through the
pipeline into per-student, per-topic mastery estimates; the review
recommender targets each student's weakest topics — the big-data
personalization the generic "same worksheet for everyone" baseline
lacks.

A simple learning model makes the uplift measurable: reviewing a topic
improves a student's true mastery of it, and targeted review of weak
topics raises the post-test more than untargeted review.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..analytics.incremental import RunningStats
from ..context.entities import SemanticEntity
from ..core.pipeline import ARBigDataPipeline
from ..util.errors import PipelineError
from ..vision.camera import CameraIntrinsics, look_at
from ..vision.geometry import estimate_homography
from ..vision.markers import MarkerSpec, decode_marker, generate_marker
from ..vision.synth import PlanarTarget, render_plane

__all__ = ["Lesson", "Student", "EducationApp", "ReviewOutcome"]

QUIZ_TOPIC = "edu.quiz"


@dataclass(frozen=True)
class Lesson:
    """One marker-anchored lesson station."""

    lesson_id: str
    topic: str
    marker_id: int
    position: tuple[float, float, float]  # classroom coordinates


@dataclass
class Student:
    """A learner with latent per-topic mastery in [0, 1]."""

    student_id: str
    mastery: dict[str, float] = field(default_factory=dict)

    def answer_correctly(self, topic: str,
                         rng: np.random.Generator) -> bool:
        return rng.random() < self.mastery.get(topic, 0.0)


@dataclass(frozen=True)
class ReviewOutcome:
    """Post-test comparison of review strategies."""

    students: int
    targeted_gain: float
    untargeted_gain: float

    @property
    def uplift(self) -> float:
        if self.targeted_gain <= self.untargeted_gain:
            return 0.0
        return min(1.0, (self.targeted_gain - self.untargeted_gain)
                   / max(self.targeted_gain, 1e-9))


class EducationApp:
    """The AR classroom on the convergence pipeline."""

    def __init__(self, pipeline: ARBigDataPipeline,
                 lessons: list[Lesson],
                 marker_spec: MarkerSpec = MarkerSpec()) -> None:
        if not lessons:
            raise PipelineError("need at least one lesson")
        ids = [l.lesson_id for l in lessons]
        if len(set(ids)) != len(ids):
            raise PipelineError("duplicate lesson ids")
        self.pipeline = pipeline
        self.lessons = {l.lesson_id: l for l in lessons}
        self.marker_spec = marker_spec
        self._by_marker = {l.marker_id: l for l in lessons}
        pipeline.create_topic(QUIZ_TOPIC)
        for lesson in lessons:
            pipeline.add_entity(SemanticEntity(
                entity_id=lesson.lesson_id, entity_type="lesson",
                position=np.array(lesson.position),
                name=lesson.topic,
                tags={"marker": lesson.marker_id}))
        pipeline.interpreter.register_default("lesson-content")
        pipeline.interpreter.register_default("review-hint")
        # (student, topic) -> correctness stats
        self._mastery_stats: dict[tuple[str, str], RunningStats] = {}

    # -- marker-triggered content ------------------------------------------

    def scan_marker(self, rng: np.random.Generator,
                    lesson_id: str, distance_m: float,
                    intrinsics: CameraIntrinsics,
                    marker_size_m: float = 0.15,
                    noise_sigma: float = 0.01) -> dict:
        """A student points the tablet at a lesson's marker.

        Renders the marker at the given distance through the camera,
        estimates the rectifying homography from the ground-truth pose
        (registration is the tracker's job; identification is ours) and
        decodes the id.  Content pops up only when decode matches.
        """
        lesson = self.lessons.get(lesson_id)
        if lesson is None:
            raise PipelineError(f"unknown lesson {lesson_id!r}")
        texture = generate_marker(lesson.marker_id, self.marker_spec)
        target = PlanarTarget(texture, marker_size_m, marker_size_m)
        centre = marker_size_m / 2.0
        pose = look_at(eye=[centre, centre, -distance_m],
                       target=[centre, centre, 0.0])
        frame = render_plane(target, intrinsics, pose, rng=rng,
                             noise_sigma=noise_sigma)
        side = texture.shape[0]
        corners_tex = np.array([[0, 0], [side, 0], [0, side],
                                [side, side], [side / 2, side / 2]],
                               dtype=float)
        pixels = intrinsics.project(pose.transform(
            target.texture_to_world(corners_tex)))
        if not np.isfinite(pixels).all():
            return {"decoded": None, "triggered": False}
        homography = estimate_homography(corners_tex, pixels)
        decoded = decode_marker(frame, homography, self.marker_spec)
        triggered = decoded == lesson.marker_id
        if triggered:
            self.pipeline.interpret_and_publish([{
                "tag": "lesson-content", "subject": lesson_id,
                "value": lesson.topic, "priority": 5.0}])
        return {"decoded": decoded, "triggered": triggered}

    # -- quiz stream -> mastery analytics ------------------------------------

    def ingest_quiz(self, student: Student, topic: str, correct: bool,
                    timestamp: float) -> None:
        self.pipeline.ingest(QUIZ_TOPIC,
                             {"user": student.student_id, "topic": topic,
                              "correct": bool(correct)},
                             key=student.student_id, timestamp=timestamp,
                             personal=True)
        stats = self._mastery_stats.setdefault(
            (student.student_id, topic), RunningStats())
        stats.add(1.0 if correct else 0.0)

    def estimated_mastery(self, student_id: str, topic: str) -> float:
        stats = self._mastery_stats.get((student_id, topic))
        return stats.mean if stats is not None and stats.count else 0.5

    def weakest_topics(self, student_id: str, k: int = 2) -> list[str]:
        """The review recommendation: lowest estimated mastery first."""
        topics = sorted({l.topic for l in self.lessons.values()})
        ranked = sorted(topics, key=lambda t: (
            self.estimated_mastery(student_id, t), t))
        return ranked[:k]

    def publish_review_hints(self, student_id: str, k: int = 2) -> int:
        """Anchor review hints at the lessons for the weak topics."""
        weak = set(self.weakest_topics(student_id, k))
        results = []
        for lesson in self.lessons.values():
            if lesson.topic in weak:
                results.append({"tag": "review-hint",
                                "subject": lesson.lesson_id,
                                "value": f"review {lesson.topic}",
                                "priority": 8.0})
        return self.pipeline.interpret_and_publish(results).bound

    # -- the measurable uplift -------------------------------------------------

    def run_semester(self, rng: np.random.Generator,
                     num_students: int = 20, quiz_rounds: int = 15,
                     review_slots: int = 2,
                     learn_rate: float = 0.4) -> ReviewOutcome:
        """Quizzes -> mastery estimates -> review -> post-test.

        Targeted students review their *estimated* weakest topics;
        untargeted students review random topics.  Learning has
        diminishing returns: a review closes ``learn_rate`` of the gap
        to ceiling mastery (0.95), so reviewing what you already know is
        nearly worthless — which is exactly why targeting pays.
        """
        topics = sorted({l.topic for l in self.lessons.values()})

        def make_students(prefix):
            out = []
            for i in range(num_students):
                mastery = {t: float(rng.uniform(0.2, 0.9))
                           for t in topics}
                out.append(Student(student_id=f"{prefix}-{i:03d}",
                                   mastery=mastery))
            return out

        targeted = make_students("tgt")
        untargeted = make_students("rnd")
        # The quiz phase builds the analytics picture.
        t = 0.0
        for student in targeted + untargeted:
            for _round in range(quiz_rounds):
                for topic in topics:
                    correct = student.answer_correctly(topic, rng)
                    self.ingest_quiz(student, topic, correct, t)
                    t += 1.0

        def review_and_gain(students, choose_topics):
            gains = []
            for student in students:
                before = float(np.mean(list(student.mastery.values())))
                for topic in choose_topics(student):
                    gap = 0.95 - student.mastery[topic]
                    student.mastery[topic] += learn_rate * max(gap, 0.0)
                after = float(np.mean(list(student.mastery.values())))
                gains.append(after - before)
            return float(np.mean(gains))

        targeted_gain = review_and_gain(
            targeted,
            lambda s: self.weakest_topics(s.student_id, review_slots))
        untargeted_gain = review_and_gain(
            untargeted,
            lambda s: list(rng.choice(topics, size=review_slots,
                                      replace=False)))
        return ReviewOutcome(students=num_students,
                             targeted_gain=targeted_gain,
                             untargeted_gain=untargeted_gain)
