"""Location privacy: k-anonymity cloaking and geo-indistinguishability.

"Hiding location is more challenging than hiding private information"
(Section 4.3).  Two defences with opposite characters:

- :class:`GridCloak` — spatial k-anonymity: report the smallest grid
  cell (from a quadtree-style dyadic hierarchy) containing at least k
  currently-present users; utility loss = cell radius.
- :class:`PlanarLaplace` — geo-indistinguishability (Andrés et al.):
  add planar Laplace noise so any two points within radius r are
  epsilon*r-indistinguishable; utility loss = expected displacement
  2/epsilon.
"""

from __future__ import annotations

import math

import numpy as np
from scipy import special

from ..util.errors import PrivacyError
from ..util.geometry import Rect

__all__ = ["GridCloak", "CloakedRegion", "PlanarLaplace"]


class CloakedRegion:
    """The reported region in place of an exact location."""

    def __init__(self, rect: Rect, occupancy: int) -> None:
        self.rect = rect
        self.occupancy = occupancy

    @property
    def radius_m(self) -> float:
        """Half-diagonal: worst-case displacement from the centre."""
        return math.hypot(self.rect.width, self.rect.height) / 2.0


class GridCloak:
    """Dyadic-grid spatial k-anonymity over a snapshot of user positions."""

    def __init__(self, bounds: Rect, k: int, max_depth: int = 12) -> None:
        if k < 1:
            raise PrivacyError("k must be >= 1")
        self.bounds = bounds
        self.k = k
        self.max_depth = max_depth

    def cloak(self, x: float, y: float,
              population: np.ndarray) -> CloakedRegion:
        """Report the smallest dyadic cell containing (x, y) with >= k
        users from ``population`` (Nx2 positions, the user included).

        Descends while the child cell containing the user still holds k
        users; returns the last satisfying cell.
        """
        population = np.atleast_2d(np.asarray(population, dtype=float))
        if not self.bounds.contains(x, y):
            raise PrivacyError("location outside cloak bounds")
        cell = self.bounds
        for _depth in range(self.max_depth):
            hw, hh = cell.width / 2.0, cell.height / 2.0
            east = x >= cell.x + hw
            north = y >= cell.y + hh
            child = Rect(cell.x + (hw if east else 0.0),
                         cell.y + (hh if north else 0.0),
                         hw if east else cell.width - hw,
                         hh if north else cell.height - hh)
            inside = ((population[:, 0] >= child.x)
                      & (population[:, 0] <= child.x2)
                      & (population[:, 1] >= child.y)
                      & (population[:, 1] <= child.y2))
            if int(inside.sum()) < self.k:
                break
            cell = child
        inside_cell = ((population[:, 0] >= cell.x)
                       & (population[:, 0] <= cell.x2)
                       & (population[:, 1] >= cell.y)
                       & (population[:, 1] <= cell.y2))
        occupancy = int(inside_cell.sum())
        if occupancy < self.k:
            raise PrivacyError(
                f"even the root cell holds only {occupancy} < k={self.k} "
                "users; cannot cloak")
        return CloakedRegion(rect=cell, occupancy=occupancy)


class PlanarLaplace:
    """Geo-indistinguishability via planar Laplace noise.

    Sampling: angle uniform; radius r with density proportional to
    r*exp(-eps*r), inverted through the -1 branch of the Lambert W
    function (Andrés et al. 2013).
    """

    def __init__(self, epsilon_per_m: float, rng: np.random.Generator) -> None:
        if epsilon_per_m <= 0:
            raise PrivacyError("epsilon must be positive")
        self.epsilon = epsilon_per_m
        self._rng = rng

    @property
    def expected_displacement_m(self) -> float:
        return 2.0 / self.epsilon

    def sample_radius(self) -> float:
        p = self._rng.random()
        # Inverse CDF: r = -(1/eps) * (W_{-1}((p-1)/e) + 1)
        w = special.lambertw((p - 1.0) / math.e, k=-1)
        return float(-(w.real + 1.0) / self.epsilon)

    def perturb(self, x: float, y: float) -> tuple[float, float]:
        theta = self._rng.uniform(0.0, 2.0 * math.pi)
        r = self.sample_radius()
        return x + r * math.cos(theta), y + r * math.sin(theta)

    def perturb_many(self, points: np.ndarray) -> np.ndarray:
        points = np.atleast_2d(np.asarray(points, dtype=float))
        out = np.empty_like(points)
        for i, (x, y) in enumerate(points):
            out[i] = self.perturb(float(x), float(y))
        return out
