"""Point quadtree: range and k-nearest-neighbour queries in local metres.

Backs the POI database and the X-ray-vision object lookup.  Points carry
an opaque payload; coordinates are (x, y) in the local projection.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any

from ..util.errors import SpatialIndexError
from ..util.geometry import Rect

__all__ = ["SpatialPoint", "QuadTree"]


@dataclass(frozen=True)
class SpatialPoint:
    x: float
    y: float
    payload: Any = None

    def distance_sq(self, x: float, y: float) -> float:
        return (self.x - x) ** 2 + (self.y - y) ** 2


class _Node:
    __slots__ = ("bounds", "points", "children")

    def __init__(self, bounds: Rect) -> None:
        self.bounds = bounds
        self.points: list[SpatialPoint] = []
        self.children: list["_Node"] | None = None


class QuadTree:
    """A bucketed point quadtree over a fixed bounding rectangle."""

    def __init__(self, bounds: Rect, bucket_size: int = 16,
                 max_depth: int = 16) -> None:
        if bucket_size < 1 or max_depth < 1:
            raise SpatialIndexError("bucket_size and max_depth must be >= 1")
        self._root = _Node(bounds)
        self.bucket_size = bucket_size
        self.max_depth = max_depth
        self._count = 0

    @property
    def bounds(self) -> Rect:
        return self._root.bounds

    def __len__(self) -> int:
        return self._count

    # -- insert ------------------------------------------------------------

    def insert(self, point: SpatialPoint) -> None:
        if not self._root.bounds.contains(point.x, point.y):
            raise SpatialIndexError(
                f"point ({point.x}, {point.y}) outside index bounds "
                f"{self._root.bounds}"
            )
        self._insert(self._root, point, depth=0)
        self._count += 1

    def _insert(self, node: _Node, point: SpatialPoint, depth: int) -> None:
        if node.children is not None:
            self._insert(self._child_for(node, point), point, depth + 1)
            return
        node.points.append(point)
        if len(node.points) > self.bucket_size and depth < self.max_depth:
            self._split(node)
            points, node.points = node.points, []
            for p in points:
                self._insert(self._child_for(node, p), p, depth + 1)

    def _split(self, node: _Node) -> None:
        b = node.bounds
        hw, hh = b.width / 2, b.height / 2
        node.children = [
            _Node(Rect(b.x, b.y, hw, hh)),
            _Node(Rect(b.x + hw, b.y, b.width - hw, hh)),
            _Node(Rect(b.x, b.y + hh, hw, b.height - hh)),
            _Node(Rect(b.x + hw, b.y + hh, b.width - hw, b.height - hh)),
        ]

    def _child_for(self, node: _Node, point: SpatialPoint) -> _Node:
        assert node.children is not None
        b = node.bounds
        east = point.x >= b.x + b.width / 2
        north = point.y >= b.y + b.height / 2
        return node.children[(2 if north else 0) + (1 if east else 0)]

    # -- queries ------------------------------------------------------------

    def query_rect(self, rect: Rect) -> list[SpatialPoint]:
        """All points inside ``rect`` (inclusive bounds)."""
        out: list[SpatialPoint] = []
        self._query_rect(self._root, rect, out)
        return out

    def _query_rect(self, node: _Node, rect: Rect,
                    out: list[SpatialPoint]) -> None:
        if not node.bounds.intersects(rect):
            return
        if node.children is not None:
            for child in node.children:
                self._query_rect(child, rect, out)
            return
        out.extend(p for p in node.points if rect.contains(p.x, p.y))

    def query_radius(self, x: float, y: float, radius: float,
                     ) -> list[SpatialPoint]:
        """Points within Euclidean ``radius`` of (x, y)."""
        if radius < 0:
            raise SpatialIndexError("radius must be non-negative")
        box = Rect(x - radius, y - radius, 2 * radius, 2 * radius)
        r_sq = radius * radius
        return [p for p in self.query_rect(box)
                if p.distance_sq(x, y) <= r_sq]

    def nearest(self, x: float, y: float, k: int = 1) -> list[SpatialPoint]:
        """k nearest points to (x, y), closest first (best-first search)."""
        if k < 1:
            raise SpatialIndexError("k must be >= 1")
        # Heap of (distance_sq, seq, node-or-point, is_point)
        seq = 0
        heap: list[tuple[float, int, Any, bool]] = [
            (self._rect_dist_sq(self._root.bounds, x, y), seq,
             self._root, False)
        ]
        out: list[SpatialPoint] = []
        while heap and len(out) < k:
            dist_sq, _s, item, is_point = heapq.heappop(heap)
            if is_point:
                out.append(item)
                continue
            node: _Node = item
            if node.children is not None:
                for child in node.children:
                    seq += 1
                    heapq.heappush(heap, (
                        self._rect_dist_sq(child.bounds, x, y), seq,
                        child, False))
            else:
                for p in node.points:
                    seq += 1
                    heapq.heappush(heap, (p.distance_sq(x, y), seq, p, True))
        return out

    @staticmethod
    def _rect_dist_sq(rect: Rect, x: float, y: float) -> float:
        dx = max(rect.x - x, 0.0, x - rect.x2)
        dy = max(rect.y - y, 0.0, y - rect.y2)
        return dx * dx + dy * dy
