"""Edge-path tests across subsystems: the behaviours that only show up
in corner cases."""

import numpy as np
import pytest

from repro.core import ARBigDataPipeline, PipelineConfig, PrivacyConfig
from repro.core.privacy_guard import PrivacyGuard
from repro.eventlog import (
    Consumer,
    ConsumerGroup,
    LogCluster,
    Producer,
    TopicConfig,
)
from repro.offload import Pipeline, TaskStage
from repro.privacy import GridCloak
from repro.render import Compositor, SceneGraph
from repro.streaming import Element, Executor, JobBuilder, TumblingWindows
from repro.util.errors import LogError
from repro.util.geometry import Rect
from repro.util.rng import RngRegistry, make_rng
from repro.vision import CameraIntrinsics, MarkerSpec, decode_marker, \
    generate_marker, look_at


class TestRngRegistry:
    def test_same_name_same_stream(self):
        registry = RngRegistry(seed=5)
        a = registry.get("gps")
        assert a is registry.get("gps")

    def test_different_names_independent(self):
        registry = RngRegistry(seed=5)
        a = registry.get("a").random(100)
        b = registry.get("b").random(100)
        assert not np.allclose(a, b)

    def test_name_mapping_stable_across_instances(self):
        a = RngRegistry(seed=5).get("stream").random(10)
        b = RngRegistry(seed=5).get("stream").random(10)
        assert np.allclose(a, b)

    def test_registration_order_irrelevant(self):
        r1 = RngRegistry(seed=9)
        r1.get("x")
        v1 = r1.get("y").random(5)
        r2 = RngRegistry(seed=9)
        v2 = r2.get("y").random(5)  # no prior get("x")
        assert np.allclose(v1, v2)


class TestEventlogEdges:
    def test_send_batch_with_key_fn(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t", partitions=4,
                                         replication=1))
        producer = Producer(cluster)
        coords = producer.send_batch("t", [{"u": f"user{i}"}
                                           for i in range(10)],
                                     key_fn=lambda v: v["u"])
        assert len(coords) == 10
        assert producer.sent == 10

    def test_consumer_auto_reset_after_retention(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t", partitions=1, replication=1,
                                         retention_seconds=10.0))
        producer = Producer(cluster)
        for i in range(20):
            producer.send("t", i, timestamp=float(i))
        consumer = Consumer(cluster, "t")
        consumer.poll(max_records=5)  # position 5
        cluster.run_retention(now=25.0)  # drops ts < 15 -> base 15
        rows = consumer.poll(max_records=100)
        # Positions 5..14 were retained out from under us: jump to base.
        assert [r.value for r in rows] == list(range(15, 20))

    def test_group_committed_none_before_commit(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t", partitions=2,
                                         replication=1))
        group = ConsumerGroup(cluster, "t", "g")
        group.join("m")
        assert group.committed(0) is None

    def test_leave_unknown_member_rejected(self):
        cluster = LogCluster(1)
        cluster.create_topic(TopicConfig("t"))
        group = ConsumerGroup(cluster, "t", "g")
        with pytest.raises(LogError):
            group.leave("ghost")


class TestStreamingEdges:
    def test_max_cycles_stops_early(self):
        elements = [Element(value=i, timestamp=float(i))
                    for i in range(1000)]
        builder = JobBuilder("j")
        builder.source("s", elements).map(lambda v: v).sink("out")
        executor = Executor(builder.build())
        executor.run(source_batch=10, max_cycles=3)
        assert len(executor.sinks["out"]) == 30
        executor.run()  # completes the rest
        assert len(executor.sinks["out"]) == 1000

    def test_flush_idempotent(self):
        elements = [Element(value=1, timestamp=1.0, key="k")]
        builder = JobBuilder("j")
        (builder.source("s", elements)
                .key_by(lambda v: "k")
                .window(TumblingWindows(10.0), "count")
                .sink("out"))
        executor = Executor(builder.build())
        executor.run()
        count_after_first = len(executor.sinks["out"])
        executor.run()  # second run: flush must not double-fire
        assert len(executor.sinks["out"]) == count_after_first == 1

    def test_window_builder_aggregates(self):
        for aggregate, expected in (("sum", 10.0), ("min", 1.0),
                                    ("max", 4.0)):
            elements = [Element(value=float(v), timestamp=float(i))
                        for i, v in enumerate([1, 2, 3, 4])]
            builder = JobBuilder("j")
            (builder.source("s", elements)
                    .with_watermarks(0.0)
                    .key_by(lambda v: "all")
                    .window(TumblingWindows(100.0), aggregate)
                    .sink("out"))
            sinks = Executor(builder.build()).run()
            assert sinks["out"].values[0].value == expected


class TestRenderEdges:
    def test_empty_scene_composites_cleanly(self):
        intr = CameraIntrinsics(fx=100, fy=100, cx=50, cy=50, width=100,
                                height=100)
        frame = Compositor(intr).compose(SceneGraph(),
                                         look_at(eye=[0, 0, 0],
                                                 target=[0, 0, 1]))
        assert frame.items == []
        assert frame.layout.useful_ratio == 1.0


class TestOffloadEdges:
    def test_unpinned_pipeline_allows_cut_zero(self):
        pipeline = Pipeline("p", (TaskStage("a", 1e6, 100),
                                  TaskStage("b", 1e6, 100)))
        assert pipeline.valid_cuts() == [0, 1, 2]
        # Cut 0 ships stage 0's input, approximated by its output size.
        assert pipeline.upload_bytes(0) == 100

    def test_fully_pinned_pipeline_is_local_only(self):
        pipeline = Pipeline("p", (
            TaskStage("a", 1e6, 100, pinned="device"),
            TaskStage("b", 1e6, 100, pinned="device")))
        cuts = pipeline.valid_cuts()
        assert all(pipeline.remote_cycles(c) == 0 for c in cuts)


class TestMarkerSpecVariants:
    def test_larger_grid_roundtrip(self):
        spec = MarkerSpec(grid=5, cell_px=12)
        assert spec.payload_bits == 20
        for marker_id in (0, 12345, spec.max_id):
            texture = generate_marker(marker_id, spec)
            assert texture.shape == (spec.side_px, spec.side_px)
            assert decode_marker(texture, np.eye(3), spec) == marker_id


class TestGuardCloakMode:
    def test_cloak_mode_through_pipeline_ingest(self):
        rng = make_rng(0)
        population = rng.uniform(0, 1000, size=(200, 2))
        cloak = GridCloak(Rect(0, 0, 1000, 1000), k=10)
        guard = PrivacyGuard(PrivacyConfig(location_mode="cloak"),
                             make_rng(1), cloak=cloak)
        x, y = float(population[0, 0]), float(population[0, 1])
        px, py, err = guard.protect_location(x, y, population=population)
        assert err > 0
        # The reported point is the cell centre, not the true point.
        assert (px, py) != (x, y)
        assert abs(px - x) <= err and abs(py - y) <= err

    def test_pipeline_cloak_mode_requires_population(self):
        rng = make_rng(2)
        population = rng.uniform(0, 1000, size=(100, 2))
        cloak = GridCloak(Rect(0, 0, 1000, 1000), k=5)
        pipeline = ARBigDataPipeline(PipelineConfig(seed=3))
        # Swap in a cloak-mode guard.
        pipeline.guard = PrivacyGuard(
            PrivacyConfig(location_mode="cloak"), make_rng(4),
            cloak=cloak)
        pipeline.create_topic("t")
        pipeline.ingest("t", {"user": "u", "x": float(population[0, 0]),
                              "y": float(population[0, 1])},
                        key="u", timestamp=0.0, personal=True,
                        population=population)
        group = pipeline.consumer_group("t", "g")
        record = group.join("m").poll()[0].value
        assert record["loc_error_m"] > 0
