"""Unit tests: Rect and clamp."""

import pytest

from repro.util.geometry import Rect, clamp


class TestClamp:
    def test_inside(self):
        assert clamp(5, 0, 10) == 5

    def test_below(self):
        assert clamp(-1, 0, 10) == 0

    def test_above(self):
        assert clamp(11, 0, 10) == 10

    def test_empty_range_rejected(self):
        with pytest.raises(ValueError):
            clamp(1, 5, 0)


class TestRect:
    def test_negative_extent_rejected(self):
        with pytest.raises(ValueError):
            Rect(0, 0, -1, 5)

    def test_corners_and_area(self):
        rect = Rect(1, 2, 3, 4)
        assert rect.x2 == 4
        assert rect.y2 == 6
        assert rect.area == 12
        assert rect.center == (2.5, 4.0)

    def test_contains_boundary_inclusive(self):
        rect = Rect(0, 0, 10, 10)
        assert rect.contains(0, 0)
        assert rect.contains(10, 10)
        assert not rect.contains(10.01, 5)

    def test_intersects(self):
        a = Rect(0, 0, 10, 10)
        assert a.intersects(Rect(5, 5, 10, 10))
        assert not a.intersects(Rect(10, 0, 5, 5))  # touching edge: no

    def test_intersection_area(self):
        inter = Rect(0, 0, 10, 10).intersection(Rect(5, 5, 10, 10))
        assert inter == Rect(5, 5, 5, 5)

    def test_intersection_disjoint_is_none(self):
        assert Rect(0, 0, 1, 1).intersection(Rect(5, 5, 1, 1)) is None

    def test_union_bounds(self):
        union = Rect(0, 0, 1, 1).union_bounds(Rect(5, 5, 1, 1))
        assert union == Rect(0, 0, 6, 6)

    def test_iou_identical(self):
        rect = Rect(0, 0, 4, 4)
        assert rect.iou(rect) == pytest.approx(1.0)

    def test_iou_disjoint(self):
        assert Rect(0, 0, 1, 1).iou(Rect(2, 2, 1, 1)) == 0.0

    def test_iou_half_overlap(self):
        # 2x2 rects overlapping in a 1x2 strip: inter 2, union 6.
        a = Rect(0, 0, 2, 2)
        b = Rect(1, 0, 2, 2)
        assert a.iou(b) == pytest.approx(2 / 6)

    def test_translated(self):
        assert Rect(0, 0, 1, 1).translated(2, 3) == Rect(2, 3, 1, 1)
