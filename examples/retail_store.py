"""Retail scenario (paper Section 3.1, Figure 6).

A store where shopper behaviour streams train a collaborative-filtering
recommender; a shopper walks in, her gaze stream sharpens the targeting,
personalized offers are anchored to shelves, and the X-ray locator
guides her to a product hidden behind an aisle.

Run:  python examples/retail_store.py
"""

from repro import ARBigDataPipeline, PipelineConfig, PrivacyConfig
from repro.apps import RetailApp
from repro.datagen import RetailWorld
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(17)
    # Personal data passes the privacy guard before reaching the log.
    pipeline = ARBigDataPipeline(PipelineConfig(
        seed=17, privacy=PrivacyConfig(location_mode="laplace",
                                       geo_epsilon=0.1)))
    world = RetailWorld.generate(rng, num_products=150,
                                 num_categories=12, num_shoppers=120,
                                 preference_concentration=0.15)
    app = RetailApp(pipeline, world)

    # -- big data accumulates: months of interaction history ------------
    history = world.interactions(rng, events_per_shopper=35)
    app.ingest_interactions(history)
    print(f"trained on {len(history)} interactions from "
          f"{len(world.shoppers)} shoppers "
          f"(pseudonymized: {pipeline.guard.pseudonymize('s-0000')})")

    # -- a shopper arrives: generic vs personalized offers --------------
    shopper = world.shoppers[0]
    generic = app.recommend(shopper.shopper_id, k=5, personalized=False)
    personal = app.recommend(shopper.shopper_id, k=5)
    print("\ngeneric overlay (no big data):",
          [item for item, _s in generic])
    print("personalized overlay (CF):     ",
          [item for item, _s in personal])

    # -- her gaze stream sharpens the targeting --------------------------
    gaze = world.gaze_stream(rng, shopper, n_events=8)
    app.ingest_gaze(gaze)
    contextual = app.recommend(shopper.shopper_id, k=5,
                               now=gaze[-1].timestamp,
                               position=(5.0, 5.0))
    print("gaze+proximity contextual:     ",
          [item for item, _s in contextual])
    published = app.publish_recommendations(shopper.shopper_id, k=5,
                                            now=gaze[-1].timestamp)
    print(f"published {published} shelf-anchored offer annotations")

    # -- the X-ray locator -----------------------------------------------
    target = contextual[0][0]
    outcome = app.locate_product(shopper.shopper_id, target, (1.0, 1.0))
    state = "BEHIND A SHELF (x-ray highlight)" if outcome["xray"] \
        else "in direct view"
    print(f"\nlocating {target}: {outcome['distance_m']:.1f} m away, "
          f"{state}")

    # -- how much did big data buy? ---------------------------------------
    evaluation = app.evaluate(rng, k=5, max_users=40)
    print(f"\nprecision@5: CF {evaluation.cf_precision:.3f} vs "
          f"popularity {evaluation.popularity_precision:.3f} "
          f"(uplift {evaluation.uplift:.0%})")


if __name__ == "__main__":
    main()
