"""The Figure-5 influence model.

Figure 5 classifies the influence of big data and of AR on application
fields into five qualitative levels (very high / high / medium / low /
absent).  We make the classification *computable*: each field supplies
two measured uplift scores in [0, 1] —

- ``bigdata_uplift``: how much the field's task metric improves when the
  big-data path is enabled vs a no-data baseline (e.g. recommendation
  precision uplift, detection lead time gained);
- ``ar_uplift``: how much the field's delivery metric improves when AR
  registration/declutter/occlusion is enabled vs a flat 2-D baseline
  (e.g. useful-label ratio gained, screening throughput gained).

Scores bucket into the paper's five levels on fixed thresholds.  The
bench (F5) computes the scores by running the domain apps and checks the
resulting level *ordering* against the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import PipelineError

__all__ = ["InfluenceLevel", "FieldInfluence", "classify", "LEVELS",
           "PAPER_FIGURE5"]

LEVELS = ("absent", "low", "medium", "high", "very high")

# Bucket thresholds on uplift scores (score < threshold -> that level).
_THRESHOLDS = (0.05, 0.15, 0.35, 0.60)


@dataclass(frozen=True)
class InfluenceLevel:
    """One field's classified influence."""

    field: str
    bigdata_score: float
    ar_score: float
    bigdata_level: str
    ar_level: str


def classify_score(score: float) -> str:
    """Uplift score in [0, 1] -> five-level label."""
    if not 0.0 <= score <= 1.0:
        raise PipelineError(f"uplift score {score} outside [0, 1]")
    for threshold, level in zip(_THRESHOLDS, LEVELS):
        if score < threshold:
            return level
    return LEVELS[-1]


@dataclass(frozen=True)
class FieldInfluence:
    """Measured uplifts for one field."""

    field: str
    bigdata_uplift: float
    ar_uplift: float


def classify(fields: list[FieldInfluence]) -> list[InfluenceLevel]:
    """Classify every field; stable field order."""
    return [InfluenceLevel(
        field=f.field,
        bigdata_score=f.bigdata_uplift,
        ar_score=f.ar_uplift,
        bigdata_level=classify_score(f.bigdata_uplift),
        ar_level=classify_score(f.ar_uplift),
    ) for f in fields]


# The qualitative reference from the paper's Figure 5 for the fields our
# domain apps instantiate.  Values are the *levels* the figure shows;
# the F5 bench checks that measured levels respect this ordering (it
# does not — cannot — check absolute positions of a drawn figure).
PAPER_FIGURE5: dict[str, dict[str, str]] = {
    "retail": {"bigdata": "very high", "ar": "high"},
    "tourism": {"bigdata": "high", "ar": "very high"},
    "healthcare": {"bigdata": "very high", "ar": "high"},
    "public-services": {"bigdata": "high", "ar": "medium"},
}
