"""The traced reference run: one AR frame across every subsystem.

``traced_reference_run`` drives the full request path of the paper's
architecture — produce into the event log, replay through the streaming
reference job (in any execution mode), offload a vision pipeline, and
composite the analytics into an AR overlay — with one tracer and one
metrics registry threaded through all of it.  The result is a single
connected span tree rooted at ``frame``:

    frame
    ├── ingest              (producer; one ``produce`` span per record)
    ├── stream
    │   ├── consume:poll / consume   (parented on ``produce`` via the
    │   │                             traceparent header)
    │   └── job:chaos-reference
    │       ├── source:events
    │       ├── op:watermarks ... op:window_sum   (one per *logical* op)
    │       └── sink:out
    ├── offload
    │   └── offload:frame → offload:attempt ...
    └── render
        └── render:compose

The span set is identical across per-item, batched and chained modes —
that invariant is what ``tools/check_obs.py`` gates and the integration
tests assert.  All timestamps come from one :class:`SimClock`; the
stages advance it by nominal costs so durations (and the critical path)
are meaningful yet exactly reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

import numpy as np

from ..chaos.harness import reference_events, reference_job
from ..eventlog.broker import LogCluster, TopicConfig
from ..eventlog.producer import Producer
from ..offload import OffloadPlanner, OffloadRunner, vision_pipeline
from ..offload.runner import OffloadResult
from ..offload.tasks import StageProfile
from ..render import Annotation, Compositor, OverlayFrame, SceneGraph
from ..simnet.network import LINK_PRESETS
from ..simnet.topology import NodeSpec, Topology
from ..streaming.connectors import log_source
from ..streaming.runtime import Executor
from ..util.clock import SimClock
from ..util.metrics import MetricsRegistry
from ..util.rng import RngRegistry
from ..vision import CameraIntrinsics, look_at
from .trace import Span, Tracer

__all__ = ["TracedRunReport", "traced_reference_run"]

_SEND_COST_S = 20e-6      # modelled producer append cost per record
_STREAM_COST_S = 5e-6     # modelled streaming cost per event
_RENDER_COST_S = 16e-3    # one 60 fps frame budget


@dataclass
class TracedRunReport:
    """Everything a caller needs to inspect a traced run."""

    tracer: Tracer
    registry: MetricsRegistry
    clock: SimClock
    root: Span
    sinks: dict[str, list[Any]]
    offload: OffloadResult
    frame: OverlayFrame
    mode: str


def _planner(seed: int) -> OffloadPlanner:
    """The canonical three-tier topology (device/edge/cloud) used by the
    offload tests — small enough to price instantly."""
    rngs = RngRegistry(seed)
    topology = Topology(rngs.get("net"))
    topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
    topology.add_link("device", "edge", LINK_PRESETS["wifi"])
    topology.add_link("edge", "cloud", LINK_PRESETS["wan"])
    return OffloadPlanner(topology, "device")


def _scene_from_aggregates(values: list[Any]) -> SceneGraph:
    """Turn the streaming sink's window aggregates into AR annotations
    anchored on a deterministic grid in front of the camera."""
    scene = SceneGraph()
    for i, value in enumerate(values[:12]):
        x = (i % 4 - 1.5) * 1.2
        y = (i // 4 - 1.0) * 0.9
        z = 4.0 + (i % 3)
        scene.add(Annotation(annotation_id=f"agg-{i:02d}",
                             anchor=np.array([x, y, z]),
                             text=str(value), priority=float(len(values) - i)))
    return scene


def traced_reference_run(*, seed: int = 0, n_events: int = 200,
                         batch_mode: bool = True, chaining: bool = True,
                         tracer: Tracer | None = None,
                         registry: MetricsRegistry | None = None,
                         clock: SimClock | None = None,
                         profiler: Any = None) -> TracedRunReport:
    """Run the end-to-end reference pipeline under tracing."""
    clock = clock if clock is not None else SimClock()
    tracer = tracer if tracer is not None else Tracer(clock)
    registry = registry if registry is not None else MetricsRegistry()
    mode = ("per_item" if not batch_mode
            else ("chained" if chaining else "batched"))

    root = tracer.start_span("frame", attrs={"mode": mode,
                                             "events": n_events})
    with tracer.activate(root):
        # -- ingest: seeded events into a replicated, partitioned log --
        cluster = LogCluster(num_brokers=3)
        cluster.create_topic(TopicConfig("events", partitions=2,
                                         replication=2))
        producer = Producer(cluster, clock=clock, tracer=tracer)
        with tracer.span("ingest", topic="events"):
            for element in reference_events(seed=seed, n=n_events):
                clock.advance(_SEND_COST_S)
                producer.send("events", element.value,
                              key=str(element.value["k"]),
                              timestamp=element.timestamp)

        # -- stream: replay the topic through the reference job --
        with tracer.span("stream", mode=mode):
            job = reference_job(log_source(cluster, "events",
                                           tracer=tracer))
            executor = Executor(job, batch_mode=batch_mode,
                                chaining=chaining, tracer=tracer,
                                metrics=registry, profiler=profiler)
            sink_buffers = executor.run(source_batch=64)
            clock.advance(n_events * _STREAM_COST_S)
        sinks = {name: list(buf.values)
                 for name, buf in sink_buffers.items()}

        # -- offload: one vision pipeline through the tiered edge --
        with tracer.span("offload"):
            runner = OffloadRunner(_planner(seed), clock=clock,
                                   tracer=tracer, metrics=registry)
            offload_result = runner.execute(vision_pipeline(StageProfile(
                pixels=320 * 240, features=200, matches=80,
                ransac_iterations=50)))

        # -- render: composite the aggregates into the AR overlay --
        with tracer.span("render"):
            intrinsics = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120,
                                          width=320, height=240)
            compositor = Compositor(intrinsics, tracer=tracer,
                                    metrics=registry)
            frame = compositor.compose(
                _scene_from_aggregates(sinks.get("out", [])),
                look_at(eye=[0.0, 0.0, 0.0], target=[0.0, 0.0, 5.0]))
            clock.advance(_RENDER_COST_S)
    root.end()

    registry.gauge("pipeline.events").set(float(n_events))
    registry.gauge("pipeline.end_to_end_s").set(
        root.end_time - root.start_time)
    return TracedRunReport(tracer=tracer, registry=registry, clock=clock,
                           root=root, sinks=sinks, offload=offload_result,
                           frame=frame, mode=mode)
