"""Event-log faults: retries, torn appends, duplicates, epoch fencing."""

import pytest

from repro.chaos import (
    SITE_APPEND,
    SITE_FETCH,
    ChaosLogCluster,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.eventlog.broker import LogCluster, TopicConfig
from repro.eventlog.consumer import Consumer
from repro.eventlog.producer import Producer
from repro.util.clock import SimClock
from repro.util.errors import BrokerDown, LogError, RetryExhausted
from repro.util.retry import RetryPolicy


def _cluster(partitions=2):
    cluster = LogCluster(num_brokers=3)
    cluster.create_topic(TopicConfig("t", partitions=partitions,
                                     replication=2))
    return cluster


def _chaos(specs, partitions=2):
    cluster = _cluster(partitions)
    injector = FaultInjector(FaultPlan(specs=tuple(specs)))
    return ChaosLogCluster(cluster, injector), cluster


def _drain(consumer, batch=4):
    rows = []
    while True:
        out = consumer.poll(batch)
        if not out:
            return rows
        rows.extend((r.partition, r.offset) for r in out)


class TestRetryOnUnavailable:
    def test_send_with_retry_rides_out_unavailable_window(self):
        chaos, base = _chaos([
            FaultSpec("partition_unavailable", SITE_APPEND, at=3, count=2)])
        producer = Producer(chaos, clock=SimClock(), idempotent=True)
        for i in range(10):
            producer.send_with_retry("t", {"i": i}, key=str(i))
        assert sum(base.end_offset("t", p) for p in range(2)) == 10
        assert producer.retries >= 1

    def test_plain_send_surfaces_broker_down(self):
        chaos, _ = _chaos([
            FaultSpec("partition_unavailable", SITE_APPEND, at=0, count=1)])
        producer = Producer(chaos, clock=SimClock())
        with pytest.raises(BrokerDown):
            producer.send("t", {"i": 0})

    def test_retry_exhaustion_when_window_outlasts_policy(self):
        chaos, _ = _chaos([
            FaultSpec("partition_unavailable", SITE_APPEND, at=0,
                      count=100)])
        producer = Producer(chaos, clock=SimClock(), idempotent=True)
        with pytest.raises(RetryExhausted):
            producer.send_with_retry("t", {"i": 0},
                                     policy=RetryPolicy(max_attempts=3))


class TestTornAppend:
    def test_idempotent_retry_is_exactly_once(self):
        # The ack is lost but the append applied: resend deduplicates.
        chaos, base = _chaos([FaultSpec("torn_append", SITE_APPEND, at=4)],
                             partitions=1)
        producer = Producer(chaos, clock=SimClock(), idempotent=True)
        for i in range(10):
            producer.send_with_retry("t", {"i": i})
        assert base.end_offset("t", 0) == 10
        assert producer.duplicates_rejected == 1
        values = [r.value["i"] for _, r in base.read("t", 0, 0, 100)]
        assert values == list(range(10))

    def test_non_idempotent_retry_double_appends(self):
        # The control: without sequences the same retry duplicates.
        chaos, base = _chaos([FaultSpec("torn_append", SITE_APPEND, at=4)],
                             partitions=1)
        producer = Producer(chaos, clock=SimClock(), idempotent=False)
        for i in range(10):
            producer.send_with_retry("t", {"i": i})
        assert base.end_offset("t", 0) == 11
        values = [r.value["i"] for _, r in base.read("t", 0, 0, 100)]
        assert values.count(4) == 2


class TestDuplicateDelivery:
    def test_plain_consumer_sees_duplicates(self):
        chaos, base = _chaos([], partitions=1)
        Producer(base, clock=SimClock()).send_batch(
            "t", [{"i": i} for i in range(12)])
        chaos, _ = (ChaosLogCluster(base, FaultInjector(FaultPlan(specs=(
            FaultSpec("duplicate_delivery", SITE_FETCH, at=1, param=3),)))),
            base)
        rows = _drain(Consumer(chaos, "t"))
        assert len(rows) > 12
        assert len(set(rows)) == 12

    def test_dedup_consumer_is_effectively_once(self):
        base = _cluster(partitions=1)
        Producer(base, clock=SimClock()).send_batch(
            "t", [{"i": i} for i in range(12)])
        chaos = ChaosLogCluster(base, FaultInjector(FaultPlan(specs=(
            FaultSpec("duplicate_delivery", SITE_FETCH, at=1, param=3),))))
        consumer = Consumer(chaos, "t", dedup=True)
        rows = _drain(consumer)
        assert rows == [(0, i) for i in range(12)]
        assert consumer.duplicates_dropped > 0

    def test_dedup_does_not_suppress_explicit_seek(self):
        base = _cluster(partitions=1)
        Producer(base, clock=SimClock()).send_batch(
            "t", [{"i": i} for i in range(6)])
        consumer = Consumer(base, "t", dedup=True)
        assert len(_drain(consumer)) == 6
        consumer.seek(0, 2)
        assert [o for _, o in _drain(consumer)] == [2, 3, 4, 5]

    def test_poll_with_retry_rides_out_fetch_unavailability(self):
        base = _cluster(partitions=1)
        Producer(base, clock=SimClock()).send_batch(
            "t", [{"i": i} for i in range(8)])
        chaos = ChaosLogCluster(base, FaultInjector(FaultPlan(specs=(
            FaultSpec("partition_unavailable", SITE_FETCH, at=0, count=2),))))
        consumer = Consumer(chaos, "t", dedup=True)
        rows = consumer.poll_with_retry(max_records=100, clock=SimClock())
        assert len(rows) == 8


class TestEpochFencing:
    def test_old_epoch_is_fenced(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, clock=SimClock(), idempotent=True)
        producer.send("t", {"i": 0})
        record = cluster.read("t", 0, 0, 1)[0][1]
        producer.bump_epoch()
        producer.send("t", {"i": 1})
        # A zombie with the pre-bump epoch can no longer append.
        with pytest.raises(LogError, match="fenced"):
            cluster.append_idempotent("t", 0, record,
                                      producer.producer_id, 1, epoch=0)

    def test_bump_resets_sequence_space(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, clock=SimClock(), idempotent=True)
        for i in range(3):
            producer.send("t", {"i": i})
        producer.bump_epoch()
        # Sequences restart at 0 in the new epoch without a gap error.
        partition, offset = producer.send("t", {"i": 3})
        assert (partition, offset) == (0, 3)

    def test_same_epoch_duplicate_still_dedups(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, clock=SimClock(), idempotent=True)
        _, first = producer.send("t", {"i": 0})
        _, again = producer.resend_last()
        assert first == again
        assert cluster.end_offset("t", 0) == 1
