"""Chaos-proven live rescaling: exactly-once at every rescale phase.

The elastic control plane's headline invariant: a supervisor crash at
ANY phase of the rescale state machine (decide / savepoint / recompile /
restore), a coordinator loss mid-savepoint, or any combination with
ordinary subtask crashes, must leave transactional-sink output exactly
equal to the fault-free fixed-parallelism run — the rescale either
completes on retry or rolls back to the last finalized checkpoint, but
committed output never forks.

Everything here runs on SimClock with seeded fault schedules, so each
case is exactly reproducible.  The suite is ``autoscale``-marked (one
smoke stays in tier 1 via test_autoscale_policy.py) and runs through
``make elasticity`` / ``tools/check_elasticity.py``.
"""

import pytest

from repro.chaos import (
    RESCALE_PHASES,
    SITE_COORDINATOR,
    SITE_OPERATOR,
    SITE_RESCALE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
)
from repro.streaming import SchedulePolicy, ScalingSupervisor

MODES = ((False, False), (True, False), (True, True))
SOURCE_BATCH = 32
N_EVENTS = 400


def _build(seed=7, n=N_EVENTS):
    return reference_job(reference_events(seed=seed, n=n, keys=4),
                         splits=4)


def _golden(seed=7, n=N_EVENTS, *, batch_mode=True, chaining=True):
    return canonical_sinks(fault_free_sinks(
        lambda: _build(seed, n), batch_mode=batch_mode, chaining=chaining,
        parallelism=1, source_batch=SOURCE_BATCH))


def _run(plan, schedule, *, seed=7, n=N_EVENTS, batch_mode=True,
         chaining=True, **kwargs):
    injector = FaultInjector(plan) if plan is not None else None
    supervisor = ScalingSupervisor(
        _build(seed, n), SchedulePolicy(schedule), injector=injector,
        parallelism=1, batch_mode=batch_mode, chaining=chaining,
        source_batch=SOURCE_BATCH, **kwargs)
    report = supervisor.run()
    golden = _golden(seed, n, batch_mode=batch_mode, chaining=chaining)
    assert canonical_sinks(report.sink_values) == golden, (
        f"rescale chaos diverged (plan={plan.name if plan else 'none'}, "
        f"batch_mode={batch_mode}, chaining={chaining})")
    return report


@pytest.mark.autoscale
class TestCrashAtEveryRescalePhase:
    """The four-phase sweep, across all execution modes."""

    @pytest.mark.parametrize("phase", RESCALE_PHASES)
    @pytest.mark.parametrize("batch_mode,chaining", MODES)
    def test_phase_crash_is_exactly_once(self, phase, batch_mode,
                                         chaining):
        plan = FaultPlan(specs=(
            FaultSpec("rescale_crash", SITE_RESCALE, at=0, target=phase),
        ), name=f"rescale-{phase}")
        report = _run(plan, {1: {"window_sum": 2}},
                      batch_mode=batch_mode, chaining=chaining)
        assert report.rescale_crashes == 1
        # liveness: the rescale still completes on retry
        assert len(report.rescales) == 1
        assert report.rescales[0].attempts == 2
        assert report.rescales[0].new["window_sum"] == 2

    def test_crash_at_two_phases_of_same_rescale(self):
        # attempt 1 dies in the savepoint, attempt 2 dies in the
        # restore (each spec is one-shot; ``at`` counts per-phase
        # entries), attempt 3 completes
        plan = FaultPlan(specs=(
            FaultSpec("rescale_crash", SITE_RESCALE, at=0,
                      target="savepoint"),
            FaultSpec("rescale_crash", SITE_RESCALE, at=0,
                      target="restore"),
        ), name="rescale-twice")
        report = _run(plan, {1: {"window_sum": 2}})
        assert report.rescale_crashes == 2
        assert len(report.rescales) == 1
        assert report.rescales[0].attempts == 3


@pytest.mark.autoscale
class TestCoordinatorLossMidSavepoint:
    def test_coordinator_crash_during_savepoint_assembly(self):
        # interval_cycles is large, so the only checkpoints are the
        # initial cut, the savepoints and the final one — the first
        # finalize the coordinator attempts IS the savepoint's, and
        # before_finalize kills it mid-assembly
        plan = FaultPlan(specs=(
            FaultSpec("coordinator_crash", SITE_COORDINATOR, at=0),
        ), name="coord-loss-savepoint")
        report = _run(plan, {1: {"window_sum": 2}}, interval_cycles=64)
        assert report.coordinator_crashes == 1
        assert report.aborted >= 1
        assert len(report.rescales) == 1

    def test_subtask_crash_between_rescales(self):
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=60,
                      target="window_sum"),
        ), name="crash-between")
        report = _run(plan, {1: {"window_sum": 2}, 4: {"window_sum": 4}})
        assert report.crashes >= 1
        assert len(report.rescales) >= 1


@pytest.mark.autoscale
class TestParallelismTransitions:
    """Every 1<->2<->4 transition, with a phase crash mid-flight."""

    TRANSITIONS = [
        (1, 2), (2, 1), (2, 4), (4, 2), (1, 4), (4, 1),
    ]

    @pytest.mark.parametrize("old_p,new_p", TRANSITIONS)
    def test_transition_with_restore_crash(self, old_p, new_p):
        # reach old_p via a fault-free rescale (when old_p > 1), then
        # crash the old_p -> new_p rescale mid-restore; the retry must
        # still land on new_p with output untouched
        schedule = {}
        rescales = 0
        if old_p > 1:
            schedule[1] = {"window_sum": old_p}
            rescales += 1
        schedule[1 + rescales] = {"window_sum": new_p}
        plan = FaultPlan(specs=(
            FaultSpec("rescale_crash", SITE_RESCALE, at=rescales,
                      target="restore"),
        ), name=f"transition-{old_p}-{new_p}")
        report = _run(plan, schedule, n=800)
        widths = [e.new["window_sum"] for e in report.rescales]
        assert widths and widths[-1] == new_p, widths
        assert report.rescale_crashes >= 1

    @pytest.mark.parametrize("seed", range(4))
    def test_random_rescale_crash_schedules(self, seed):
        plan = FaultPlan.random(
            seed + 1500, horizon=60, operators=("window_sum", "double"),
            crashes=1, torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0, rescale_crashes=2,
            name=f"rescale-random-{seed}")
        report = _run(plan, {1: {"window_sum": 2}, 3: {"window_sum": 4}},
                      seed=seed % 3)
        assert report.trace, "schedule never fired"


@pytest.mark.autoscale
class TestDeterminism:
    def test_identical_runs_bit_identical(self):
        def once():
            plan = FaultPlan(specs=(
                FaultSpec("rescale_crash", SITE_RESCALE, at=0,
                          target="recompile"),
                FaultSpec("operator_crash", SITE_OPERATOR, at=50,
                          target="window_sum"),
            ), name="determinism")
            supervisor = ScalingSupervisor(
                _build(11), SchedulePolicy({1: {"window_sum": 2}}),
                injector=FaultInjector(plan), parallelism=1,
                source_batch=SOURCE_BATCH)
            report = supervisor.run()
            return (report.sink_values,
                    [(e.eval_index, e.savepoint_id, e.old, e.new,
                      e.replayed, e.attempts) for e in report.rescales],
                    report.checkpoints, report.replayed_total,
                    [t for t in report.trace])
        assert once() == once()

    def test_replay_is_bounded_by_savepoint_interval(self):
        # replay across a rescale can never exceed what arrived since
        # the last finalized cut: the savepoint is fresh by construction
        report = _run(None, {1: {"window_sum": 2}}, interval_cycles=4)
        for event in report.rescales:
            assert event.replayed <= 4 * SOURCE_BATCH * 4  # cycles*batch*splits
