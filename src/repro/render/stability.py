"""Temporal label stability — the literal fix for "bobbling tags".

MacIntyre's complaint the paper quotes is about labels that jitter and
jump between frames.  :class:`StableLayout` wraps the per-frame
declutter layout with hysteresis:

- a label keeps its previous *offset from its anchor* as long as the
  resulting rectangle stays on-screen and collision-free (processed in
  priority order);
- only labels whose kept position fails re-run placement;
- per-frame movement relative to the anchor is what we report as jitter,
  the metric the A-series ablation on/off comparison uses.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.geometry import Rect
from .layout import PlacedLabel, declutter_layout

__all__ = ["StabilityStats", "StableLayout"]


@dataclass
class StabilityStats:
    """Accumulated jitter metrics across frames."""

    frames: int = 0
    label_frames: int = 0  # (label, frame) pairs after the first frame
    moved: int = 0  # labels whose offset changed between frames
    total_jitter_px: float = 0.0

    @property
    def mean_jitter_px(self) -> float:
        return (self.total_jitter_px / self.label_frames
                if self.label_frames else 0.0)

    @property
    def moved_fraction(self) -> float:
        return self.moved / self.label_frames if self.label_frames else 0.0


class StableLayout:
    """Stateful declutter layout with position hysteresis."""

    def __init__(self, screen: Rect) -> None:
        self.screen = screen
        self._offsets: dict[str, tuple[float, float]] = {}
        self.stats = StabilityStats()

    def layout(self, items: list[tuple[str, float, float, float, float,
                                       float]]) -> list[PlacedLabel]:
        """Place labels, keeping last frame's anchor offsets when legal."""
        self.stats.frames += 1
        ordered = sorted(items, key=lambda row: (-row[5], row[0]))
        placed: list[PlacedLabel] = []
        occupied: list[Rect] = []
        retry: list[tuple[str, float, float, float, float, float]] = []
        for aid, ax, ay, w, h, priority in ordered:
            offset = self._offsets.get(aid)
            if offset is None:
                retry.append((aid, ax, ay, w, h, priority))
                continue
            rect = Rect(ax + offset[0] - w / 2.0,
                        ay + offset[1] - h / 2.0, w, h)
            inside = (rect.x >= self.screen.x and rect.y >= self.screen.y
                      and rect.x2 <= self.screen.x2
                      and rect.y2 <= self.screen.y2)
            if inside and not any(rect.intersects(o) for o in occupied):
                occupied.append(rect)
                placed.append(PlacedLabel(aid, rect, ax, ay, priority))
                self._note_jitter(aid, offset, offset)
            else:
                retry.append((aid, ax, ay, w, h, priority))
        # Labels without a keepable position go through fresh placement
        # against the already-occupied rectangles.
        if retry:
            fresh = declutter_layout(retry, self.screen)
            fresh_by_id = {l.annotation_id: l for l in fresh}
            for aid, ax, ay, w, h, priority in retry:
                label = fresh_by_id[aid]
                if not label.dropped and any(
                        label.rect.intersects(o) for o in occupied):
                    # Collides with a hysteresis-kept label: drop rather
                    # than overlap (stability beats completeness).
                    label = PlacedLabel(aid, label.rect, ax, ay, priority,
                                        dropped=True)
                if not label.dropped:
                    occupied.append(label.rect)
                    cx, cy = label.rect.center
                    new_offset = (cx - ax, cy - ay)
                    old_offset = self._offsets.get(aid)
                    self._note_jitter(aid, old_offset, new_offset)
                    self._offsets[aid] = new_offset
                else:
                    self._offsets.pop(aid, None)
                placed.append(label)
        # Remember offsets of kept labels too (no-op but keeps the map
        # pruned to live labels).
        live = {l.annotation_id for l in placed if not l.dropped}
        self._offsets = {aid: off for aid, off in self._offsets.items()
                         if aid in live}
        for label in placed:
            if not label.dropped and label.annotation_id not in self._offsets:
                cx, cy = label.rect.center
                self._offsets[label.annotation_id] = (
                    cx - label.anchor_x, cy - label.anchor_y)
        return placed

    def _note_jitter(self, aid: str,
                     old: tuple[float, float] | None,
                     new: tuple[float, float]) -> None:
        if old is None:
            return  # first appearance: not jitter
        self.stats.label_frames += 1
        dx = new[0] - old[0]
        dy = new[1] - old[1]
        jitter = (dx * dx + dy * dy) ** 0.5
        self.stats.total_jitter_px += jitter
        if jitter > 1e-9:
            self.stats.moved += 1
