"""Experiment F5 (Figure 5: influence circles of big data and AR).

Figure 5 qualitatively classifies the influence of big data and of AR on
application fields into five levels.  We make the classification
computable: each of the four domains the paper details contributes two
*measured* uplift scores from its own experiment —

  field            bigdata uplift (what data adds)          ar uplift (what AR delivery adds)
  retail           CF-vs-popularity precision uplift (F6)   X-ray locator success on occluded goods
  tourism          portal-game engagement uplift            decluttered-vs-naive useful-label uplift (F7)
  healthcare       scripted-episode detection rate (F8)     remote-consult deadline feasibility
  public-services  AR-screening throughput uplift (F9)      role-relevant fraction of subsurface view

Scores bucket into the paper's five levels; we check the measured levels
against the figure's, tolerating one bucket of disagreement (the figure
is a drawing, not a table).
"""

import numpy as np

from repro.apps import (
    HealthcareApp,
    PublicServicesApp,
    RetailApp,
    TourismApp,
)
from repro.core import (
    ARBigDataPipeline,
    DEFAULT_INTRINSICS,
    FieldInfluence,
    LEVELS,
    PAPER_FIGURE5,
    PipelineConfig,
    classify,
)
from repro.datagen import (
    MobilityConfig,
    RetailWorld,
    generate_patients,
    generate_population,
    vitals_stream,
)
from repro.sensors import Poi, PoiDatabase
from repro.util.geometry import Rect
from repro.util.rng import make_rng


from tableprint import print_table


def _retail_scores():
    rng = make_rng(31)
    world = RetailWorld.generate(rng, num_products=100,
                                 num_categories=10, num_shoppers=60,
                                 preference_concentration=0.2)
    app = RetailApp(ARBigDataPipeline(PipelineConfig(seed=31)), world)
    app.ingest_interactions(world.interactions(rng,
                                               events_per_shopper=30))
    evaluation = app.evaluate(rng, k=5, max_users=30)
    # AR: X-ray locator task — find 20 random products from the entrance.
    found_occluded = 0
    occluded = 0
    for i in range(20):
        product = world.products[int(rng.integers(0, len(world.products)))]
        outcome = app.locate_product("s-0000", product.product_id,
                                     (0.5, 0.5))
        if outcome["occluded"]:
            occluded += 1
            if outcome["found"] and outcome["xray"]:
                found_occluded += 1
    ar_uplift = found_occluded / occluded if occluded else 0.0
    return FieldInfluence("retail", evaluation.uplift, ar_uplift)


def _tourism_scores():
    rng = make_rng(32)
    pois = PoiDatabase(Rect(0, 0, 3000, 3000))
    for i in range(150):
        # A dense downtown cluster around (1500, 1500) — the city-centre
        # view where floating bubbles visibly fail.
        if i < 80:
            x = 1500.0 + float(rng.normal(0, 180.0))
            y = 1500.0 + float(rng.normal(0, 180.0))
        else:
            x, y = float(rng.uniform(0, 3000)), float(rng.uniform(0, 3000))
        pois.add(Poi(poi_id=f"poi-{i:03d}", name=f"POI {i}",
                     category=["landmark", "cafe", "museum"][i % 3],
                     x=min(max(x, 0.0), 3000.0),
                     y=min(max(y, 0.0), 3000.0),
                     popularity=float(150 - i)))
    app = TourismApp(ARBigDataPipeline(PipelineConfig(seed=32)), pois)
    traces = generate_population(20, rng,
                                 MobilityConfig(steps=150, area_m=3000.0))
    game = app.run_game(traces, portal_count=20, encounter_m=40.0,
                        detour_m=200.0)
    comparison = app.compare_overlays(1500, 1500, (1600, 1500),
                                      DEFAULT_INTRINSICS, radius_m=800,
                                      limit=60)
    return FieldInfluence("tourism", game.engagement_uplift,
                          comparison.useful_uplift)


def _healthcare_scores():
    rng = make_rng(33)
    patients = generate_patients(rng, n=8, episode_rate=1.2,
                                 horizon_s=1800.0)
    app = HealthcareApp(ARBigDataPipeline(PipelineConfig(seed=33)),
                        patients)
    for patient in patients:
        app.ingest_vitals(vitals_stream(patient, rng, horizon_s=1800.0,
                                        period_s=5.0))
    outcomes = app.detection_outcomes()
    detection_rate = (np.mean([o.detected for o in outcomes])
                      if outcomes else 0.0)
    remote = app.remote_diagnosis(rng, link="wan", frames=200,
                                  deadline_s=0.150)
    return FieldInfluence("healthcare", float(detection_rate),
                          1.0 - remote.miss_rate)


def _public_scores():
    rng = make_rng(34)
    app = PublicServicesApp(ARBigDataPipeline(PipelineConfig(seed=34)))
    manual = app.run_screening(rng, mode="manual", passengers=200)
    ar = app.run_screening(rng, mode="ar", passengers=200)
    bigdata_uplift = max(0.0, (ar.throughput_per_min
                               - manual.throughput_per_min)
                         / ar.throughput_per_min)
    utilities = ([{"id": i, "kind": "electrical", "x": i, "y": 0,
                   "depth": 1.0} for i in range(10)]
                 + [{"id": 100 + i, "kind": "water", "x": i, "y": 1,
                     "depth": 2.0} for i in range(10)]
                 + [{"id": 200 + i, "kind": "gas", "x": i, "y": 2,
                     "depth": 1.5} for i in range(10)])
    views = app.role_views(utilities)
    ar_uplift = float(np.mean([v.visible / (v.visible + v.hidden)
                               for v in views]))
    return FieldInfluence("public-services", bigdata_uplift, ar_uplift)


def _education_scores():
    from repro.apps import EducationApp, Lesson
    rng = make_rng(35)
    lessons = [Lesson(f"l{i}", f"topic-{i}", marker_id=i + 1,
                      position=(float(i) * 2.0, 0.0, 1.0))
               for i in range(6)]
    app = EducationApp(ARBigDataPipeline(PipelineConfig(seed=35)),
                       lessons)
    outcome = app.run_semester(rng, num_students=25, quiz_rounds=20)
    # AR uplift: marker-triggered content success at classroom range.
    triggered = 0
    for i in range(15):
        if app.scan_marker(rng, lessons[i % 6].lesson_id,
                           distance_m=0.5, intrinsics=DEFAULT_INTRINSICS,
                           noise_sigma=0.02)["triggered"]:
            triggered += 1
    return FieldInfluence("education", outcome.uplift, triggered / 15)


def run_experiment():
    fields = [_retail_scores(), _tourism_scores(), _healthcare_scores(),
              _public_scores(), _education_scores()]
    return classify(fields)


def bench_fig5_influence(benchmark):
    levels = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    rows = [[l.field, round(l.bigdata_score, 3), l.bigdata_level,
             PAPER_FIGURE5.get(l.field, {}).get("bigdata", "-"),
             round(l.ar_score, 3), l.ar_level,
             PAPER_FIGURE5.get(l.field, {}).get("ar", "-")]
            for l in levels]
    print_table(
        "F5  Figure 5: influence levels, measured vs paper",
        ["field", "bd score", "bd level", "bd paper", "ar score",
         "ar level", "ar paper"],
        rows,
        note="levels bucketed from measured uplifts; check allows one "
             "bucket of disagreement with the drawn figure")
    rank = {level: i for i, level in enumerate(LEVELS)}
    for l in levels:
        paper = PAPER_FIGURE5.get(l.field)
        if paper is not None:
            assert abs(rank[l.bigdata_level]
                       - rank[paper["bigdata"]]) <= 1, \
                f"{l.field} bigdata: {l.bigdata_level} vs " \
                f"{paper['bigdata']}"
            assert abs(rank[l.ar_level] - rank[paper["ar"]]) <= 1, \
                f"{l.field} ar: {l.ar_level} vs {paper['ar']}"
        # Both technologies measurably help every field in the figure.
        assert l.bigdata_score > 0.05
        assert l.ar_score > 0.05
    by_field = {l.field: l for l in levels}
    # Ordering visible in the figure: healthcare/retail are the biggest
    # big-data beneficiaries; tourism is AR's showcase.
    assert by_field["healthcare"].bigdata_score >= \
        by_field["public-services"].bigdata_score - 0.1
    assert by_field["tourism"].ar_score >= \
        by_field["public-services"].ar_score
