"""Table-driven tests for the autoscaling decision layer.

Policies are pure functions of (signals, evals_since_change), so every
hysteresis band, cooldown window, min/max clamp and gradient sign flip
is pinned by an explicit table — no executor, no clock.  The Autoscaler
bookkeeping (counter deltas, cooldown reset, crash-rewind clamping) is
tested against a bare MetricsRegistry, and one small end-to-end smoke
keeps the supervisor's happy path inside tier 1.
"""

import pytest

from repro.chaos import (
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
)
from repro.streaming import (
    Autoscaler,
    GradientPolicy,
    OperatorSignals,
    SchedulePolicy,
    ScalingSupervisor,
    ShedPolicy,
    UtilizationTargetPolicy,
)
from repro.util.errors import ConfigError
from repro.util.metrics import MetricsRegistry


def sig(op="win", p=2, u=0.65, trend=0.0, eval_index=0):
    return OperatorSignals(operator=op, parallelism=p, utilization=u,
                           backlog_trend=trend, eval_index=eval_index)


class TestUtilizationTargetPolicy:
    POLICY = UtilizationTargetPolicy(target=0.65, high=0.85, low=0.35,
                                     min_parallelism=1, max_parallelism=8,
                                     cooldown=2)

    # (parallelism, utilization, evals_since_change) -> expected target
    TABLE = [
        # inside the hysteresis band: hold at any width
        (1, 0.65, 9, 1),
        (4, 0.40, 9, 4),
        (4, 0.84, 9, 4),
        # above the high band: scale up toward target utilization
        (1, 0.90, 9, 2),       # ceil(1 * .90 / .65) = 2
        (2, 1.00, 9, 4),       # ceil(2 * 1.0 / .65) = 4
        (4, 0.90, 9, 6),       # ceil(4 * .90 / .65) = 6
        # max clamp: saturated at the ceiling stays put
        (8, 1.00, 9, 8),
        (6, 1.00, 9, 8),       # ceil(6/.65)=10 -> clamped to 8
        # below the low band: scale down toward target
        (4, 0.10, 9, 1),       # ceil(4 * .10 / .65) = 1
        (4, 0.30, 9, 2),       # ceil(4 * .30 / .65) = 2
        (2, 0.34, 9, 1),       # ceil(2 * .34 / .65) = 2, but must shrink
        # min clamp: idle at the floor stays put
        (1, 0.00, 9, 1),
        # cooldown: any excursion holds until the window passes
        (1, 0.99, 0, 1),
        (1, 0.99, 1, 1),
        (4, 0.01, 1, 4),
        (1, 0.99, 2, 2),       # window over: the decision fires
    ]

    @pytest.mark.parametrize("p,u,since,expected", TABLE)
    def test_table(self, p, u, since, expected):
        decision = self.POLICY.decide(sig(p=p, u=u), since)
        assert decision.target == expected
        assert decision.current == p
        assert decision.is_change == (expected != p)

    def test_steady_load_is_noop_forever(self):
        for step in range(50):
            decision = self.POLICY.decide(sig(p=4, u=0.65), step)
            assert not decision.is_change
            assert decision.reason in ("in-band", "cooldown")

    def test_validation(self):
        with pytest.raises(ConfigError):
            UtilizationTargetPolicy(low=0.7, target=0.65)  # low > target
        with pytest.raises(ConfigError):
            UtilizationTargetPolicy(high=0.5)  # high < target
        with pytest.raises(ConfigError):
            UtilizationTargetPolicy(min_parallelism=0)
        with pytest.raises(ConfigError):
            UtilizationTargetPolicy(min_parallelism=4, max_parallelism=2)
        with pytest.raises(ConfigError):
            UtilizationTargetPolicy(cooldown=-1)


class TestGradientPolicy:
    POLICY = GradientPolicy(up_slope=1.0, down_slope=-1.0, factor=2.0,
                            min_parallelism=1, max_parallelism=8,
                            cooldown=1)

    # (parallelism, backlog_trend, evals_since_change) -> expected
    TABLE = [
        # deadband: anything in [-1, 1] holds
        (2, 0.0, 9, 2),
        (2, 0.9, 9, 2),
        (2, -0.9, 9, 2),
        # growing backlog: multiply by factor (sign flip up)
        (1, 5.0, 9, 2),
        (2, 1.1, 9, 4),
        (4, 100.0, 9, 8),
        (8, 100.0, 9, 8),     # max clamp
        # shrinking backlog: divide by factor (sign flip down)
        (4, -2.0, 9, 2),
        (2, -1.1, 9, 1),
        (1, -100.0, 9, 1),    # min clamp
        # cooldown holds both directions
        (2, 50.0, 0, 2),
        (2, -50.0, 0, 2),
    ]

    @pytest.mark.parametrize("p,trend,since,expected", TABLE)
    def test_table(self, p, trend, since, expected):
        decision = self.POLICY.decide(sig(p=p, trend=trend), since)
        assert decision.target == expected

    def test_validation(self):
        with pytest.raises(ConfigError):
            GradientPolicy(up_slope=-1.0)
        with pytest.raises(ConfigError):
            GradientPolicy(down_slope=1.0)
        with pytest.raises(ConfigError):
            GradientPolicy(factor=1.0)


class TestSchedulePolicy:
    def test_fires_only_at_scheduled_evals(self):
        policy = SchedulePolicy({3: {"win": 4}})
        assert not policy.decide(sig(eval_index=2), 0).is_change
        assert policy.decide(sig(eval_index=3), 0).target == 4
        assert not policy.decide(sig(eval_index=4), 0).is_change

    def test_ignores_other_operators_and_same_width(self):
        policy = SchedulePolicy({1: {"win": 2}})
        assert not policy.decide(sig(op="other", eval_index=1), 0).is_change
        assert not policy.decide(sig(p=2, eval_index=1), 0).is_change

    def test_validation(self):
        with pytest.raises(ConfigError):
            SchedulePolicy({0: {"win": 0}})


class TestShedPolicyValidation:
    def test_hysteresis_and_ratio(self):
        with pytest.raises(ConfigError):
            ShedPolicy(trigger_wait_s=1.0, release_wait_s=2.0)
        with pytest.raises(ConfigError):
            ShedPolicy(trigger_wait_s=2.0, release_wait_s=1.0, keep=3,
                       mod=2)
        ShedPolicy(trigger_wait_s=2.0, release_wait_s=1.0, keep=1, mod=2)


class TestAutoscalerBookkeeping:
    def _collect(self, scaler, registry, processed, cycles=2.0, backlog=0.0):
        registry.gauge("op.processed", op="win").set(processed)
        return scaler.collect(registry, {"win": 2}, ["win"],
                              cycles=cycles, backlog=backlog,
                              watermark_lag_s=0.0)

    def test_utilization_from_counter_deltas(self):
        registry = MetricsRegistry()
        scaler = Autoscaler(UtilizationTargetPolicy(), rated_capacity=16.0)
        self._collect(scaler, registry, processed=0.0)
        signals = self._collect(scaler, registry, processed=64.0)
        # 64 elements / 2 cycles / (2 subtasks * 16 rated) = 1.0
        assert signals["win"].utilization == pytest.approx(1.0)

    def test_crash_rewind_clamps_to_zero(self):
        registry = MetricsRegistry()
        scaler = Autoscaler(UtilizationTargetPolicy(), rated_capacity=16.0)
        self._collect(scaler, registry, processed=100.0)
        # a restore rewound the gauge below the previous reading
        signals = self._collect(scaler, registry, processed=40.0)
        assert signals["win"].utilization == 0.0

    def test_backlog_trend_is_delta(self):
        registry = MetricsRegistry()
        scaler = Autoscaler(GradientPolicy(), rated_capacity=16.0)
        self._collect(scaler, registry, processed=0.0, backlog=10.0)
        signals = self._collect(scaler, registry, processed=0.0,
                                backlog=25.0)
        assert signals["win"].backlog_trend == pytest.approx(15.0)

    def test_cooldown_resets_on_change_and_first_decision_allowed(self):
        registry = MetricsRegistry()
        policy = UtilizationTargetPolicy(cooldown=2)
        scaler = Autoscaler(policy, rated_capacity=16.0)
        self._collect(scaler, registry, processed=0.0)
        # saturated: first evaluation may act (counter seeded to cooldown)
        targets = scaler.evaluate(self._collect(scaler, registry,
                                                processed=64.0))
        assert targets == {"win": 4}
        # immediately saturated again: cooldown holds
        targets = scaler.evaluate(self._collect(scaler, registry,
                                                processed=128.0))
        assert targets == {}
        assert any(d.reason == "cooldown" for d in scaler.decisions)

    def test_rated_capacity_validation(self):
        with pytest.raises(ConfigError):
            Autoscaler(UtilizationTargetPolicy(), rated_capacity=0.0)


class TestSupervisorSmoke:
    """Tier-1 happy path: one live rescale, output equal to golden."""

    def test_scheduled_rescale_preserves_output(self):
        events = reference_events(seed=7, n=300, keys=4)
        golden = canonical_sinks(fault_free_sinks(
            lambda: reference_job(reference_events(seed=7, n=300, keys=4),
                                  splits=4),
            batch_mode=True, chaining=True, parallelism=1,
            source_batch=32))
        supervisor = ScalingSupervisor(
            reference_job(events, splits=4),
            SchedulePolicy({1: {"window_sum": 2}}),
            parallelism=1, source_batch=32)
        report = supervisor.run()
        assert len(report.rescales) == 1
        assert report.rescales[0].old["window_sum"] == 1
        assert report.rescales[0].new["window_sum"] == 2
        assert canonical_sinks(report.sink_values) == golden
        # the rescale went through a real savepoint
        assert report.rescales[0].savepoint_id >= 1
        assert report.checkpoints >= 2

    def test_deterministic_trajectory(self):
        def once():
            events = reference_events(seed=9, n=300, keys=4)
            supervisor = ScalingSupervisor(
                reference_job(events, splits=4),
                SchedulePolicy({1: {"window_sum": 2}}),
                parallelism=1, source_batch=32)
            report = supervisor.run()
            return (report.sink_values,
                    [(e.eval_index, e.savepoint_id, e.old, e.new)
                     for e in report.rescales])
        assert once() == once()


class TestGaugeRetirementOnRescale:
    """Regression: a scale-down must retire the removed clones' gauges.

    Before the fix, ``subtask.processed{op=window_sum[1]}`` survived a
    2→1 rescale at its last value, so any snapshot consumer averaging
    per-subtask throughput kept seeing a ghost subtask.
    """

    def test_scale_down_then_snapshot_has_no_ghost_subtasks(self):
        events = reference_events(seed=7, n=300, keys=4)
        supervisor = ScalingSupervisor(
            reference_job(events, splits=4),
            SchedulePolicy({1: {"window_sum": 1}}),
            parallelism=2, source_batch=32)
        report = supervisor.run()
        assert len(report.rescales) == 1
        assert report.rescales[0].old["window_sum"] == 2
        assert report.rescales[0].new["window_sum"] == 1
        snap = supervisor.metrics.snapshot()
        assert not any("window_sum[1]" in name for name in snap), \
            f"ghost subtask gauges survived the rescale: {sorted(snap)}"

    def test_scale_up_retires_nothing(self):
        events = reference_events(seed=7, n=300, keys=4)
        supervisor = ScalingSupervisor(
            reference_job(events, splits=4),
            SchedulePolicy({1: {"window_sum": 2}}),
            parallelism=1, source_batch=32)
        report = supervisor.run()
        assert report.rescales[0].new["window_sum"] == 2
        snap = supervisor.metrics.snapshot()
        assert any("window_sum[1]" in name for name in snap)
