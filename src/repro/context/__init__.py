"""Semantic context: entities, user context, ARML markup, and the
analytics-to-AR interpretation engine."""

from .arml import ArmlDocument, ArmlFeature, parse_arml, serialize_arml
from .entities import ContextStore, SemanticEntity, UserContext
from .interpret import BindingRule, BoundContent, InterpretationEngine

__all__ = [
    "ArmlDocument",
    "ArmlFeature",
    "parse_arml",
    "serialize_arml",
    "ContextStore",
    "SemanticEntity",
    "UserContext",
    "BindingRule",
    "BoundContent",
    "InterpretationEngine",
]
