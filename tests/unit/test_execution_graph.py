"""Unit tests: logical -> physical compilation and the parallel executor."""

import pytest

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    ParallelExecutor,
    TumblingWindows,
    compile_execution_graph,
)
from repro.streaming.execution import FORWARD, HASH, MERGE, REBALANCE
from repro.streaming.graph import JobGraph
from repro.util.errors import CheckpointError, JobGraphError


def _els(n, key_mod=4):
    return [Element(value=float(i), timestamp=float(i), key=i % key_mod)
            for i in range(n)]


def _windowed_job(n=40, splits=None):
    builder = JobBuilder("j")
    (builder.source("s", _els(n), splits=splits)
            .with_watermarks(0.0)
            .map(lambda v: v * 2.0, name="scale")
            .filter(lambda v: v >= 0.0, name="keep")
            .window(TumblingWindows(10.0), "sum", name="window_sum")
            .sink("out"))
    return builder.build()


class TestCompile:
    def test_p1_fuses_same_chains_as_executor(self):
        job = _windowed_job()
        graph = compile_execution_graph(job, 1)
        executor = Executor(_windowed_job())
        # The p=1 physical plan has the same fusion structure as the
        # single-instance runtime: stateless ops fuse, the keyed window
        # stays a chain break.
        chain_members = {tuple(n.members) for n in graph.nodes.values()
                         if len(n.members) > 1}
        runtime_chains = {tuple(c.member_names)
                          for c in executor._exec_ops.values()
                          if hasattr(c, "member_names")}
        assert chain_members == runtime_chains
        assert all(n.parallelism == 1 for n in graph.nodes.values())

    def test_edge_modes(self):
        graph = compile_execution_graph(_windowed_job(), 2)
        modes = {(e.up, e.down): e.mode for e in graph.edges}
        chain = next(n for n in graph.nodes.values() if len(n.members) > 1)
        assert modes[("s", chain.name)] == FORWARD
        assert modes[(chain.name, "window_sum")] == HASH
        assert modes[("window_sum", "out")] == MERGE

    def test_parallelism_mismatch_is_rebalance(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(8))
                .map(lambda v: v, name="a")
                .map(lambda v: v, name="b")
                .sink("out"))
        graph = compile_execution_graph(
            builder.build(), {"default": 1, "s": 1, "a": 1, "b": 3})
        modes = {(e.up, e.down): e.mode for e in graph.edges}
        # Unequal parallelism blocks fusion and forces a rebalance edge.
        assert modes[("a", "b")] == REBALANCE
        assert all(len(n.members) == 1 for n in graph.nodes.values())

    def test_parallelism_dict_with_default(self):
        graph = compile_execution_graph(
            _windowed_job(), {"default": 2, "window_sum": 4})
        assert graph.nodes["window_sum"].parallelism == 4
        assert graph.source_parallelism["s"] == 2
        assert graph.max_parallelism() == 4

    def test_rejects_nonpositive_parallelism(self):
        with pytest.raises(JobGraphError, match="parallelism"):
            compile_execution_graph(_windowed_job(), 0)

    def test_rejects_keyed_parallelism_over_key_groups(self):
        with pytest.raises(JobGraphError, match="num_key_groups"):
            compile_execution_graph(_windowed_job(), {"default": 1,
                                                      "window_sum": 16},
                                    num_key_groups=8)

    def test_rejects_source_parallelism_over_splits(self):
        with pytest.raises(JobGraphError, match="splits"):
            compile_execution_graph(_windowed_job(splits=2),
                                    {"default": 1, "s": 4})

    def test_describe_smoke(self):
        text = compile_execution_graph(_windowed_job(), 2).describe()
        assert "window_sum x2 (keyed)" in text
        assert "hash" in text


class TestGraphValidation:
    """JobGraph.validate / JobBuilder guards (direct construction where
    the builder cannot produce the malformed shape)."""

    def test_edge_out_of_sink_rejected(self):
        builder = JobBuilder("j")
        handle = builder.source("s", _els(2)).map(lambda v: v, name="m")
        handle.map(lambda v: v, name="m2").sink("out2")
        handle.sink("out")
        job = builder.build()
        # "out" -> "m2" keeps the graph acyclic, so the terminal-sink
        # check is what fires.
        bad = JobGraph(name="j", sources=job.sources,
                       operators=job.operators,
                       edges=job.edges + [("out", "m2", None)],
                       sinks=job.sinks)
        with pytest.raises(JobGraphError, match="terminal"):
            bad.validate()

    def test_sink_colliding_with_operator_rejected(self):
        builder = JobBuilder("j")
        builder.source("s", _els(2)).map(lambda v: v, name="m").sink("out")
        job = builder.build()
        # Declare the terminal operator itself as a sink name: no
        # outgoing edges, so only the collision check can reject it.
        bad = JobGraph(name="j", sources=job.sources,
                       operators=job.operators,
                       edges=[("s", "m", None)], sinks={"m"})
        with pytest.raises(JobGraphError, match="collides"):
            bad.validate()

    def test_sink_name_collision_in_builder(self):
        builder = JobBuilder("j")
        handle = builder.source("s", _els(2)).map(lambda v: v, name="m")
        with pytest.raises(JobGraphError):
            handle.sink("m")

    def test_duplicate_edge_rejected(self):
        builder = JobBuilder("j")
        builder.source("s", _els(2)).map(lambda v: v, name="m").sink("out")
        with pytest.raises(JobGraphError, match="duplicate"):
            builder._add_edge("s", "m", None)


class TestParallelExecutor:
    def test_p1_matches_single_instance(self):
        expected = Executor(_windowed_job()).run()["out"]
        executor = ParallelExecutor(_windowed_job(), 1)
        executor.run()
        got = executor.sinks["out"]
        assert [repr(v) for v in got.values] \
            == [repr(v) for v in expected.values]

    def test_logical_counters_sum_subtasks(self):
        executor = ParallelExecutor(_windowed_job(), 4)
        executor.run()
        processed, emitted = executor.logical_counters("window_sum")
        assert processed == sum(
            op.processed for op in executor.subtask_operators("window_sum"))
        assert len(executor.subtask_operators("window_sum")) == 4
        assert processed > 0 and emitted > 0

    def test_checkpoint_with_inflight_rejected(self):
        executor = ParallelExecutor(_windowed_job(), 2)
        executor.run(max_cycles=1, source_batch=8)
        key = next(iter(executor._channels))
        next(iter(executor._channels[key].values())).append(
            Element(value=1.0, timestamp=0.0))
        with pytest.raises(CheckpointError, match="in flight"):
            executor.checkpoint()

    def test_restore_rejects_key_group_mismatch(self):
        executor = ParallelExecutor(_windowed_job(), 2, num_key_groups=64)
        executor.run(max_cycles=1, source_batch=8)
        snapshot = executor.checkpoint()
        other = ParallelExecutor(_windowed_job(), 2, num_key_groups=32)
        with pytest.raises(CheckpointError, match="key group"):
            other.restore(snapshot)

    def test_restore_rejects_split_count_mismatch(self):
        executor = ParallelExecutor(_windowed_job(splits=2), 2)
        executor.run(max_cycles=1, source_batch=8)
        snapshot = executor.checkpoint()
        other = ParallelExecutor(_windowed_job(splits=4), 2)
        with pytest.raises(CheckpointError, match="splits"):
            other.restore(snapshot)

    def test_modeled_speedup_reported(self):
        executor = ParallelExecutor(_windowed_job(200, splits=4), 4)
        executor.run(source_batch=16)
        assert executor.serial_busy_s > 0.0
        assert executor.modeled_speedup >= 1.0
