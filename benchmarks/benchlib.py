"""Shared plumbing for the ``BENCH_streaming.json`` bench family.

Every streaming bench (p1 throughput, p4 parallel, p7 autoscale, p8
store, p9 geo) reports into one baseline file that the ``tools/check_*``
gates floor-check.  The merge discipline lives here so the benches
cannot drift apart:

- each bench owns exactly one *section* key (plus ``{section}_config``);
  merging never clobbers a sibling bench's section;
- whichever bench ran last stamps ``platform`` and ``git_sha`` — both
  record the same interpreter/numpy/CPU and commit;
- ``bench_parser`` standardizes the ``--out`` / ``--events`` flags.

``bench_p1_throughput.py`` predates the merge discipline and owns the
whole file (it writes the baseline the others merge into); it uses
:func:`write_full`.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path

from platform_stamp import git_sha, platform_stamp

__all__ = ["DEFAULT_OUT", "bench_parser", "load_baseline",
           "merge_section", "write_full"]

DEFAULT_OUT = Path(__file__).parent / "BENCH_streaming.json"


def bench_parser(description: str | None,
                 *, events_default: int | None = None,
                 ) -> argparse.ArgumentParser:
    """The standard bench CLI: ``--out`` always, ``--events`` when the
    bench scales with stream length."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT)
    if events_default is not None:
        parser.add_argument("--events", type=int, default=events_default)
    return parser


def load_baseline(out: Path) -> dict:
    """The current merged baseline, or an empty one."""
    if out.exists():
        return json.loads(out.read_text())
    return {}


def merge_section(out: Path, section: str, results: dict) -> dict:
    """Merge one bench's ``results`` into the shared baseline.

    ``results`` must carry the bench's own data under ``results[section]``
    and its knobs under ``results["config"]``.  Only this bench's keys
    are replaced; the P1 sections (and every sibling's) survive.
    """
    merged = load_baseline(out)
    merged[section] = results[section]
    merged.setdefault("config", {})
    merged[f"{section}_config"] = results.get("config", {})
    merged["platform"] = platform_stamp()
    merged["git_sha"] = git_sha()
    out.write_text(json.dumps(merged, indent=2) + "\n")
    print(f"\nresults merged into {out}")
    return merged


def write_full(out: Path, results: dict) -> None:
    """Write the whole baseline file (bench_p1 only)."""
    out.write_text(json.dumps(results, indent=2) + "\n")
    print(f"\nwrote {out}")
