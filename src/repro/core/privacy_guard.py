"""Privacy enforcement at the pipeline boundary (Section 4.3 as a
component).

Personal data leaves the device only through the guard:

- locations are perturbed (geo-indistinguishability) or cloaked
  (k-anonymity) before entering any shared topic;
- aggregate statistics are released only through DP mechanisms charged
  against a per-user epsilon budget;
- raw identifiers are pseudonymized with a keyed stable hash.

The guard exposes counters (perturbations, releases, refusals) so the
privacy experiments can relate protection level to utility loss.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..eventlog.producer import stable_hash
from ..privacy.location import GridCloak, PlanarLaplace
from ..privacy.mechanisms import BudgetAccountant, LaplaceMechanism
from ..util.errors import BudgetExhausted, PrivacyError

__all__ = ["PrivacyConfig", "PrivacyGuard"]


@dataclass(frozen=True)
class PrivacyConfig:
    """Guard configuration.

    location_mode   'none' | 'laplace' | 'cloak'
    geo_epsilon     epsilon per metre for planar Laplace
    cloak_k         k for grid cloaking
    dp_epsilon_total  per-user budget for aggregate releases
    dp_epsilon_per_query  charged per release
    pseudonym_salt  keyed-hash salt for identifier pseudonymization
    """

    location_mode: str = "laplace"
    geo_epsilon: float = 0.01
    cloak_k: int = 5
    dp_epsilon_total: float = 1.0
    dp_epsilon_per_query: float = 0.1
    pseudonym_salt: str = "repro"

    def __post_init__(self) -> None:
        if self.location_mode not in ("none", "laplace", "cloak"):
            raise PrivacyError(
                f"unknown location mode {self.location_mode!r}")


class PrivacyGuard:
    """The single gate personal data passes on its way to big data."""

    def __init__(self, config: PrivacyConfig, rng: np.random.Generator,
                 cloak: GridCloak | None = None) -> None:
        self.config = config
        self._rng = rng
        self._planar = PlanarLaplace(config.geo_epsilon, rng) \
            if config.location_mode == "laplace" else None
        self._cloak = cloak
        if config.location_mode == "cloak" and cloak is None:
            raise PrivacyError("cloak mode requires a GridCloak instance")
        self._accountants: dict[str, BudgetAccountant] = {}
        self.locations_processed = 0
        self.releases = 0
        self.refusals = 0

    # -- identifiers -------------------------------------------------------

    def pseudonymize(self, user_id: str) -> str:
        """Stable keyed pseudonym (same user -> same pseudonym)."""
        digest = stable_hash(f"{self.config.pseudonym_salt}:{user_id}")
        return f"anon-{digest % 10**12:012d}"

    # -- locations -----------------------------------------------------------

    def protect_location(self, x: float, y: float,
                         population: np.ndarray | None = None,
                         ) -> tuple[float, float, float]:
        """Returns (x', y', worst_case_error_m) per the configured mode."""
        self.locations_processed += 1
        mode = self.config.location_mode
        if mode == "none":
            return x, y, 0.0
        if mode == "laplace":
            assert self._planar is not None
            px, py = self._planar.perturb(x, y)
            return px, py, self._planar.expected_displacement_m
        # cloak
        assert self._cloak is not None
        if population is None:
            raise PrivacyError("cloak mode needs the population snapshot")
        region = self._cloak.cloak(x, y, population)
        cx, cy = region.rect.center
        return cx, cy, region.radius_m

    # -- aggregate releases ------------------------------------------------------

    def _accountant(self, scope: str) -> BudgetAccountant:
        if scope not in self._accountants:
            self._accountants[scope] = BudgetAccountant(
                self.config.dp_epsilon_total)
        return self._accountants[scope]

    def release_aggregate(self, scope: str, true_value: float,
                          sensitivity: float = 1.0) -> float | None:
        """DP-noised release, or None when the scope's budget is spent."""
        accountant = self._accountant(scope)
        mechanism = LaplaceMechanism(
            self.config.dp_epsilon_per_query, sensitivity, self._rng,
            accountant=accountant)
        try:
            value = mechanism.release(true_value)
        except BudgetExhausted:
            self.refusals += 1
            return None
        self.releases += 1
        return float(value)

    def remaining_budget(self, scope: str) -> float:
        return self._accountant(scope).remaining_epsilon
