"""Barrier-alignment edge cases for coordinated checkpoints.

The barrier protocol must hold in the degenerate corners: splits with no
data, channels that carry only watermarks, faults landing while an
alignment is mid-flight, and checkpoints that outlive the plan shape
they were taken at (rescale restore).  These are tier-1: each case is a
small pinned scenario, not a seeded sweep (those live in
``test_coordinated_chaos.py``).
"""

from repro.chaos import (
    SITE_OPERATOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
    run_coordinated,
)
from repro.streaming import (
    CheckpointCoordinator,
    CheckpointStore,
    Element,
    JobBuilder,
    ParallelExecutor,
)
from repro.streaming.runtime import Executor
from repro.streaming.windows import TumblingWindows


def _keyed_job(elements, name="edge", window_s=10.0):
    builder = JobBuilder(name)
    (builder.source("events", elements, splits=4)
            .with_watermarks(5.0, name="wm")
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(window_s), "sum",
                    value_fn=lambda v: v["v"], name="win")
            .sink("out"))
    return builder.build()


def _events(n=60, keys=4):
    return [Element(value={"k": i % keys, "v": float(i)}, timestamp=i * 0.5)
            for i in range(n)]


def _coordinated_sinks(job, **kwargs):
    report = run_coordinated(job, None, **kwargs)
    return report.sink_values


class TestEmptySplits:
    def test_source_with_empty_splits_still_checkpoints(self):
        # 4 splits, data only in split 0: the other splits' channels
        # carry nothing but barriers, yet alignment must complete
        def factory(split, num_splits):
            if split != 0:
                return []
            return _events(40)

        def build():
            builder = JobBuilder("empty-splits")
            (builder.source("events", split_factory=factory, splits=4)
                    .with_watermarks(5.0, name="wm")
                    .key_by(lambda v: v["k"], name="by_key")
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"], name="win")
                    .sink("out"))
            return builder.build()

        golden = fault_free_sinks(build, parallelism=2, source_batch=8)
        report = run_coordinated(build(), None, parallelism=2,
                                 source_batch=8, interval_cycles=1)
        assert report.sink_values == golden
        assert report.checkpoints >= 1

    def test_entirely_empty_source(self):
        job = _keyed_job([])
        report = run_coordinated(job, None, parallelism=2, source_batch=8)
        assert report.sink_values == {"out": []}
        # the final checkpoint still finalizes over empty channels
        assert report.checkpoints >= 1


class TestWatermarkOnlyChannels:
    def test_filter_that_drops_everything(self):
        # downstream of the filter, channels carry only watermarks and
        # barriers; alignment and 2PC pre-commit must still complete
        def build():
            builder = JobBuilder("wm-only")
            (builder.source("events", _events(40))
                    .with_watermarks(5.0, name="wm")
                    .filter(lambda v: False, name="drop_all")
                    .key_by(lambda v: v["k"], name="by_key")
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"], name="win")
                    .sink("out"))
            return builder.build()

        report = run_coordinated(build(), None, parallelism=2,
                                 source_batch=8, interval_cycles=1)
        assert report.sink_values == {"out": []}
        assert report.checkpoints >= 1

    def test_one_starved_branch(self):
        # one branch filtered dry, the other alive — the live branch's
        # output must be unaffected by alignment against the dry one
        def build():
            builder = JobBuilder("starved-branch")
            (builder.source("events", _events(40))
                    .with_watermarks(5.0, name="wm")
                    .filter(lambda v: v["k"] == 99, name="dry")
                    .key_by(lambda v: v["k"], name="by_dry")
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"], name="win_dry")
                    .sink("out_dry"))
            (builder.source("beats", _events(40))
                    .with_watermarks(5.0, name="wm_live")
                    .key_by(lambda v: v["k"], name="by_live")
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"], name="win_live")
                    .sink("out_live"))
            return builder.build()

        golden = fault_free_sinks(build, parallelism=2, source_batch=8)
        report = run_coordinated(build(), None, parallelism=2,
                                 source_batch=8, interval_cycles=1)
        assert report.sink_values == golden
        assert report.sink_values["out_dry"] == []
        assert report.sink_values["out_live"]


class TestBarrierDuringFault:
    def test_mid_batch_crash_while_aligning(self):
        # interval_cycles=1 keeps a checkpoint permanently in flight, so
        # the mid-batch crash lands during an alignment; recovery must
        # stay exactly-once
        events = reference_events(seed=5, n=240)
        golden = fault_free_sinks(lambda: reference_job(events),
                                  parallelism=2, source_batch=16)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=37,
                      target="window_sum"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=60,
                      target="double[1]"),
        ), name="mid-align")
        injector = FaultInjector(plan)
        report = run_coordinated(reference_job(events), injector,
                                 parallelism=2, source_batch=16,
                                 interval_cycles=1)
        assert report.crashes == 2
        assert canonical_sinks(report.sink_values) == canonical_sinks(golden)

    def test_crash_during_snapshot(self):
        # the barrier-phase site: a subtask dies *while* snapshotting
        events = reference_events(seed=9, n=240)
        golden = fault_free_sinks(lambda: reference_job(events),
                                  parallelism=2, source_batch=16)
        plan = FaultPlan(specs=(
            FaultSpec("barrier_crash", "streaming.barrier", at=1,
                      target="window_sum"),
        ), name="snap-crash")
        injector = FaultInjector(plan)
        report = run_coordinated(reference_job(events), injector,
                                 parallelism=2, source_batch=16,
                                 interval_cycles=1)
        assert report.crashes == 1
        assert canonical_sinks(report.sink_values) == canonical_sinks(golden)


class TestRescaleFromCoordinatedCheckpoint:
    def test_restore_finalized_checkpoint_at_other_parallelism(self):
        def canon(values):
            return sorted(values, key=repr)

        events = _events(120, keys=6)
        expected = canon(Executor(_keyed_job(events)).run()["out"].values)
        for old_p, new_p in ((2, 4), (2, 1), (4, 2)):
            donor = ParallelExecutor(_keyed_job(events), old_p,
                                     transactional_sinks=True)
            store = CheckpointStore()
            CheckpointCoordinator(donor, store=store, interval_cycles=1)
            donor.run(source_batch=8, max_cycles=4)
            manifest = store.latest_manifest()
            assert manifest is not None and manifest.status == "finalized"
            snapshot = store.latest()
            assert snapshot is not None
            assert not snapshot.in_flight  # aligned: rescale is legal
            survivor = ParallelExecutor(_keyed_job(events), new_p)
            survivor.restore(snapshot)
            survivor.run(source_batch=8)
            got = canon(survivor.sinks["out"].values)
            assert got == expected, (
                f"rescale {old_p}->{new_p} from coordinator checkpoint "
                f"{snapshot.checkpoint_id} diverged")
