"""Unit tests: contention-aware offload pricing."""

import pytest

from repro.offload import (
    GreedyLatency,
    OffloadPlanner,
    Pipeline,
    TaskStage,
)
from repro.simnet import LinkSpec, NodeSpec, Topology
from repro.util.errors import OffloadError
from repro.util.rng import make_rng


def _setup():
    topology = Topology(make_rng(0))
    topology.add_node(NodeSpec("device", cpu_hz=0.5e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
    topology.add_link("device", "edge",
                      LinkSpec(latency_s=0.002, bandwidth_bps=50e6))
    topology.add_link("edge", "cloud",
                      LinkSpec(latency_s=0.02, bandwidth_bps=25e6))
    planner = OffloadPlanner(topology, "device")
    pipeline = Pipeline("p", (
        TaskStage("acquire", cycles=1e6, output_bytes=80_000,
                  pinned="device"),
        TaskStage("work", cycles=100e6, output_bytes=500),
        TaskStage("render", cycles=1e6, output_bytes=80_000,
                  pinned="device")))
    return topology, planner, pipeline


class TestContentionAwarePricing:
    def test_zero_load_is_baseline(self):
        _t, planner, pipeline = _setup()
        base = planner.price(pipeline, 1, "edge").remote_compute_s
        planner.set_tier_load("edge", 0.0)
        assert planner.price(pipeline, 1, "edge").remote_compute_s == \
            pytest.approx(base)

    def test_load_inflates_remote_compute(self):
        _t, planner, pipeline = _setup()
        base = planner.price(pipeline, 1, "edge").remote_compute_s
        planner.set_tier_load("edge", 0.5)
        assert planner.price(pipeline, 1, "edge").remote_compute_s == \
            pytest.approx(2.0 * base)
        planner.set_tier_load("edge", 0.9)
        assert planner.price(pipeline, 1, "edge").remote_compute_s == \
            pytest.approx(10.0 * base)

    def test_saturated_tier_infeasible(self):
        _t, planner, pipeline = _setup()
        planner.set_tier_load("edge", 1.0)
        with pytest.raises(OffloadError):
            planner.price(pipeline, 1, "edge")

    def test_plan_skips_saturated_tier(self):
        _t, planner, pipeline = _setup()
        planner.set_tier_load("edge", 1.2)
        outcomes = planner.plan(pipeline)
        assert all(o.tier_node != "edge" for o in outcomes)

    def test_greedy_reroutes_around_congestion(self):
        _t, planner, pipeline = _setup()
        free = GreedyLatency().decide(planner, pipeline)
        assert free.outcome.tier_node == "edge"
        planner.set_tier_load("edge", 0.99)
        congested = GreedyLatency().decide(planner, pipeline)
        assert congested.outcome.tier_node != "edge"

    def test_negative_load_rejected(self):
        _t, planner, _p = _setup()
        with pytest.raises(OffloadError):
            planner.set_tier_load("edge", -0.1)
