"""Lightweight metric accumulators used across subsystems and benches.

Three primitives cover everything the experiments need:

- :class:`Counter` — monotonically increasing event counts.
- :class:`Gauge` — a last-value-wins sample.
- :class:`Summary` — streaming mean/min/max/percentiles over samples
  (stores samples; our runs are bounded so this is simpler and exact).

A :class:`MetricsRegistry` namespaces them so one object threads through
a pipeline.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["Counter", "Gauge", "Summary", "MetricsRegistry"]


class Counter:
    """A monotonically increasing count."""

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError("Counter can only increase")
        self.value += amount


class Gauge:
    """Last observed value."""

    def __init__(self) -> None:
        self.value: float = math.nan

    def set(self, value: float) -> None:
        self.value = float(value)


class Summary:
    """Exact summary statistics over observed samples.

    The sample list is converted to a numpy array lazily and the array
    is cached — repeated ``mean``/``total``/``percentile`` reads between
    observations no longer pay an O(n) list->array conversion each call.
    ``observe`` invalidates the cache.
    """

    def __init__(self) -> None:
        self._samples: list[float] = []
        self._array: np.ndarray | None = None

    def observe(self, value: float) -> None:
        self._samples.append(float(value))
        self._array = None

    def reset(self) -> None:
        """Drop all observations (for reusing one Summary across runs)."""
        self._samples.clear()
        self._array = None

    def _as_array(self) -> np.ndarray:
        if self._array is None:
            self._array = np.asarray(self._samples, dtype=np.float64)
        return self._array

    @property
    def count(self) -> int:
        return len(self._samples)

    @property
    def mean(self) -> float:
        return float(self._as_array().mean()) if self._samples else math.nan

    @property
    def minimum(self) -> float:
        return min(self._samples) if self._samples else math.nan

    @property
    def maximum(self) -> float:
        return max(self._samples) if self._samples else math.nan

    @property
    def total(self) -> float:
        return float(self._as_array().sum()) if self._samples else 0.0

    def percentile(self, q: float) -> float:
        """q in [0, 100]."""
        if not self._samples:
            return math.nan
        return float(np.percentile(self._as_array(), q))

    def samples(self) -> list[float]:
        return list(self._samples)


class MetricsRegistry:
    """Namespace of counters/gauges/summaries, created on first use."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._summaries: dict[str, Summary] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def gauge(self, name: str) -> Gauge:
        return self._gauges.setdefault(name, Gauge())

    def summary(self, name: str) -> Summary:
        return self._summaries.setdefault(name, Summary())

    def snapshot(self) -> dict[str, float]:
        """Flat name->value view (summaries report their mean)."""
        out: dict[str, float] = {}
        out.update({k: float(c.value) for k, c in self._counters.items()})
        out.update({k: g.value for k, g in self._gauges.items()})
        out.update({f"{k}.mean": s.mean for k, s in self._summaries.items()})
        return out
