"""Brokers and the replicated log cluster.

:class:`LogCluster` owns topics; each topic partition has a replica set
spread across brokers with one leader.  Produce goes to the leader and is
synchronously replicated to in-sync followers (acks=all semantics, the
only mode we model — it keeps failover lossless and the simulation
simple).  When a broker fails, leadership moves to the first surviving
in-sync replica; when no replica survives, the partition is unavailable
and producers see :class:`BrokerDown`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.errors import (
    BrokerDown,
    ConfigError,
    LogError,
    PartitionNotFound,
    TopicExists,
    TopicNotFound,
)
from .partition import Partition
from .record import Record

__all__ = ["Broker", "TopicConfig", "PartitionState", "LogCluster"]


@dataclass
class Broker:
    """A storage node hosting partition replicas."""

    broker_id: int
    up: bool = True
    # (topic, partition-index) -> replica log
    replicas: dict[tuple[str, int], Partition] = field(default_factory=dict)

    def hosted(self) -> list[tuple[str, int]]:
        return sorted(self.replicas)


@dataclass(frozen=True)
class TopicConfig:
    """Topic creation parameters."""

    name: str
    partitions: int = 1
    replication: int = 1
    retention_bytes: int | None = None
    retention_seconds: float | None = None
    compacted: bool = False

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("topic name must be non-empty")
        if self.partitions < 1:
            raise ConfigError("partitions must be >= 1")
        if self.replication < 1:
            raise ConfigError("replication must be >= 1")


@dataclass
class PartitionState:
    """Metadata for one partition: replica placement and leadership."""

    topic: str
    index: int
    replica_brokers: list[int]
    leader: int
    isr: list[int]  # in-sync replicas, leader included


class LogCluster:
    """The control plane: topics, placement, leadership, produce/fetch."""

    def __init__(self, num_brokers: int = 3) -> None:
        if num_brokers < 1:
            raise ConfigError("need at least one broker")
        self.brokers: dict[int, Broker] = {
            i: Broker(broker_id=i) for i in range(num_brokers)
        }
        self._topics: dict[str, TopicConfig] = {}
        self._states: dict[tuple[str, int], PartitionState] = {}
        self._placement_cursor = 0
        # (topic, partition, producer_id) -> (epoch, last sequence, offset)
        self._producer_state: dict[tuple[str, int, int],
                                   tuple[int, int, int]] = {}

    # -- topic management ---------------------------------------------------

    def create_topic(self, config: TopicConfig) -> TopicConfig:
        if config.name in self._topics:
            raise TopicExists(config.name)
        if config.replication > len(self.brokers):
            raise ConfigError(
                f"replication {config.replication} exceeds broker count "
                f"{len(self.brokers)}"
            )
        self._topics[config.name] = config
        broker_ids = sorted(self.brokers)
        for p in range(config.partitions):
            # Round-robin placement with a rotating cursor spreads leaders.
            start = self._placement_cursor % len(broker_ids)
            self._placement_cursor += 1
            replicas = [broker_ids[(start + r) % len(broker_ids)]
                        for r in range(config.replication)]
            for b in replicas:
                self.brokers[b].replicas[(config.name, p)] = Partition(
                    config.name, p)
            self._states[(config.name, p)] = PartitionState(
                topic=config.name, index=p, replica_brokers=replicas,
                leader=replicas[0], isr=list(replicas),
            )
        return config

    def topic_config(self, topic: str) -> TopicConfig:
        try:
            return self._topics[topic]
        except KeyError:
            raise TopicNotFound(topic) from None

    def topics(self) -> list[str]:
        return sorted(self._topics)

    def partition_count(self, topic: str) -> int:
        return self.topic_config(topic).partitions

    def partition_state(self, topic: str, partition: int) -> PartitionState:
        self.topic_config(topic)
        try:
            return self._states[(topic, partition)]
        except KeyError:
            raise PartitionNotFound(f"{topic}[{partition}]") from None

    # -- leadership / failure -------------------------------------------------

    def fail_broker(self, broker_id: int) -> None:
        """Take a broker down and re-elect leaders from surviving ISRs."""
        broker = self._broker(broker_id)
        broker.up = False
        for state in self._states.values():
            if broker_id in state.isr:
                state.isr = [b for b in state.isr if b != broker_id]
            if state.leader == broker_id:
                state.leader = state.isr[0] if state.isr else -1

    def recover_broker(self, broker_id: int) -> None:
        """Bring a broker back; it catches up from leaders and rejoins ISRs."""
        broker = self._broker(broker_id)
        broker.up = True
        for (topic, index), state in self._states.items():
            if broker_id not in state.replica_brokers:
                continue
            if state.leader == -1:
                # Whole partition was offline; the recovering replica's log
                # is authoritative again.
                state.leader = broker_id
                state.isr = [broker_id]
                continue
            if broker_id not in state.isr:
                # Catch up by cloning the leader replica's retained state —
                # the simulation shortcut for a follower fetch loop.
                leader_log = self.brokers[state.leader].replicas[(topic, index)]
                broker.replicas[(topic, index)] = leader_log.clone()
                state.isr.append(broker_id)

    def _broker(self, broker_id: int) -> Broker:
        try:
            return self.brokers[broker_id]
        except KeyError:
            raise LogError(f"unknown broker {broker_id}") from None

    # -- data plane -------------------------------------------------------------

    def leader_partition(self, topic: str, partition: int) -> Partition:
        state = self.partition_state(topic, partition)
        if state.leader == -1 or not self.brokers[state.leader].up:
            raise BrokerDown(f"{topic}[{partition}] has no live leader")
        return self.brokers[state.leader].replicas[(topic, partition)]

    def append(self, topic: str, partition: int, record: Record) -> int:
        """Leader append + synchronous ISR replication; returns offset."""
        state = self.partition_state(topic, partition)
        leader_log = self.leader_partition(topic, partition)
        offset = leader_log.append(record)
        for b in state.isr:
            if b == state.leader:
                continue
            follower = self.brokers[b]
            if follower.up:
                follower.replicas[(topic, partition)].append(record)
        return offset

    def append_idempotent(self, topic: str, partition: int, record: Record,
                          producer_id: int, sequence: int,
                          epoch: int = 0) -> int:
        """Deduplicating append: (producer, epoch, sequence) seen before on
        the partition returns the original offset; a gap is an error.

        Epochs fence zombie producers: a bumped epoch resets the sequence
        space, and appends from an older epoch are rejected outright.
        """
        key = (topic, partition, producer_id)
        last_epoch, last_seq, last_offset = self._producer_state.get(
            key, (-1, -1, -1))
        if epoch < last_epoch:
            raise LogError(
                f"fenced: producer {producer_id} epoch {epoch} is older "
                f"than {last_epoch} on {topic}[{partition}]")
        if epoch > last_epoch:
            # New incarnation: its sequence numbering starts over.
            last_seq, last_offset = -1, -1
        if sequence <= last_seq:
            if sequence == last_seq:
                return last_offset  # the retry case: already appended
            raise LogError(
                f"stale sequence {sequence} (last {last_seq}) from "
                f"producer {producer_id} on {topic}[{partition}]")
        if sequence != last_seq + 1:
            raise LogError(
                f"sequence gap from producer {producer_id} on "
                f"{topic}[{partition}]: got {sequence}, expected "
                f"{last_seq + 1}")
        offset = self.append(topic, partition, record)
        self._producer_state[key] = (epoch, sequence, offset)
        return offset

    def read(self, topic: str, partition: int, offset: int,
             max_records: int = 512):
        """Fetch from the leader replica."""
        return self.leader_partition(topic, partition).read(offset, max_records)

    def end_offset(self, topic: str, partition: int) -> int:
        return self.leader_partition(topic, partition).end_offset

    def base_offset(self, topic: str, partition: int) -> int:
        return self.leader_partition(topic, partition).base_offset

    # -- housekeeping -------------------------------------------------------------

    def run_retention(self, now: float) -> int:
        """Apply every topic's retention policy; returns records dropped."""
        dropped = 0
        for (topic, index), state in self._states.items():
            config = self._topics[topic]
            min_ts = (now - config.retention_seconds
                      if config.retention_seconds is not None else None)
            for b in state.replica_brokers:
                broker = self.brokers[b]
                if not broker.up:
                    continue
                log = broker.replicas[(topic, index)]
                n = log.enforce_retention(max_bytes=config.retention_bytes,
                                          min_timestamp=min_ts)
                if b == state.leader:
                    dropped += n
        return dropped

    def run_compaction(self) -> int:
        """Compact all compacted topics; returns records removed on leaders."""
        removed = 0
        for (topic, index), state in self._states.items():
            if not self._topics[topic].compacted:
                continue
            for b in state.replica_brokers:
                broker = self.brokers[b]
                if not broker.up:
                    continue
                n = broker.replicas[(topic, index)].compact()
                if b == state.leader:
                    removed += n
        return removed
