"""Integration: location privacy through the whole pipeline.

Users' mobility traces are ingested as personal records: the
PrivacyGuard pseudonymizes the user ids and perturbs the coordinates
*before* anything reaches the event log.  An adversary who obtains the
logged (defended) database and knows a few true points of a victim must
do measurably worse than against an undefended log — the Section 4.3
defence validated end to end rather than in isolation.
"""

import numpy as np

from repro.core import ARBigDataPipeline, PipelineConfig, PrivacyConfig
from repro.datagen import MobilityConfig, generate_population
from repro.eventlog import ConsumerGroup
from repro.privacy import TraceDatabase
from repro.util.rng import make_rng


def _ingest_and_extract(location_mode, geo_epsilon, traces, seed):
    """Run traces through the guarded pipeline, rebuild the adversary's
    database from what actually landed in the log."""
    pipeline = ARBigDataPipeline(PipelineConfig(
        seed=seed, privacy=PrivacyConfig(location_mode=location_mode,
                                         geo_epsilon=geo_epsilon)))
    pipeline.create_topic("checkins", partitions=4)
    for trace in traces:
        for t, x, y in zip(trace.ts, trace.xs, trace.ys):
            pipeline.ingest("checkins",
                            {"user": trace.user, "x": float(x),
                             "y": float(y)},
                            key=trace.user, timestamp=float(t),
                            personal=True)
    rows = ConsumerGroup(pipeline.log, "checkins",
                         "adversary").join("m").poll(10**6)
    per_user: dict[str, list[tuple[float, float, float]]] = {}
    for row in rows:
        per_user.setdefault(row.value["user"], []).append(
            (row.timestamp, row.value["x"], row.value["y"]))
    database = TraceDatabase(cell_m=250.0, bucket_s=600.0)
    pseudonym_of = {}
    guard = pipeline.guard
    for trace in traces:
        pseudonym_of[trace.user] = guard.pseudonymize(trace.user)
    for user, points in per_user.items():
        points.sort()
        database.add_trace(user,
                           np.array([p[1] for p in points]),
                           np.array([p[2] for p in points]),
                           np.array([p[0] for p in points]))
    return database, pseudonym_of


class TestGuardedPipelineResistsReidentification:
    def test_guard_lowers_attack_success(self):
        rng = make_rng(200)
        traces = generate_population(
            30, rng, MobilityConfig(steps=120, area_m=4000.0))
        # The adversary's side knowledge: the TRUE traces.
        truth = TraceDatabase(cell_m=250.0, bucket_s=600.0)
        for trace in traces:
            truth.add_trace(trace.user, trace.xs, trace.ys, trace.ts)

        def attack(location_mode, geo_epsilon, seed):
            database, pseudonym_of = _ingest_and_extract(
                location_mode, geo_epsilon, traces, seed)
            # Count victims whose true points match exactly their own
            # pseudonymous trace in the logged database.
            attack_rng = make_rng(300)
            unique = 0
            for trace in traces:
                true_points = sorted(truth.points_of(trace.user))
                idx = attack_rng.choice(len(true_points), size=4,
                                        replace=False)
                known = {true_points[i] for i in idx}
                matches = database.candidates(known)
                if matches == [pseudonym_of[trace.user]]:
                    unique += 1
            return unique / len(traces)

        undefended = attack("none", 0.01, seed=201)
        defended = attack("laplace", 0.003, seed=202)  # ~600 m noise
        assert undefended > 0.8  # pseudonyms alone do not protect
        assert defended < undefended / 2

    def test_pseudonyms_consistent_within_run(self):
        rng = make_rng(210)
        traces = generate_population(
            5, rng, MobilityConfig(steps=30, area_m=2000.0))
        database, pseudonym_of = _ingest_and_extract("none", 0.01,
                                                     traces, seed=211)
        # Every user's records landed under exactly one pseudonym.
        assert len(database) == 5
        assert set(database.users()) == set(pseudonym_of.values())
