"""Experiment T5 (Section 4.3, mobility re-identification).

Claims under test: "users' identities and their movement patterns have a
close correlation [Gonzalez et al.]" — a handful of known
spatio-temporal points re-identifies most users; location defences
(k-anonymity cloaking granularity, geo-indistinguishability noise)
reduce the rate at a measurable utility cost.

Output: re-identification rate vs number of known points, undefended vs
planar-Laplace defended (two strengths) and vs coarser cloaking cells.
"""

import numpy as np

from repro.datagen import MobilityConfig, generate_population
from repro.privacy import PlanarLaplace, TraceDatabase
from repro.util.rng import make_rng

from tableprint import print_table

KNOWN_POINTS = [1, 2, 4, 6, 10]
USERS = 60


def _build_databases():
    rng = make_rng(8)
    traces = generate_population(USERS, rng, MobilityConfig(
        steps=180, area_m=5_000.0))
    truth = TraceDatabase(cell_m=250.0, bucket_s=600.0)
    coarse = TraceDatabase(cell_m=1_000.0, bucket_s=3_600.0)
    weak_noise = TraceDatabase(cell_m=250.0, bucket_s=600.0)
    strong_noise = TraceDatabase(cell_m=250.0, bucket_s=600.0)
    weak = PlanarLaplace(epsilon_per_m=0.01, rng=rng)  # ~200 m noise
    strong = PlanarLaplace(epsilon_per_m=0.002, rng=rng)  # ~1 km noise
    for trace in traces:
        truth.add_trace(trace.user, trace.xs, trace.ys, trace.ts)
        coarse.add_trace(trace.user, trace.xs, trace.ys, trace.ts)
        points = np.column_stack([trace.xs, trace.ys])
        noisy_weak = weak.perturb_many(points)
        noisy_strong = strong.perturb_many(points)
        weak_noise.add_trace(trace.user, noisy_weak[:, 0],
                             noisy_weak[:, 1], trace.ts)
        strong_noise.add_trace(trace.user, noisy_strong[:, 0],
                               noisy_strong[:, 1], trace.ts)
    return truth, coarse, weak_noise, strong_noise, weak, strong


def run_experiment():
    truth, coarse, weak_noise, strong_noise, weak, strong = \
        _build_databases()
    rows = []
    for p in KNOWN_POINTS:
        raw = truth.attack(make_rng(100 + p), known_points=p)
        cloaked = coarse.attack(make_rng(100 + p), known_points=p,
                                observed=coarse)
        defended_weak = weak_noise.attack(make_rng(100 + p),
                                          known_points=p, observed=truth)
        defended_strong = strong_noise.attack(make_rng(100 + p),
                                              known_points=p,
                                              observed=truth)
        rows.append([p, raw.reidentification_rate,
                     cloaked.reidentification_rate,
                     defended_weak.reidentification_rate,
                     defended_strong.reidentification_rate])
    utility = [round(weak.expected_displacement_m),
               round(strong.expected_displacement_m)]
    return rows, utility


def bench_t5_reidentification(benchmark):
    rows, utility = benchmark.pedantic(run_experiment, rounds=1,
                                       iterations=1)
    print_table(
        "T5  Sec 4.3: mobility re-identification rate vs known points",
        ["known points", "undefended (250m/10min)",
         "coarse cells (1km/1h)", f"geo-ind eps=0.01 (~{utility[0]}m)",
         f"geo-ind eps=0.002 (~{utility[1]}m)"],
        rows,
        note="the Gonzalez et al. claim: a handful of points uniquely "
             "identifies most users; defences trade it against location "
             "utility")
    raw = {r[0]: r[1] for r in rows}
    # A handful of points re-identifies the vast majority.
    assert raw[4] > 0.8
    assert raw[10] > 0.9
    # Rates grow with known points for the undefended database.
    rates = [r[1] for r in rows]
    assert all(b >= a - 0.05 for a, b in zip(rates, rates[1:]))
    # Both defences cut re-identification at 4 points; stronger noise
    # cuts it more.
    for r in rows:
        if r[0] == 4:
            assert r[3] < r[1]
            assert r[4] <= r[3]
            assert r[4] < 0.3
        # Coarser cells never make the attack easier.
        assert r[2] <= r[1] + 0.05
