"""Fault plans and the injector's counting/firing semantics."""

import pytest

from repro.chaos import (
    SITE_APPEND,
    SITE_FETCH,
    SITE_OFFLOAD,
    SITE_OPERATOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.streaming.element import Element
from repro.streaming.operators import MapOperator
from repro.util.errors import ChaosError, OperatorCrash, TaskTimeout


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ChaosError):
            FaultSpec("meteor_strike", SITE_OPERATOR, at=0)

    def test_kind_site_mismatch_rejected(self):
        with pytest.raises(ChaosError):
            FaultSpec("operator_crash", SITE_APPEND, at=0)
        with pytest.raises(ChaosError):
            FaultSpec("duplicate_delivery", SITE_APPEND, at=0)

    def test_negative_at_and_zero_count_rejected(self):
        with pytest.raises(ChaosError):
            FaultSpec("torn_append", SITE_APPEND, at=-1)
        with pytest.raises(ChaosError):
            FaultSpec("partition_unavailable", SITE_APPEND, at=0, count=0)

    def test_broker_down_needs_broker_id(self):
        with pytest.raises(ChaosError):
            FaultSpec("broker_down", SITE_APPEND, at=0)
        spec = FaultSpec("broker_down", SITE_APPEND, at=2, count=3, param=1)
        assert spec.end == 5

    def test_one_shot_classification(self):
        assert FaultSpec("operator_crash", SITE_OPERATOR, at=0).one_shot()
        assert FaultSpec("torn_append", SITE_APPEND, at=0).one_shot()
        assert not FaultSpec("partition_unavailable", SITE_APPEND,
                             at=0).one_shot()


class TestFaultPlanRandom:
    def test_same_seed_same_plan(self):
        kwargs = dict(horizon=100, operators=("a", "b"),
                      tiers=("edge", "cloud"), brokers=(0, 1),
                      crashes=3, broker_outages=1, tier_dropouts=1)
        assert (FaultPlan.random(7, **kwargs).specs
                == FaultPlan.random(7, **kwargs).specs)

    def test_different_seed_different_plan(self):
        kwargs = dict(horizon=100, operators=("a", "b"), crashes=3)
        assert (FaultPlan.random(1, **kwargs).specs
                != FaultPlan.random(2, **kwargs).specs)

    def test_empty_pools_skip_categories(self):
        plan = FaultPlan.random(0, horizon=50, crashes=5, broker_outages=5,
                                tier_dropouts=5)
        kinds = {s.kind for s in plan.specs}
        assert "operator_crash" not in kinds  # no operators given
        assert "broker_down" not in kinds  # no brokers given
        assert "tier_dropout" not in kinds  # no tiers given
        assert "torn_append" in kinds

    def test_horizon_bounds_every_at(self):
        plan = FaultPlan.random(9, horizon=30, operators=("x",), crashes=4)
        assert all(0 <= s.at < 30 for s in plan.specs)

    def test_bad_horizon(self):
        with pytest.raises(ChaosError):
            FaultPlan.random(0, horizon=0)


def _op(name="m"):
    return MapOperator(name=name, fn=lambda v: v)


def _items(n):
    return [Element(value=i, timestamp=float(i)) for i in range(n)]


class TestInjectorCounting:
    def test_counters_advance_per_item(self):
        injector = FaultInjector(FaultPlan(specs=()))
        op = _op()
        injector.intercept_batch(op, _items(5), op.process_batch)
        assert injector.count(SITE_OPERATOR, "m") == 5
        injector.before_item(op)
        assert injector.count(SITE_OPERATOR, "m") == 6

    def test_crash_fires_at_scheduled_index_and_disarms(self):
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=7, target="m"),))
        injector = FaultInjector(plan)
        op = _op()
        processed = []
        with pytest.raises(OperatorCrash):
            injector.intercept_batch(op, _items(10),
                                     lambda batch: processed.extend(batch))
        # Prefix [0, 7) ran for real; the counter stands at the crash.
        assert len(processed) == 7
        assert injector.count(SITE_OPERATOR, "m") == 7
        # One-shot: replaying the same items does not re-fire.
        out = injector.intercept_batch(op, _items(10), op.process_batch)
        assert len(out) == 10
        assert [e.as_tuple()[:4] for e in injector.trace] == [
            ("operator_crash", SITE_OPERATOR, "m", 7)]

    def test_per_item_mode_fires_at_same_index(self):
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=3, target="m"),))
        injector = FaultInjector(plan)
        op = _op()
        fired_at = None
        for i in range(10):
            try:
                injector.before_item(op)
            except OperatorCrash:
                fired_at = i
                break
        assert fired_at == 3

    def test_untargeted_crash_matches_any_operator(self):
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=0),))
        injector = FaultInjector(plan)
        with pytest.raises(OperatorCrash):
            injector.before_item(_op("whatever"))

    def test_window_kind_fires_across_whole_window(self):
        plan = FaultPlan(specs=(
            FaultSpec("task_timeout", SITE_OFFLOAD, at=1, count=2,
                      target="edge"),))
        injector = FaultInjector(plan)
        injector.before_offload("p", "edge")  # occurrence 0: passes
        for _ in range(2):  # occurrences 1, 2: inside the window
            with pytest.raises(TaskTimeout):
                injector.before_offload("p", "edge")
        injector.before_offload("p", "edge")  # occurrence 3: past it

    def test_trace_reproducibility_same_plan(self):
        def run():
            plan = FaultPlan(specs=(
                FaultSpec("operator_crash", SITE_OPERATOR, at=4,
                          target="m"),
                FaultSpec("task_timeout", SITE_OFFLOAD, at=1),))
            injector = FaultInjector(plan)
            op = _op()
            try:
                injector.intercept_batch(op, _items(8), op.process_batch)
            except OperatorCrash:
                pass
            for _ in range(3):
                try:
                    injector.before_offload("p", "edge")
                except TaskTimeout:
                    pass
            return injector.trace_tuples()

        assert run() == run()

    def test_fetch_duplicate_returns_rewind_depth(self):
        plan = FaultPlan(specs=(
            FaultSpec("duplicate_delivery", SITE_FETCH, at=1, param=3),))
        injector = FaultInjector(plan)
        assert injector.before_fetch("t", 0) == 0
        assert injector.before_fetch("t", 0) == 3
