"""Seeded randomness plumbing.

All stochastic behaviour in the library flows through
``numpy.random.Generator`` objects created here.  :func:`make_rng` builds
a root generator from an integer seed; :func:`spawn` derives independent
child streams for subsystems so that adding randomness to one module
never perturbs another (a classic reproducibility trap in simulators).
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn", "RngRegistry"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a root generator.  ``None`` gives OS entropy (discouraged)."""
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int = 1) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators."""
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]


class RngRegistry:
    """Named, lazily created child streams off one root seed.

    ``registry.get("gps-noise")`` always returns the same generator for a
    given name, and different names get independent streams.  Names are
    hashed into the seed so the mapping is stable across runs and across
    registration order.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        if name not in self._streams:
            # Stable 64-bit hash of the name, mixed with the root seed.
            h = 1469598103934665603  # FNV-1a offset basis
            for byte in name.encode("utf-8"):
                h ^= byte
                h = (h * 1099511628211) % (1 << 64)
            self._streams[name] = np.random.default_rng((self._seed, h))
        return self._streams[name]

    @property
    def seed(self) -> int:
        return self._seed
