"""Network link and path latency model.

The model the offloading experiments (Sec 4.1) rest on: transferring
``size_bytes`` over a link costs

    propagation + size / bandwidth + jitter

with optional packet loss triggering whole-transfer retries (a coarse but
standard abstraction for request/response AR offloading traffic).

:class:`LinkSpec` is the static description; :class:`Link` adds the
stochastic sampling given an RNG.  Presets for typical tiers (WiFi, LTE,
5G, LAN, WAN) keep benchmark parameters honest and in one place.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError, NetworkError

__all__ = ["LinkSpec", "Link", "LINK_PRESETS"]


@dataclass(frozen=True)
class LinkSpec:
    """Static link parameters.

    latency_s        one-way propagation delay in seconds
    bandwidth_bps    bytes per second (not bits; explicit to avoid x8 bugs)
    jitter_s         std-dev of zero-mean Gaussian latency noise
    loss_rate        probability a transfer attempt fails entirely
    """

    latency_s: float
    bandwidth_bps: float
    jitter_s: float = 0.0
    loss_rate: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_s < 0 or self.jitter_s < 0:
            raise ConfigError("latency and jitter must be non-negative")
        if self.bandwidth_bps <= 0:
            raise ConfigError("bandwidth must be positive")
        if not 0.0 <= self.loss_rate < 1.0:
            raise ConfigError("loss_rate must be in [0, 1)")

    def nominal_transfer_time(self, size_bytes: float) -> float:
        """Deterministic transfer time: propagation + serialization."""
        if size_bytes < 0:
            raise ConfigError("size_bytes must be non-negative")
        return self.latency_s + size_bytes / self.bandwidth_bps


# Bandwidths in bytes/s.  One-way latencies.
LINK_PRESETS: dict[str, LinkSpec] = {
    "loopback": LinkSpec(latency_s=1e-6, bandwidth_bps=10e9, jitter_s=0.0),
    "lan": LinkSpec(latency_s=0.2e-3, bandwidth_bps=125e6, jitter_s=0.05e-3),
    "wifi": LinkSpec(latency_s=2e-3, bandwidth_bps=25e6, jitter_s=1e-3,
                     loss_rate=0.005),
    "lte": LinkSpec(latency_s=35e-3, bandwidth_bps=4e6, jitter_s=8e-3,
                    loss_rate=0.01),
    "5g": LinkSpec(latency_s=8e-3, bandwidth_bps=40e6, jitter_s=2e-3,
                   loss_rate=0.003),
    "wan": LinkSpec(latency_s=50e-3, bandwidth_bps=12.5e6, jitter_s=5e-3,
                    loss_rate=0.002),
    # metro fibre between edge regions of the same city: far below WAN
    # latency, the reason edge placement wins the geo benchmark
    "metro": LinkSpec(latency_s=4e-3, bandwidth_bps=60e6, jitter_s=0.8e-3,
                      loss_rate=0.001),
}


class Link:
    """A sampled link: adds jitter and loss/retry behaviour to a spec."""

    def __init__(self, spec: LinkSpec, rng: np.random.Generator,
                 max_retries: int = 5) -> None:
        self.spec = spec
        self._rng = rng
        self.max_retries = max_retries
        self.transfers = 0
        self.retries = 0

    def transfer_time(self, size_bytes: float) -> float:
        """Sample the wall time to move ``size_bytes`` across the link.

        Lost attempts are retried up to ``max_retries`` times; each failed
        attempt still costs a full timeout-equivalent (one nominal
        transfer time), matching request/response semantics.  Raises
        :class:`NetworkError` when every attempt is lost.
        """
        self.transfers += 1
        total = 0.0
        for _attempt in range(self.max_retries + 1):
            jitter = abs(self._rng.normal(0.0, self.spec.jitter_s)) \
                if self.spec.jitter_s > 0 else 0.0
            attempt_time = self.spec.nominal_transfer_time(size_bytes) + jitter
            total += attempt_time
            lost = (self.spec.loss_rate > 0
                    and self._rng.random() < self.spec.loss_rate)
            if not lost:
                return total
            self.retries += 1
        raise NetworkError(
            f"transfer of {size_bytes} bytes lost after "
            f"{self.max_retries + 1} attempts"
        )

    def round_trip_time(self, request_bytes: float, response_bytes: float) -> float:
        """Request up, response down — two directional transfers."""
        return self.transfer_time(request_bytes) + self.transfer_time(response_bytes)
