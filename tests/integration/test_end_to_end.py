"""Integration tests: cross-substrate flows that mirror the paper's
architecture diagrams end to end."""

import numpy as np
import pytest

from repro.context.entities import SemanticEntity
from repro.core import ARBigDataPipeline, PipelineConfig, PrivacyConfig
from repro.datagen import WindField, Building
from repro.eventlog import ConsumerGroup
from repro.render.occlusion import BoxOccluder, OcclusionWorld
from repro.streaming.connectors import log_source
from repro.streaming.graph import JobBuilder
from repro.streaming.runtime import Executor
from repro.streaming.windows import TumblingWindows
from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    PlanarTarget,
    PlanarTracker,
    look_at,
    make_texture,
    render_plane,
)

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


class TestSensorToOverlayFlow:
    """sensors -> log -> window job -> interpretation -> session render."""

    def test_full_loop(self):
        pipeline = ARBigDataPipeline(PipelineConfig(seed=11))
        pipeline.create_topic("wind")
        field = WindField([Building("tower", 50, 50, 10, 40)])
        rng = make_rng(11)
        for sample in field.stream_samples(rng, 400, (0, 0, 100, 100)):
            pipeline.ingest("wind", sample, key=sample["sensor"],
                            timestamp=sample["t"])
        # Windowed mean wind speed per sensor.
        results = pipeline.windowed_aggregate(
            "wind", key_fn=lambda v: v["sensor"],
            value_fn=lambda v: float(np.hypot(v["vx"], v["vy"])),
            window_s=1.0, aggregate="mean")
        assert results
        # Sensors become entities at their (first-seen) positions.
        seen = set()
        group = ConsumerGroup(pipeline.log, "wind", "reg")
        for row in group.join("m").poll(10_000):
            name = row.value["sensor"]
            if name not in seen:
                seen.add(name)
                pipeline.add_entity(SemanticEntity(
                    entity_id=name, entity_type="sensor",
                    position=np.array([row.value["x"], row.value["y"],
                                       10.0]),
                    name=name))
        pipeline.interpreter.register_default("wind-speed")
        bound = pipeline.interpret_and_publish([
            {"tag": "wind-speed", "subject": r.key,
             "value": f"{r.value:.1f} m/s", "priority": r.value}
            for r in results])
        assert bound.coverage == 1.0
        session = pipeline.open_session("worker-1")
        session.sync()
        pose = look_at(eye=[50.0, -40.0, 20.0], target=[50.0, 50.0, 10.0],
                       up=np.array([0.0, 0.0, 1.0]))
        frame = session.render(pose)
        assert frame.drawn > 0
        assert frame.layout.overlapping == 0  # decluttered by default


class TestVisionToOffloadFlow:
    """camera frames -> tracker -> workload profile -> offload pricing."""

    def test_tracked_frames_price_offload(self):
        rng = make_rng(12)
        pipeline = ARBigDataPipeline(PipelineConfig(seed=12))
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = PlanarTracker(target, INTR, rng)
        for i in range(3):
            pose = look_at(eye=[0.2 + 0.02 * i, 0.25, -0.8],
                           target=[0.25, 0.25, 0.0])
            frame = render_plane(target, INTR, pose, rng=rng,
                                 noise_sigma=0.01)
            tracker.track(frame)
            timing = pipeline.timeliness.admit_frame(tracker.last_profile)
            assert timing.latency_s > 0
        report = pipeline.timeliness.report
        assert report.frames == 3
        assert report.mean_latency_s < 1.0


class TestPrivacyBoundaryFlow:
    """personal streams pass the guard before analytics sees them."""

    def test_guard_protects_before_log(self):
        pipeline = ARBigDataPipeline(PipelineConfig(
            seed=13,
            privacy=PrivacyConfig(location_mode="laplace",
                                  geo_epsilon=0.02)))
        pipeline.create_topic("checkins")
        true_positions = {}
        for i in range(50):
            user = f"user-{i % 5}"
            x, y = float(10 * i % 97), float(7 * i % 89)
            true_positions.setdefault(user, []).append((x, y))
            pipeline.ingest("checkins", {"user": user, "x": x, "y": y},
                            key=user, timestamp=float(i), personal=True)
        rows = ConsumerGroup(pipeline.log, "checkins",
                             "g").join("m").poll(1000)
        assert len(rows) == 50
        for row in rows:
            assert row.value["user"].startswith("anon-")
        # Aggregate release passes the budget accountant.
        released = pipeline.guard.release_aggregate("checkin-count", 50.0)
        assert released is not None
        assert pipeline.guard.locations_processed == 50


class TestLogStreamWindowJoin:
    """two topics joined by key within a time interval."""

    def test_gaze_purchase_join(self):
        pipeline = ARBigDataPipeline(PipelineConfig(seed=14))
        pipeline.create_topic("gaze")
        pipeline.create_topic("purchase")
        for i in range(20):
            pipeline.ingest("gaze", {"user": f"u{i % 4}", "item": f"p{i}"},
                            key=f"u{i % 4}", timestamp=float(i))
        for i in range(0, 20, 2):
            pipeline.ingest("purchase",
                            {"user": f"u{i % 4}", "item": f"p{i}"},
                            key=f"u{i % 4}", timestamp=float(i) + 0.5)
        builder = JobBuilder("join-job")
        gaze = (builder.source("gaze", log_source(pipeline.log, "gaze"))
                       .key_by(lambda v: v["user"]))
        purchase = (builder.source("purchase",
                                   log_source(pipeline.log, "purchase"))
                           .key_by(lambda v: v["user"]))
        (gaze.join(purchase, lower=0.0, upper=1.0,
                   project=lambda g, p: (g["item"], p["item"]))
             .sink("out"))
        sinks = Executor(builder.build()).run()
        # Every purchase at t+0.5 matches gazes in [t-0.5, t+0.5] for the
        # same user: the gaze at t always; t+1 gaze has different parity
        # user except when (i+1)%4 == i%4 (never). So exactly 10 matches.
        assert len(sinks["out"]) == 10
        assert all(g == p for g, p in sinks["out"].values)


class TestMultiUserConsistency:
    """Figure 4: N users sharing one dataset, probing independently."""

    def test_sessions_diverge_only_by_probe(self):
        pipeline = ARBigDataPipeline(PipelineConfig(seed=15))
        for i in range(10):
            pipeline.add_entity(SemanticEntity(
                entity_id=f"e{i}", entity_type="blob",
                position=np.array([float(i - 5), 0.0, 6.0]),
                name=f"e{i}"))
        pipeline.interpreter.register_default("blob")
        pipeline.interpret_and_publish([
            {"tag": "blob", "subject": f"e{i}",
             "value": i, "priority": float(i)} for i in range(10)])
        users = [pipeline.open_session(f"u{i}") for i in range(4)]
        for session in users:
            session.sync()
        from repro.core import Probe
        users[0].open_probe(Probe(
            name="evens",
            predicate=lambda a: int(a.annotation_id.split("e")[-1]) % 2
            == 0))
        visible_0 = users[0].visible_annotation_ids()
        visible_1 = users[1].visible_annotation_ids()
        assert len(visible_0) == 5
        assert len(visible_1) == 10
        # New publishes raise staleness for everyone until they sync.
        pipeline.interpret_and_publish([
            {"tag": "blob", "subject": "e0", "value": 99,
             "priority": 1.0}])
        assert all(s.staleness == 1 for s in users)


class TestFailureRecoveryFlow:
    """broker failure mid-stream does not lose acknowledged data."""

    def test_log_failover_then_analytics(self):
        pipeline = ARBigDataPipeline(PipelineConfig(seed=16))
        pipeline.create_topic("events")
        for i in range(50):
            pipeline.ingest("events", {"k": i % 2, "v": float(i)},
                            key=str(i % 2), timestamp=float(i))
        pipeline.log.fail_broker(0)
        for i in range(50, 100):
            pipeline.ingest("events", {"k": i % 2, "v": float(i)},
                            key=str(i % 2), timestamp=float(i))
        results = pipeline.windowed_aggregate(
            "events", key_fn=lambda v: v["k"],
            value_fn=lambda v: v["v"], window_s=1000.0,
            aggregate="count")
        assert sum(r.value for r in results) == 100
