"""Complex event processing: keyed sequence patterns.

Single-signal thresholds miss compound conditions ("tachycardia AND
falling blood pressure within five minutes" means something very
different from either alone).  :class:`PatternOperator` matches an
ordered sequence of predicates per key within a time window, Flink-CEP
style with skip-till-next-match semantics: intervening non-matching
elements are ignored, each element advances at most one active partial
match, and a completed match emits a :class:`PatternMatch` and resets
that key's state.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Sequence

from ..util.errors import StreamError
from .element import Element, StreamItem, Watermark
from .operators import Operator

__all__ = ["PatternStep", "PatternMatch", "PatternOperator"]


@dataclass(frozen=True)
class PatternStep:
    """One stage of the sequence."""

    name: str
    predicate: Callable[[Any], bool]


@dataclass(frozen=True)
class PatternMatch:
    """A completed sequence for one key."""

    key: Any
    events: tuple[Any, ...]
    timestamps: tuple[float, ...]

    @property
    def span_s(self) -> float:
        return self.timestamps[-1] - self.timestamps[0]


class _Partial:
    __slots__ = ("events", "timestamps")

    def __init__(self) -> None:
        self.events: list[Any] = []
        self.timestamps: list[float] = []


class PatternOperator(Operator):
    """Keyed sequence matching within a time window."""

    requires_shuffle = True

    def __init__(self, name: str, steps: Sequence[PatternStep],
                 within_s: float) -> None:
        super().__init__(name)
        if len(steps) < 2:
            raise StreamError("a pattern needs at least two steps")
        if within_s <= 0:
            raise StreamError("within_s must be positive")
        names = [s.name for s in steps]
        if len(set(names)) != len(names):
            raise StreamError("pattern step names must be unique")
        self.steps = list(steps)
        self.within_s = within_s
        self._partials: dict[Any, _Partial] = {}
        self.matches = 0

    def process(self, element: Element) -> list[StreamItem]:
        if element.key is None:
            raise StreamError(
                f"pattern {self.name!r} requires keyed input")
        partial = self._partials.get(element.key)
        if partial is None:
            partial = _Partial()
            self._partials[element.key] = partial
        # Expire a stale partial before extending it.
        if (partial.timestamps
                and element.timestamp - partial.timestamps[0]
                > self.within_s):
            # Restart: the head of the window slid past; try to re-seed
            # with this element as a fresh first step.
            partial.events.clear()
            partial.timestamps.clear()
        step = self.steps[len(partial.events)]
        if not step.predicate(element.value):
            return []  # skip-till-next-match: ignore non-matching events
        partial.events.append(element.value)
        partial.timestamps.append(element.timestamp)
        if len(partial.events) < len(self.steps):
            return []
        match = PatternMatch(key=element.key,
                             events=tuple(partial.events),
                             timestamps=tuple(partial.timestamps))
        del self._partials[element.key]
        self.matches += 1
        return [Element(value=match, timestamp=element.timestamp,
                        key=element.key)]

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        # Garbage-collect partials that can no longer complete.
        for key in list(self._partials):
            partial = self._partials[key]
            if (partial.timestamps
                    and watermark.timestamp - partial.timestamps[0]
                    > self.within_s):
                del self._partials[key]
        return [watermark]

    def snapshot(self) -> Any:
        return {key: (list(p.events), list(p.timestamps))
                for key, p in self._partials.items()}

    def restore(self, snapshot: Any) -> None:
        self._partials = {}
        for key, (events, timestamps) in (snapshot or {}).items():
            partial = _Partial()
            partial.events = list(events)
            partial.timestamps = list(timestamps)
            self._partials[key] = partial

    # -- key-grouped checkpoints (parallel plans) ----------------------------

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        from .shuffle import group_by_key_group
        return group_by_key_group(self.snapshot(), num_key_groups)

    def scalar_snapshot(self) -> Any:
        return {"matches": self.matches}

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        from .shuffle import merge_key_groups
        self.restore(merge_key_groups(groups.values()))
        if len(scalars) == 1:
            self.matches = scalars[0]["matches"]
        else:
            self.matches = sum(s["matches"] for s in scalars) \
                if primary else 0
