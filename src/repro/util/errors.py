"""Exception hierarchy shared by every repro subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single base type at API boundaries.  Subsystem-specific bases
(:class:`LogError`, :class:`StreamError`, ...) let tests assert on the
failing layer precisely.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """Invalid configuration value or inconsistent parameter combination."""


class MetricsError(ReproError):
    """Metric misuse: e.g. one name registered as two different kinds."""


class ClockError(ReproError):
    """Attempt to move simulated time backwards or misuse the clock."""


class SimulationError(ReproError):
    """Discrete-event simulation kernel misuse (e.g. scheduling in past)."""


class NetworkError(SimulationError):
    """Simulated network failure: unreachable node, dropped message."""


class LogError(ReproError):
    """Base class for event-log (Kafka-like substrate) errors."""


class TopicNotFound(LogError):
    """Produce/consume addressed to a topic that does not exist."""


class TopicExists(LogError):
    """Topic creation collided with an existing topic."""


class PartitionNotFound(LogError):
    """Partition index out of range for the topic."""


class OffsetOutOfRange(LogError):
    """Consumer seeked to an offset outside the retained range."""


class BrokerDown(LogError):
    """Operation routed to a broker that is currently failed."""


class NotLeader(LogError):
    """Write addressed to a replica that is not the partition leader."""


class RetryExhausted(ReproError):
    """A retried call gave up: attempts or deadline budget ran out.

    ``last_error`` carries the final underlying failure (also chained as
    ``__cause__``), so callers can distinguish *why* the retries failed.
    """

    def __init__(self, message: str, last_error: Exception | None = None):
        super().__init__(message)
        self.last_error = last_error


class CircuitOpen(ReproError):
    """A circuit breaker refused the call without attempting it."""


class StreamError(ReproError):
    """Base class for streaming-engine errors."""


class JobGraphError(StreamError):
    """Malformed dataflow graph (cycle, missing source, type clash)."""


class CheckpointError(StreamError):
    """Checkpoint could not be taken or restored."""


class BackpressureOverflow(StreamError):
    """A bounded channel overflowed with backpressure disabled."""


class OperatorCrash(StreamError):
    """An operator died mid-processing (raised by fault injection).

    Subclassing :class:`StreamError` keeps injected crashes
    indistinguishable from organic operator failures to recovery code —
    the point of chaos testing is that the production path cannot tell.

    ``op_name`` (when known) names the physical subtask that died, e.g.
    ``"window_sum[1]"`` — regional recovery uses it to compute the
    failover region instead of restarting the whole job.
    """

    def __init__(self, message: str, op_name: str | None = None):
        super().__init__(message)
        self.op_name = op_name


class CoordinatorDown(StreamError):
    """The checkpoint coordinator died (injected or organic).

    Any in-progress checkpoint is abandoned; a rebuilt coordinator
    resumes from the last *finalized* manifest in the store.
    """


class DataFaultError(StreamError):
    """A record could not be processed: malformed value, garbage
    timestamp, or a deterministically-throwing UDF.

    Data faults are *non-transient*: retrying the same record yields the
    same failure, so retry layers (see ``util.retry``) should treat this
    as non-retryable and per-operator error policies decide the record's
    fate instead (skip, dead-letter, or fail the job).
    """


class CheckpointIntegrityError(CheckpointError):
    """A stored checkpoint failed verification: its manifest checksum or
    snapshot payload digest no longer matches what was recorded at
    finalize time.  Restore logic falls back to the newest checkpoint
    that still verifies; this error surfaces only when none does.
    """


class RestartsExhausted(StreamError):
    """A supervisor gave up restarting a job.

    Either the restart budget ran out, or flapping detection tripped:
    too many consecutive restarts without any forward progress, the
    signature of a permanently-poisoned job that recovery can only mask,
    never fix.  ``restarts`` counts the restarts consumed, ``reason``
    is ``"budget"`` or ``"flapping"``, and ``last_error`` is the failure
    that triggered the final, refused restart.
    """

    def __init__(self, message: str, *, restarts: int = 0,
                 reason: str = "budget",
                 last_error: Exception | None = None):
        super().__init__(message)
        self.restarts = restarts
        self.reason = reason
        self.last_error = last_error


class StoreError(ReproError):
    """Tiered serving store misuse (bad shard config, rewound apply)."""


class VisionError(ReproError):
    """Base class for computer-vision substrate errors."""


class CalibrationError(VisionError):
    """Camera intrinsics invalid or degenerate geometry."""


class TrackingLost(VisionError):
    """Tracker could not locate enough correspondences to estimate pose."""


class SensorError(ReproError):
    """Sensor model misuse (bad rates, unknown sensor id)."""


class SpatialIndexError(SensorError):
    """Query or insert outside the index bounds."""


class RenderError(ReproError):
    """Scene-graph or compositor misuse."""


class OffloadError(ReproError):
    """Offload planning failed (no feasible tier, unknown task)."""


class TaskTimeout(OffloadError):
    """A remotely placed task exceeded its time budget."""


class TierDropout(OffloadError):
    """The tier executing a task went away mid-task (edge/cloud loss)."""


class PrivacyError(ReproError):
    """Privacy-mechanism misuse (invalid epsilon, exhausted budget)."""


class BudgetExhausted(PrivacyError):
    """The differential-privacy budget accountant refused a query."""


class ContextError(ReproError):
    """Semantic-context subsystem errors."""


class MarkupError(ContextError):
    """ARML-like markup failed to parse or serialize."""


class InterpretationError(ContextError):
    """Analytics output could not be bound to AR content."""


class PipelineError(ReproError):
    """Core AR x BigData pipeline wiring or lifecycle error."""


class ChaosError(ReproError):
    """Fault-injection plan or harness misuse (not an injected fault)."""
