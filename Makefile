# Single entry points for the repo's gates.  `make verify` is the full
# pre-merge check: tier-1 tests, the perf gate, and the chaos gate.

PYTHON ?= python
export PYTHONPATH := src

.PHONY: test chaos chaos-parallel perf robustness datafault obs elasticity store geo verify

test:  ## tier-1: fast unit/integration/property tests
	$(PYTHON) -m pytest -x -q

obs:  ## observability gate: span-tree completeness + overhead budget
	$(PYTHON) tools/check_obs.py

chaos:  ## fault-injection recovery suites (chaos + slow markers)
	$(PYTHON) -m pytest -q -m "chaos or slow"

chaos-parallel:  ## coordinated checkpoints: barriers, 2PC sinks, regional recovery
	$(PYTHON) -m pytest -q -m "chaos or not chaos" \
		tests/property/test_coordinated_chaos.py \
		tests/property/test_coordinated_checkpoint.py

# perf needs numpy: check_perf fails fast with install instructions if
# it is missing.  --events 100000 matches the committed baseline so the
# absolute eps floors gate like-for-like.
perf:  ## throughput regression gate vs committed baseline
	$(PYTHON) tools/check_perf.py --skip-tests --events 100000

robustness:  ## fixed-schedule crash-recovery smoke + recovery-MTTR gate
	$(PYTHON) tools/check_robustness.py --skip-tests

datafault:  ## data-fault tolerance: DLQ exactly-once, checkpoint integrity, restart budget
	$(PYTHON) tools/check_robustness.py --datafault

elasticity:  ## autoscale chaos suite + live-rescale SLO/replay gate
	$(PYTHON) tools/check_elasticity.py

store:  ## serving-store chaos suite + exactly-once/latency gate
	$(PYTHON) tools/check_store.py

geo:  ## geo chaos suite + edge-vs-cloud latency / failover gate
	$(PYTHON) tools/check_geo.py

verify: test perf obs chaos chaos-parallel robustness datafault elasticity store geo
	@echo "verify: all gates passed"
