"""Unit tests: core pipeline facade, sessions, timeliness, privacy guard,
influence model."""

import numpy as np
import pytest

from repro.context.entities import SemanticEntity
from repro.core import (
    ARBigDataPipeline,
    FieldInfluence,
    PAPER_FIGURE5,
    PipelineConfig,
    PrivacyConfig,
    Probe,
    SharedDataset,
    classify,
    classify_score,
)
from repro.core.privacy_guard import PrivacyGuard
from repro.offload.policies import AlwaysLocal, GreedyLatency
from repro.render.scene import Annotation
from repro.util.errors import PipelineError, PrivacyError
from repro.util.rng import make_rng
from repro.vision.camera import look_at
from repro.vision.tracker import StageProfile


def _pipeline(**kw):
    return ARBigDataPipeline(PipelineConfig(seed=0, **kw))


def _annotation(aid, x=0.0, y=0.0, z=5.0):
    return Annotation(annotation_id=aid, anchor=np.array([x, y, z]),
                      text=aid)


class TestPipelineFacade:
    def test_ingest_and_windowed_aggregate(self):
        pipeline = _pipeline()
        pipeline.create_topic("sensors")
        for i in range(60):
            pipeline.ingest("sensors", {"sensor": f"s{i % 3}",
                                        "value": float(i)},
                            key=f"s{i % 3}", timestamp=float(i))
        results = pipeline.windowed_aggregate(
            "sensors", key_fn=lambda v: v["sensor"],
            value_fn=lambda v: v["value"], window_s=20.0,
            aggregate="count")
        total = sum(r.value for r in results)
        assert total == 60
        keys = {r.key for r in results}
        assert keys == {"s0", "s1", "s2"}

    def test_personal_ingest_pseudonymizes(self):
        pipeline = ARBigDataPipeline(PipelineConfig(
            seed=0, privacy=PrivacyConfig(location_mode="laplace",
                                          geo_epsilon=0.1)))
        pipeline.create_topic("t")
        pipeline.ingest("t", {"user": "alice", "x": 10.0, "y": 20.0},
                        key="alice", timestamp=0.0, personal=True)
        group = pipeline.consumer_group("t", "g")
        rows = group.join("m").poll()
        record = rows[0].value
        assert record["user"].startswith("anon-")
        assert record["user"] != "alice"
        assert (record["x"], record["y"]) != (10.0, 20.0)
        assert record["loc_error_m"] > 0

    def test_pseudonym_stable(self):
        pipeline = _pipeline()
        assert pipeline.guard.pseudonymize("bob") == \
            pipeline.guard.pseudonymize("bob")
        assert pipeline.guard.pseudonymize("bob") != \
            pipeline.guard.pseudonymize("alice")

    def test_interpret_and_publish(self):
        pipeline = _pipeline()
        pipeline.add_entity(SemanticEntity(
            entity_id="e1", entity_type="poi",
            position=np.array([0.0, 0.0, 5.0]), name="Spot"))
        pipeline.interpreter.register_default("info")
        bound = pipeline.interpret_and_publish(
            [{"tag": "info", "subject": "e1", "value": 7}])
        assert bound.bound == 1
        assert pipeline.dataset.version == 1

    def test_open_session_and_render(self):
        pipeline = _pipeline()
        pipeline.add_entity(SemanticEntity(
            entity_id="e1", entity_type="poi",
            position=np.array([0.0, 0.0, 5.0]), name="Spot"))
        pipeline.interpreter.register_default("info")
        pipeline.interpret_and_publish(
            [{"tag": "info", "subject": "e1", "value": 7}])
        session = pipeline.open_session("u1")
        session.sync()
        pose = look_at(eye=[0, 0, 0], target=[0, 0, 5.0])
        frame = session.render(pose)
        assert frame.drawn == 1

    def test_duplicate_session_rejected(self):
        pipeline = _pipeline()
        pipeline.open_session("u1")
        with pytest.raises(PipelineError):
            pipeline.open_session("u1")

    def test_unknown_link_preset_rejected(self):
        with pytest.raises(PipelineError):
            PipelineConfig(access_link="carrier-pigeon")

    def test_run_job_escape_hatch(self):
        pipeline = _pipeline()
        pipeline.create_topic("t")
        for i in range(5):
            pipeline.ingest("t", {"v": i}, timestamp=float(i))
        from repro.streaming.connectors import log_source

        def build(builder):
            (builder.source("t", log_source(pipeline.log, "t"))
                    .map(lambda v: v["v"] * 10)
                    .sink("out"))

        out = pipeline.run_job(build)
        assert sorted(out["out"]) == [0, 10, 20, 30, 40]


class TestSharedDatasetAndSessions:
    def test_publish_bumps_version(self):
        dataset = SharedDataset()
        dataset.publish([_annotation("a")])
        dataset.publish([_annotation("b")])
        assert dataset.version == 2
        assert len(dataset) == 2

    def test_retract(self):
        dataset = SharedDataset()
        dataset.publish([_annotation("a")])
        dataset.retract("a")
        assert len(dataset) == 0
        with pytest.raises(PipelineError):
            dataset.retract("a")

    def test_staleness_and_sync(self):
        pipeline = _pipeline()
        session = pipeline.open_session("u1")
        pipeline.dataset.publish([_annotation("a")])
        pipeline.dataset.publish([_annotation("b")])
        assert session.staleness == 2
        advanced = session.sync()
        assert advanced == 2
        assert session.staleness == 0

    def test_probe_filters_own_view_only(self):
        pipeline = _pipeline()
        s1 = pipeline.open_session("u1")
        s2 = pipeline.open_session("u2")
        pipeline.dataset.publish([_annotation("keep"),
                                  _annotation("drop")])
        s1.sync()
        s2.sync()
        s1.open_probe(Probe(name="only-keep",
                            predicate=lambda a: a.annotation_id == "keep"))
        assert s1.visible_annotation_ids() == {"keep"}
        assert s2.visible_annotation_ids() == {"keep", "drop"}

    def test_close_probe(self):
        pipeline = _pipeline()
        session = pipeline.open_session("u1")
        session.open_probe(Probe(name="p", predicate=lambda a: False))
        session.close_probe("p")
        with pytest.raises(PipelineError):
            session.close_probe("p")

    def test_duplicate_probe_rejected(self):
        pipeline = _pipeline()
        session = pipeline.open_session("u1")
        session.open_probe(Probe(name="p", predicate=lambda a: True))
        with pytest.raises(PipelineError):
            session.open_probe(Probe(name="p", predicate=lambda a: True))


class TestTimeliness:
    def _profile(self):
        return StageProfile(pixels=320 * 240, features=200, matches=80,
                            ransac_iterations=60)

    def test_admit_frame_tracks_report(self):
        pipeline = _pipeline()
        timing = pipeline.timeliness.admit_frame(self._profile())
        report = pipeline.timeliness.report
        assert report.frames == 1
        assert timing.latency_s > 0
        assert timing.placement in ("local", "edge", "cloud")

    def test_always_local_slower_than_greedy_for_heavy_frames(self):
        heavy = StageProfile(pixels=1920 * 1080, features=2000,
                             matches=800, ransac_iterations=500)
        pipeline = _pipeline()
        pipeline.set_offload_policy(AlwaysLocal())
        local = pipeline.timeliness.admit_frame(heavy)
        pipeline.set_offload_policy(GreedyLatency())
        greedy = pipeline.timeliness.admit_frame(heavy)
        assert greedy.latency_s <= local.latency_s

    def test_miss_rate(self):
        pipeline = ARBigDataPipeline(PipelineConfig(
            seed=0, deadline_s=1e-9))
        pipeline.timeliness.admit_frame(self._profile())
        assert pipeline.timeliness.report.miss_rate == 1.0


class TestPrivacyGuard:
    def test_mode_none_passthrough(self):
        guard = PrivacyGuard(PrivacyConfig(location_mode="none"),
                             make_rng(0))
        assert guard.protect_location(1.0, 2.0) == (1.0, 2.0, 0.0)

    def test_laplace_perturbs(self):
        guard = PrivacyGuard(PrivacyConfig(location_mode="laplace",
                                           geo_epsilon=0.05), make_rng(1))
        x, y, err = guard.protect_location(0.0, 0.0)
        assert (x, y) != (0.0, 0.0)
        assert err == pytest.approx(40.0)

    def test_cloak_requires_instance(self):
        with pytest.raises(PrivacyError):
            PrivacyGuard(PrivacyConfig(location_mode="cloak"), make_rng(2))

    def test_budget_refusal_after_exhaustion(self):
        guard = PrivacyGuard(PrivacyConfig(
            location_mode="none", dp_epsilon_total=0.2,
            dp_epsilon_per_query=0.1), make_rng(3))
        assert guard.release_aggregate("scope", 10.0) is not None
        assert guard.release_aggregate("scope", 10.0) is not None
        assert guard.release_aggregate("scope", 10.0) is None
        assert guard.refusals == 1

    def test_scopes_have_independent_budgets(self):
        guard = PrivacyGuard(PrivacyConfig(
            location_mode="none", dp_epsilon_total=0.1,
            dp_epsilon_per_query=0.1), make_rng(4))
        assert guard.release_aggregate("a", 1.0) is not None
        assert guard.release_aggregate("b", 1.0) is not None
        assert guard.remaining_budget("a") == pytest.approx(0.0)


class TestInfluence:
    def test_classify_score_thresholds(self):
        assert classify_score(0.0) == "absent"
        assert classify_score(0.1) == "low"
        assert classify_score(0.2) == "medium"
        assert classify_score(0.5) == "high"
        assert classify_score(0.8) == "very high"

    def test_out_of_range_rejected(self):
        with pytest.raises(PipelineError):
            classify_score(1.5)

    def test_classify_fields(self):
        levels = classify([FieldInfluence("retail", 0.7, 0.4)])
        assert levels[0].bigdata_level == "very high"
        assert levels[0].ar_level == "high"

    def test_paper_reference_covers_domain_apps(self):
        assert set(PAPER_FIGURE5) == {"retail", "tourism", "healthcare",
                                      "public-services"}
