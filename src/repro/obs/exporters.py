"""Exporters: spans and metric snapshots out of the process.

Three sinks cover the repo's needs:

- :class:`InMemoryExporter` — collects everything in lists (tests).
- :class:`JsonLinesExporter` — one JSON object per line, NaN-safe
  (``json.dumps`` with ``allow_nan=False`` would otherwise crash on a
  never-set gauge or an empty summary; we scrub non-finite floats to
  ``None`` first so files always re-parse).
- :class:`ConsoleExporter` — aligned human-readable tables.

``span_to_dict``/``span_from_dict`` define the canonical wire form, and
``read_jsonl`` is the inverse of :class:`JsonLinesExporter` — the
round-trip (emit → parse → same span tree) is asserted by the exporter
tests.
"""

from __future__ import annotations

import json
import math
import sys
from pathlib import Path
from typing import Any, Iterable, Sequence, TextIO

from .trace import Span, SpanEvent

__all__ = [
    "span_to_dict",
    "span_from_dict",
    "json_safe",
    "InMemoryExporter",
    "JsonLinesExporter",
    "ConsoleExporter",
    "read_jsonl",
]


def json_safe(value: Any) -> Any:
    """Recursively replace non-finite floats with ``None`` (and coerce
    numpy scalars) so the result survives ``json.dumps(allow_nan=False)``."""
    if isinstance(value, dict):
        return {str(k): json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_safe(v) for v in value]
    if isinstance(value, bool) or value is None or isinstance(value, (str, int)):
        return value
    if isinstance(value, float):
        return value if math.isfinite(value) else None
    # numpy scalars and other number-likes
    try:
        as_float = float(value)
    except (TypeError, ValueError):
        return str(value)
    return as_float if math.isfinite(as_float) else None


def span_to_dict(span: Span) -> dict[str, Any]:
    """Canonical serialized form of one span."""
    return {
        "trace_id": span.trace_id,
        "span_id": span.span_id,
        "parent_id": span.parent_id,
        "name": span.name,
        "start": span.start_time,
        "end": span.end_time,
        "attrs": dict(span.attrs),
        "events": [{"name": e.name, "ts": e.timestamp, "attrs": dict(e.attrs)}
                   for e in span.events],
    }


def span_from_dict(data: dict[str, Any]) -> Span:
    """Rebuild a detached :class:`Span` from its serialized form."""
    span = Span(trace_id=data["trace_id"], span_id=data["span_id"],
                parent_id=data.get("parent_id"), name=data["name"],
                start_time=float(data["start"]),
                attrs=data.get("attrs") or {})
    end = data.get("end")
    if end is not None:
        span.end(at=float(end))
    for event in data.get("events", []):
        span.events.append(SpanEvent(event["name"], float(event["ts"]),
                                     dict(event.get("attrs") or {})))
    return span


class InMemoryExporter:
    """Collects spans and metric snapshots for assertions."""

    def __init__(self) -> None:
        self.spans: list[dict[str, Any]] = []
        self.metrics: list[dict[str, Any]] = []

    def export_spans(self, spans: Iterable[Span]) -> int:
        batch = [span_to_dict(s) for s in spans]
        self.spans.extend(batch)
        return len(batch)

    def export_metrics(self, snapshot: dict[str, float]) -> None:
        self.metrics.append(dict(snapshot))


class JsonLinesExporter:
    """Appends ``{"type": "span"|"metrics", ...}`` lines to a file."""

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)

    def _write(self, payload: dict[str, Any]) -> None:
        line = json.dumps(json_safe(payload), allow_nan=False,
                          sort_keys=True)
        with self.path.open("a", encoding="utf-8") as fh:
            fh.write(line + "\n")

    def export_spans(self, spans: Iterable[Span]) -> int:
        count = 0
        for span in spans:
            self._write({"type": "span", **span_to_dict(span)})
            count += 1
        return count

    def export_metrics(self, snapshot: dict[str, float]) -> None:
        self._write({"type": "metrics", "values": dict(snapshot)})


def read_jsonl(path: str | Path) -> tuple[list[dict[str, Any]],
                                          list[dict[str, Any]]]:
    """Parse a :class:`JsonLinesExporter` file back into
    (span dicts, metric snapshots).

    A process that crashes mid-write leaves a torn final line (partial
    JSON, no newline).  That tail is skipped — post-crash trace analysis
    must be able to read everything that *was* durably written — but a
    malformed line anywhere else still raises, because mid-file
    corruption is a different bug than a crash.
    """
    spans: list[dict[str, Any]] = []
    metrics: list[dict[str, Any]] = []
    lines = Path(path).read_text(encoding="utf-8").splitlines()
    last_payload_idx = max(
        (i for i, line in enumerate(lines) if line.strip()), default=-1)
    for i, line in enumerate(lines):
        if not line.strip():
            continue
        try:
            payload = json.loads(line)
        except json.JSONDecodeError:
            if i == last_payload_idx:
                break  # torn tail from a crash mid-write
            raise
        if payload.get("type") == "span":
            payload.pop("type")
            spans.append(payload)
        elif payload.get("type") == "metrics":
            metrics.append(payload.get("values", {}))
    return spans, metrics


class ConsoleExporter:
    """Prints spans and metrics as aligned text tables."""

    def __init__(self, stream: TextIO | None = None) -> None:
        self.stream = stream if stream is not None else sys.stdout

    def export_spans(self, spans: Sequence[Span]) -> int:
        rows = [("span", "name", "parent", "start", "duration")]
        for s in spans:
            rows.append((s.span_id, s.name, s.parent_id or "-",
                         f"{s.start_time:.6f}",
                         "open" if s.end_time is None
                         else f"{s.duration:.6f}"))
        self._table(rows)
        return len(spans)

    def export_metrics(self, snapshot: dict[str, float]) -> None:
        rows = [("metric", "value")]
        for key in sorted(snapshot):
            rows.append((key, f"{snapshot[key]:.6g}"))
        self._table(rows)

    def _table(self, rows: list[tuple[str, ...]]) -> None:
        widths = [max(len(str(row[i])) for row in rows)
                  for i in range(len(rows[0]))]
        for i, row in enumerate(rows):
            line = "  ".join(str(cell).ljust(w)
                             for cell, w in zip(row, widths))
            print(line.rstrip(), file=self.stream)
            if i == 0:
                print("  ".join("-" * w for w in widths), file=self.stream)
