"""Experiment F1 (Figure 1: numerical flow field over real buildings).

The figure shows a wind field visualized in-situ over buildings so that
"the influence of the building on wind movement [is] easily understood".
We stream anemometer samples through the pipeline, window-aggregate per
sensor, bind the aggregates to building-anchored entities and composite
the overlay — measuring end-to-end content freshness and whether the
rendered field actually encodes the building's influence (speed deficit
behind the tower vs free stream).
"""

import numpy as np

from repro.context import SemanticEntity
from repro.core import ARBigDataPipeline, PipelineConfig
from repro.datagen import Building, WindField
from repro.render.occlusion import BoxOccluder, OcclusionWorld
from repro.util.rng import make_rng
from repro.vision.camera import look_at

from tableprint import print_table

RATES = [200, 1000, 5000]  # samples per second of stream


def run_experiment():
    rows = []
    field = WindField([Building("tower", 50.0, 50.0, 12.0, 60.0)],
                      free_stream=(6.0, 0.0))
    # A fixed anemometer grid around the tower (sensors don't move).
    grid_rng = make_rng(20)
    sensors = {}
    for i in range(8):
        for j in range(8):
            x = 6.25 + 12.5 * i + float(grid_rng.uniform(-2, 2))
            y = 6.25 + 12.5 * j + float(grid_rng.uniform(-2, 2))
            sensors[f"anem-{i}{j}"] = (x, y)
    for rate in RATES:
        pipeline = ARBigDataPipeline(PipelineConfig(seed=21))
        pipeline.create_topic("wind", partitions=4)
        rng = make_rng(21)
        horizon = 2.0
        n = int(rate * horizon)
        names = sorted(sensors)
        for k in range(n):
            name = names[k % len(names)]
            x, y = sensors[name]
            vx, vy = field.velocity(x, y)
            sample = {"sensor": name, "t": k / rate, "x": x, "y": y,
                      "vx": vx + float(rng.normal(0, 0.1)),
                      "vy": vy + float(rng.normal(0, 0.1))}
            pipeline.ingest("wind", sample, key=name,
                            timestamp=sample["t"])
        results = pipeline.windowed_aggregate(
            "wind", key_fn=lambda v: v["sensor"],
            value_fn=lambda v: float(np.hypot(v["vx"], v["vy"])),
            window_s=0.5, aggregate="mean")
        positions = {name: [xy] for name, xy in sensors.items()}
        for sensor, pts in positions.items():
            arr = np.array(pts)
            pipeline.add_entity(SemanticEntity(
                entity_id=sensor, entity_type="anemometer",
                position=np.array([arr[:, 0].mean(), arr[:, 1].mean(),
                                   15.0]),
                name=sensor))
        if "wind-speed" not in pipeline.interpreter.rules():
            pipeline.interpreter.register_default("wind-speed")
        bound = pipeline.interpret_and_publish([
            {"tag": "wind-speed", "subject": r.key,
             "value": f"{r.value:.1f}", "priority": float(r.value)}
            for r in results])
        occlusion = OcclusionWorld([BoxOccluder(
            "tower", (38.0, 38.0, 0.0), (62.0, 62.0, 60.0))])
        session = pipeline.open_session(f"engineer-{rate}",
                                        occlusion=occlusion)
        session.sync()
        pose = look_at(eye=[50.0, -60.0, 25.0],
                       target=[50.0, 50.0, 15.0],
                       up=np.array([0.0, 0.0, 1.0]))
        frame = session.render(pose)
        # Physics check via the overlay data: the wake behind the tower
        # is slower than the free stream.
        wake = [s for s, pts in positions.items()
                if 62 < np.mean([p[0] for p in pts]) < 90
                and 44 < np.mean([p[1] for p in pts]) < 56]
        free = [s for s, pts in positions.items()
                if np.mean([p[0] for p in pts]) < 30
                and (np.mean([p[1] for p in pts]) < 25
                     or np.mean([p[1] for p in pts]) > 75)]
        by_sensor = {}
        for r in results:
            by_sensor.setdefault(r.key, []).append(r.value)
        wake_speed = np.mean([np.mean(by_sensor[s]) for s in wake
                              if s in by_sensor]) if wake else np.nan
        free_speed = np.mean([np.mean(by_sensor[s]) for s in free
                              if s in by_sensor]) if free else np.nan
        rows.append([rate, n, len(results), bound.coverage,
                     frame.drawn, frame.layout.overlapping,
                     float(free_speed), float(wake_speed)])
    return rows


def bench_fig1_flowfield(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F1  Figure 1: in-situ wind-field overlay over a building",
        ["samples/s", "samples", "window results", "bind coverage",
         "labels drawn", "overlapping", "free-stream m/s", "wake m/s"],
        rows,
        note="wake < free stream = the building's influence, visible "
             "in the overlay data itself")
    for row in rows:
        assert row[3] == 1.0  # every aggregate bound to an anchor
        assert row[4] > 0  # something rendered
        assert row[5] == 0  # decluttered
        assert row[7] < row[6]  # wake slower than free stream
    # Volume scales without losing coverage.
    assert rows[-1][1] >= 25 * rows[0][1] / 5
