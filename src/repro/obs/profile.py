"""Lightweight profiling hooks: per-operator wall time into the registry.

The streaming executor (and anything else with a hot loop) accepts an
optional :class:`Profiler`; when present it brackets each node's batch
with ``timer()`` reads and records the elapsed time as a labelled
summary (``op.wall_s{op=<name>}``).  The timer is injected — pass
``clock.now`` to stay deterministic, or ``time.perf_counter`` when you
genuinely want wall time (benchmarks only; library code must stay
reproducible, see CONTRIBUTING.md ground rule 1).
"""

from __future__ import annotations

from typing import Any, Callable

from ..util.metrics import MetricsRegistry

__all__ = ["Profiler"]


class Profiler:
    """Records elapsed-time observations into a metrics registry."""

    def __init__(self, registry: MetricsRegistry,
                 timer: Callable[[], float]) -> None:
        self.registry = registry
        self.timer = timer

    def record(self, name: str, started: float, **labels: Any) -> float:
        """Observe ``timer() - started`` under ``name{labels}``; returns
        the elapsed value so call sites can reuse it."""
        elapsed = self.timer() - started
        self.registry.summary(name, **labels).observe(elapsed)
        return elapsed
