"""P8: tiered serving store — point-lookup latency under columnar ingest.

The paper's serving split (Sec 4.1): AR overlays need millisecond
"latest state for this key" reads while dashboards keep appending
committed history.  This bench builds the log-structured hot tier to
**>= 1M distinct keys** (memtable + size-tiered sorted runs, exactly the
state a long-running deployment accumulates), then measures point
lookups *interleaved with sustained columnar ingest* into the
analytical tier — every lookup timed individually so the tail is real,
not an average hiding compaction stalls.

Reported: per-phase build throughput, hot-tier structure (runs,
compactions), lookup p50/p99/max, and concurrent analytical ingest
rate.  The committed gate (``tools/check_store.py``) holds p99 under
``P99_FLOOR_US`` — set with ~10x headroom over the measured value on
the reference container so only a structural regression (e.g. lookups
degrading to full-run scans) trips it.

Results merge into ``BENCH_streaming.json`` under the ``"store"`` key.
"""

import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from repro.store import HotStore, TieredStore, key_repr
from repro.streaming.element import Element

import benchlib
from tableprint import print_table

SEED = 8
N_KEYS = 1_000_000
BUILD_EPOCH_ROWS = 100_000
INGEST_BATCHES = 25
INGEST_ROWS = 8_000
LOOKUPS_PER_BATCH = 400
NUM_SHARDS = 16
MEMTABLE_LIMIT = 10_000

#: gate floor for the lookup tail, microseconds (see module docstring)
P99_FLOOR_US = 2_000.0


def _build_hot(store: TieredStore, rng) -> dict:
    """Populate the hot tier to N_KEYS distinct keys through committed
    epochs, flushing and compacting as a live deployment would."""
    started = time.perf_counter()
    epoch = 0
    hot = store.hot
    for base in range(0, N_KEYS, BUILD_EPOCH_ROWS):
        epoch += 1
        per_shard = {}
        for i in range(base, base + BUILD_EPOCH_ROWS):
            key = f"k-{i:07d}"
            row = (key_repr(key), float(i % 10_000),
                   float(rng.uniform(0, 1)))
            sid = hot.shard_for(key).shard_id
            per_shard.setdefault(sid, []).append(row)
        for sid, rows in per_shard.items():
            hot.shards[sid].apply_epoch(epoch, rows)
        hot.maintain()
    elapsed = time.perf_counter() - started
    return {"build_s": round(elapsed, 2),
            "build_rows_per_s": round(N_KEYS / elapsed),
            "epochs": epoch}


def _measure(store: TieredStore, rng) -> dict:
    """Interleave columnar epoch appends with individually timed point
    lookups against the >= 1M-key hot tier."""
    latencies = []
    epoch = 1_000
    ingest_rows = 0
    ingest_s = 0.0
    targets = rng.integers(0, N_KEYS, size=INGEST_BATCHES * LOOKUPS_PER_BATCH)
    t = 0
    for _ in range(INGEST_BATCHES):
        epoch += 1
        elements = [Element(value=float(rng.uniform(0, 1)),
                            timestamp=float(i),
                            key=f"k-{int(rng.integers(N_KEYS)):07d}")
                    for i in range(INGEST_ROWS)]
        started = time.perf_counter()
        store.analytical.append_epoch(epoch, elements)
        # keep the consolidation cost honest: dashboards read back
        store.analytical.count(start=0.0)
        ingest_s += time.perf_counter() - started
        ingest_rows += INGEST_ROWS
        for _ in range(LOOKUPS_PER_BATCH):
            key = f"k-{targets[t]:07d}"
            t += 1
            t0 = time.perf_counter_ns()
            value = store.point(key)
            latencies.append(time.perf_counter_ns() - t0)
            assert value is not None
    lat_us = np.asarray(latencies, dtype=np.float64) / 1_000.0
    return {
        "lookups": len(latencies),
        "lookup_p50_us": round(float(np.percentile(lat_us, 50)), 1),
        "lookup_p99_us": round(float(np.percentile(lat_us, 99)), 1),
        "lookup_max_us": round(float(lat_us.max()), 1),
        "ingest_rows": ingest_rows,
        "ingest_rows_per_s": round(ingest_rows / ingest_s),
    }


def run_experiment() -> dict:
    rng = np.random.default_rng(SEED)
    store = TieredStore(num_shards=NUM_SHARDS,
                        memtable_limit=MEMTABLE_LIMIT,
                        metric_fn=lambda v: float(v))
    build = _build_hot(store, rng)
    assert store.hot.rows >= N_KEYS
    measure = _measure(store, rng)
    hot_stats = store.hot.stats()
    results = {
        "config": {"keys": N_KEYS, "num_shards": NUM_SHARDS,
                   "memtable_limit": MEMTABLE_LIMIT,
                   "ingest_batches": INGEST_BATCHES,
                   "ingest_rows_per_batch": INGEST_ROWS,
                   "p99_floor_us": P99_FLOOR_US},
        "store": {**build, **measure,
                  "hot_rows": store.hot.rows,
                  "runs": int(sum(s["runs"]
                                  for s in hot_stats["shards"])),
                  "compactions": int(sum(s["compactions"]
                                         for s in hot_stats["shards"])),
                  "analytical_rows": store.analytical.rows},
    }
    return results


def report(results: dict) -> None:
    s = results["store"]
    print_table(
        f"P8  tiered serving store ({results['config']['keys']:,} keys, "
        f"{s['ingest_rows']:,} rows concurrent columnar ingest)",
        ["metric", "value"],
        [["hot build rows/s", f"{s['build_rows_per_s']:,}"],
         ["sorted runs (all shards)", str(s["runs"])],
         ["compactions", str(s["compactions"])],
         ["point lookup p50", f"{s['lookup_p50_us']} us"],
         ["point lookup p99", f"{s['lookup_p99_us']} us"],
         ["point lookup max", f"{s['lookup_max_us']} us"],
         ["columnar ingest rows/s", f"{s['ingest_rows_per_s']:,}"],
         ["analytical rows", f"{s['analytical_rows']:,}"]],
        note=f"gate: tools/check_store.py holds p99 < "
             f"{P99_FLOOR_US:.0f} us with lookups interleaved into "
             "live ingest")


def main() -> None:
    args = benchlib.bench_parser(__doc__).parse_args()
    results = run_experiment()
    report(results)
    benchlib.merge_section(args.out, "store", results)


if __name__ == "__main__":
    main()
