"""Cluster topology: named nodes connected by links, with routing.

Built on :mod:`networkx`: nodes carry compute capacity (cycles/s) and a
role (device / edge / cloud / broker), edges carry :class:`LinkSpec`s.
Path latency composes link transfer times along the shortest
(propagation-latency-weighted) route, which is how the offloading and
remote-healthcare experiments price device->edge->cloud hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..util.errors import ConfigError, NetworkError
from .network import Link, LinkSpec

__all__ = ["NodeSpec", "Topology"]


@dataclass
class NodeSpec:
    """A compute node.

    cpu_hz      effective cycles per second available to tasks
    role        'device' | 'edge' | 'cloud' | 'broker' | arbitrary label
    cores       parallel task slots (queueing model uses this)
    power_w     active power draw, used by the energy model
    """

    name: str
    cpu_hz: float
    role: str = "device"
    cores: int = 1
    power_w: float = 1.0
    up: bool = field(default=True)

    def __post_init__(self) -> None:
        if self.cpu_hz <= 0:
            raise ConfigError(f"node {self.name!r}: cpu_hz must be positive")
        if self.cores < 1:
            raise ConfigError(f"node {self.name!r}: cores must be >= 1")

    def compute_time(self, cycles: float) -> float:
        """Seconds to execute ``cycles`` on one core of this node."""
        if cycles < 0:
            raise ConfigError("cycles must be non-negative")
        return cycles / self.cpu_hz


class Topology:
    """Named nodes + links with shortest-path routing and failure state."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._graph = nx.Graph()
        self._rng = rng
        self._links: dict[frozenset[str], Link] = {}

    # -- construction -----------------------------------------------------

    def add_node(self, spec: NodeSpec) -> NodeSpec:
        if spec.name in self._graph:
            raise ConfigError(f"duplicate node {spec.name!r}")
        self._graph.add_node(spec.name, spec=spec)
        return spec

    def add_link(self, a: str, b: str, spec: LinkSpec) -> Link:
        for name in (a, b):
            if name not in self._graph:
                raise ConfigError(f"unknown node {name!r}")
        if a == b:
            raise ConfigError("self-links are not allowed")
        link = Link(spec, self._rng)
        self._graph.add_edge(a, b, spec=spec, weight=spec.latency_s)
        self._links[frozenset((a, b))] = link
        return link

    def replace_link(self, a: str, b: str, spec: LinkSpec) -> Link:
        """Swap the link between ``a`` and ``b`` for one with ``spec``
        (e.g. to degrade the network mid-experiment)."""
        if frozenset((a, b)) not in self._links:
            raise ConfigError(f"no existing link between {a!r} and {b!r}")
        link = Link(spec, self._rng)
        self._graph.edges[a, b]["spec"] = spec
        self._graph.edges[a, b]["weight"] = spec.latency_s
        self._links[frozenset((a, b))] = link
        return link

    # -- lookup -----------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        try:
            return self._graph.nodes[name]["spec"]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def nodes(self, role: str | None = None) -> list[NodeSpec]:
        specs = [data["spec"] for _n, data in self._graph.nodes(data=True)]
        if role is not None:
            specs = [s for s in specs if s.role == role]
        return specs

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    # -- failures ---------------------------------------------------------

    def fail_node(self, name: str) -> None:
        self.node(name).up = False

    def recover_node(self, name: str) -> None:
        self.node(name).up = True

    def _alive_subgraph(self) -> nx.Graph:
        alive = [n for n, d in self._graph.nodes(data=True) if d["spec"].up]
        return self._graph.subgraph(alive)

    # -- routing ----------------------------------------------------------

    def route(self, src: str, dst: str) -> list[str]:
        """Node names along the minimum-propagation-latency path."""
        self.node(src), self.node(dst)  # validate both exist
        graph = self._alive_subgraph()
        if src not in graph or dst not in graph:
            raise NetworkError(f"route {src!r}->{dst!r}: endpoint down")
        try:
            return nx.shortest_path(graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise NetworkError(f"no path from {src!r} to {dst!r}") from None

    def transfer_time(self, src: str, dst: str, size_bytes: float) -> float:
        """Sampled time to move ``size_bytes`` from src to dst (store-and-
        forward across every hop on the route)."""
        if src == dst:
            return 0.0
        path = self.route(src, dst)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.link(a, b).transfer_time(size_bytes)
        return total

    def rtt(self, src: str, dst: str, request_bytes: float,
            response_bytes: float) -> float:
        """Request/response round trip along the current route."""
        return (self.transfer_time(src, dst, request_bytes)
                + self.transfer_time(dst, src, response_bytes))

    def nominal_path_latency(self, src: str, dst: str) -> float:
        """Deterministic sum of propagation latencies (no payload)."""
        if src == dst:
            return 0.0
        path = self.route(src, dst)
        return sum(self._graph.edges[a, b]["spec"].latency_s
                   for a, b in zip(path, path[1:]))

    def __len__(self) -> int:
        return self._graph.number_of_nodes()
