"""Records: the unit of data in the event log.

A :class:`Record` mirrors a Kafka record: optional key (drives
partitioning and compaction), arbitrary value, event timestamp, and
headers.  ``size_bytes`` gives the serialized-size estimate used by the
network and retention models — values are plain Python objects, so we
price them structurally instead of actually serializing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

__all__ = ["Record", "estimate_size"]


def estimate_size(value: Any) -> int:
    """Rough serialized size in bytes of a Python value.

    Deterministic and cheap; used for retention accounting and transfer
    pricing, not for actual wire formats.
    """
    if value is None:
        return 1
    if isinstance(value, bool):
        return 1
    if isinstance(value, int):
        return 8
    if isinstance(value, float):
        return 8
    if isinstance(value, str):
        return len(value.encode("utf-8"))
    if isinstance(value, bytes):
        return len(value)
    if isinstance(value, Mapping):
        return sum(estimate_size(k) + estimate_size(v) for k, v in value.items()) + 2
    if isinstance(value, (list, tuple, set, frozenset)):
        return sum(estimate_size(v) for v in value) + 2
    # Fallback: objects with __dict__ priced by their attributes.
    attrs = getattr(value, "__dict__", None)
    if attrs is not None:
        return estimate_size(attrs)
    return 16


@dataclass(frozen=True)
class Record:
    """One immutable log record."""

    value: Any
    key: str | None = None
    timestamp: float = 0.0
    headers: Mapping[str, str] = field(default_factory=dict)

    @property
    def size_bytes(self) -> int:
        size = estimate_size(self.value) + 8  # value + timestamp
        if self.key is not None:
            size += len(self.key.encode("utf-8"))
        size += sum(len(k) + len(v) for k, v in self.headers.items())
        return size


@dataclass(frozen=True)
class ConsumedRecord:
    """A record as seen by a consumer: includes its coordinates."""

    topic: str
    partition: int
    offset: int
    record: Record

    @property
    def value(self) -> Any:
        return self.record.value

    @property
    def key(self) -> str | None:
        return self.record.key

    @property
    def timestamp(self) -> float:
        return self.record.timestamp

    @property
    def headers(self) -> Mapping[str, str]:
        return self.record.headers
