"""Computation offloading (CloudRiDAR-style): pipeline models, plan
pricing, placement policies, resilient execution."""

from .battery import DEVICE_CLASSES, Battery, DeviceClass
from .executor import EnergyModel, OffloadPlanner, PlanOutcome
from .policies import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineEnergyAware,
    GreedyLatency,
    OffloadPolicy,
    PolicyDecision,
)
from .runner import OffloadAttempt, OffloadResult, OffloadRunner
from .tasks import Pipeline, TaskStage, vision_pipeline
from .tiers import LiveTierSelector, TierDecision

__all__ = [
    "Battery",
    "DeviceClass",
    "DEVICE_CLASSES",
    "EnergyModel",
    "OffloadPlanner",
    "PlanOutcome",
    "AlwaysLocal",
    "AlwaysRemote",
    "DeadlineEnergyAware",
    "GreedyLatency",
    "OffloadPolicy",
    "PolicyDecision",
    "OffloadAttempt",
    "OffloadResult",
    "OffloadRunner",
    "Pipeline",
    "TaskStage",
    "vision_pipeline",
    "LiveTierSelector",
    "TierDecision",
]
