#!/usr/bin/env python
"""Robustness gate: a fixed whole-system fault schedule must recover.

One seeded schedule kills a streaming operator mid-batch, makes a log
partition unavailable on the fetch path, re-delivers already-consumed
records, and times out an offload task — then the gate asserts:

1. the supervised streaming run's sinks are **bit-identical** to the
   fault-free run, in per-item, batched and chained modes;
2. the offload runner absorbs the timeout and still serves the frame;
3. the same seed reproduces the same fault trace on a second run;
4. recovery MTTR: on the two-region reference plan, a crash in one
   region recovers **regionally** — exactly-once output, and strictly
   fewer elements replayed than a whole-job restart would re-read.

Exit 0 when all hold, 1 otherwise.  Runs the ``chaos``-marked suite
first unless ``--skip-tests``.

``--datafault`` switches to the data-fault tolerance gate instead: the
``datafault``-marked suite, then (1) committed sink + committed DLQ
under data faults is invariant to layered operator crashes, rerun
bit-identical, across per-item/batched/chained modes supervised and
coordinated at parallelism 1/2/4; (2) on a pass-through pipeline the
sink and the dead-lettered originals partition the fault-free output
exactly; (3) corrupted newest checkpoints are quarantined with
fallback restore still exactly-once; (4) a persistently poisoned job
terminates on its restart budget with a diagnostic.

Usage:  python tools/check_robustness.py [--seed N] [--skip-tests]
                                         [--datafault]
"""

from __future__ import annotations

import argparse
import sys

from gatelib import Gate, ensure_paths, run_suite

ensure_paths()

from repro.chaos import (  # noqa: E402
    SITE_CHECKPOINT,
    SITE_DATA,
    SITE_FETCH,
    SITE_OFFLOAD,
    SITE_OPERATOR,
    ChaosLogCluster,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
    run_coordinated,
    run_with_recovery,
    two_region_job,
)
from repro.eventlog.broker import LogCluster, TopicConfig  # noqa: E402
from repro.eventlog.producer import Producer  # noqa: E402
from repro.offload import OffloadPlanner, OffloadRunner  # noqa: E402
from repro.offload.tasks import StageProfile, vision_pipeline  # noqa: E402
from repro.simnet.network import LINK_PRESETS  # noqa: E402
from repro.simnet.topology import NodeSpec, Topology  # noqa: E402
from repro.streaming.connectors import log_source  # noqa: E402
from repro.util.clock import SimClock  # noqa: E402
from repro.util.rng import RngRegistry  # noqa: E402

MODES = [(False, False), (True, False), (True, True)]


def the_schedule(seed: int) -> FaultPlan:
    """Operator crash mid-batch + partition drop + duplicate delivery
    (streaming/log) and an offload task timeout — the acceptance
    scenario, pinned."""
    return FaultPlan(specs=(
        FaultSpec("operator_crash", SITE_OPERATOR, at=83,
                  target="window_sum"),
        FaultSpec("partition_unavailable", SITE_FETCH, at=2, count=2),
        FaultSpec("duplicate_delivery", SITE_FETCH, at=6, param=3),
        FaultSpec("task_timeout", SITE_OFFLOAD, at=0, target="edge"),
    ), seed=seed, name="robustness-gate")


def seeded_cluster(seed: int, injector: FaultInjector | None):
    cluster = LogCluster(num_brokers=3)
    cluster.create_topic(TopicConfig("events", partitions=2, replication=2))
    producer = Producer(cluster, clock=SimClock(), idempotent=True)
    for element in reference_events(seed=seed, n=200):
        producer.send("events", element.value,
                      key=str(element.value["k"]),
                      timestamp=element.timestamp)
    if injector is None:
        return cluster
    return ChaosLogCluster(cluster, injector)


def check_streaming_recovery(seed: int) -> tuple[bool, list]:
    print("\n== streaming recovery (log-backed, all modes) ==")
    ok = True
    traces = []
    for batch_mode, chaining in MODES:
        golden = fault_free_sinks(
            lambda: reference_job(
                log_source(seeded_cluster(seed, None), "events")),
            batch_mode=batch_mode, chaining=chaining)
        injector = FaultInjector(the_schedule(seed))
        chaos = seeded_cluster(seed, injector)
        report = run_with_recovery(
            reference_job(log_source(chaos, "events")), injector,
            batch_mode=batch_mode, chaining=chaining)
        identical = report.sink_values == golden
        ok = ok and identical
        traces.append(injector.trace_tuples())
        mode = ("chained" if chaining else
                "batched" if batch_mode else "per-item")
        print(f"  {mode:>8}: crashes={report.crashes} "
              f"broker_faults={report.broker_faults} "
              f"restores={report.restores} "
              f"sinks {'IDENTICAL' if identical else 'DIVERGED'}")
    return ok, traces


def check_offload_timeout(seed: int) -> bool:
    print("\n== offload timeout absorption ==")
    rngs = RngRegistry(seed)
    topology = Topology(rngs.get("net"))
    topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
    topology.add_link("device", "edge", LINK_PRESETS["wifi"])
    topology.add_link("edge", "cloud", LINK_PRESETS["wan"])
    runner = OffloadRunner(OffloadPlanner(topology, "device"),
                           injector=FaultInjector(the_schedule(seed)),
                           clock=SimClock())
    pipeline = vision_pipeline(StageProfile(
        pixels=320 * 240, features=200, matches=80, ransac_iterations=50))
    result = runner.execute(pipeline)
    served = bool(result.attempts and result.attempts[-1].ok)
    print(f"  timeouts={result.timeouts} final_tier={result.tier} "
          f"degraded={result.degraded} "
          f"frame {'SERVED' if served else 'DROPPED'}")
    return served and result.timeouts >= 1


def check_recovery_mttr(seed: int) -> bool:
    """Regional recovery must beat a whole-job restart on replay volume.

    The two-region plan decomposes into independent failover regions, so
    a crash in pipeline A rewinds only ``events_a`` while pipeline B
    keeps its position — the coordinated supervisor reports both what it
    actually replayed and what a full restart to the same checkpoint
    would have re-read.
    """
    print("\n== recovery MTTR (regional vs full restart) ==")

    def build():
        return two_region_job(reference_events(seed=seed, n=200),
                              reference_events(seed=seed + 1, n=200))

    golden = fault_free_sinks(build, parallelism=2, source_batch=16)
    plan = FaultPlan(specs=(
        FaultSpec("operator_crash", SITE_OPERATOR, at=70,
                  target="window_a"),
    ), seed=seed, name="mttr-gate")
    injector = FaultInjector(plan)
    report = run_coordinated(build(), injector, parallelism=2,
                             source_batch=16, interval_cycles=2)
    exactly_once = (canonical_sinks(report.sink_values)
                    == canonical_sinks(golden))
    regional = report.regional_restores >= 1 and report.full_restores == 0
    beats_full = report.replayed_total < report.replayed_full_equiv
    print(f"  crashes={report.crashes} "
          f"regional_restores={report.regional_restores} "
          f"full_restores={report.full_restores} "
          f"checkpoints={report.checkpoints}")
    print(f"  replayed={report.replayed_total} vs "
          f"full-restart-equivalent={report.replayed_full_equiv} "
          f"(saved {report.replayed_full_equiv - report.replayed_total}) "
          f"{'REGIONAL' if regional else 'FULL'} "
          f"sinks {'EXACTLY-ONCE' if exactly_once else 'DIVERGED'}")
    return exactly_once and regional and beats_full


# -- data-fault tolerance (the `--datafault` gate) ---------------------------


def _rrepr(values: list) -> list[str]:
    """Bit-exact comparison that treats NaN as equal to itself
    (corrupted records legitimately carry NaN values/timestamps)."""
    return [repr(v) for v in values]


def _data_specs() -> tuple[FaultSpec, ...]:
    return (FaultSpec("udf_exception", SITE_DATA, at=13, count=3,
                      target="double"),
            FaultSpec("corrupt_value", SITE_DATA, at=57, count=2,
                      param="nan", target="double"))


def _crash_specs() -> tuple[FaultSpec, ...]:
    return (FaultSpec("operator_crash", SITE_OPERATOR, at=40,
                      target="window_sum"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=120,
                      target="double"))


def _guarded_reference(seed: int):
    from repro.streaming.errors import DEAD_LETTER

    job = reference_job(reference_events(seed=seed, n=200))
    job.error_policies["double"] = DEAD_LETTER
    job.error_policies["drop_tiny"] = DEAD_LETTER
    return job


def check_dlq_exactly_once(seed: int) -> bool:
    """Committed sink + committed DLQ under data faults must not move
    when operator crashes are layered on top — and a rerun of the same
    schedule must be bit-identical."""
    print("\n== DLQ exactly-once under data faults x crashes ==")
    ok = True
    for parallelism in (None, 1, 2, 4):
        for batch_mode, chaining in MODES:
            def once(specs):
                injector = FaultInjector(FaultPlan(
                    specs=specs, seed=seed, name="datafault-gate"))
                if parallelism is None:
                    report = run_with_recovery(
                        _guarded_reference(seed), injector,
                        batch_mode=batch_mode, chaining=chaining)
                else:
                    report = run_coordinated(
                        _guarded_reference(seed), injector,
                        parallelism=parallelism, batch_mode=batch_mode,
                        chaining=chaining, interval_cycles=2)
                return {name: _rrepr(values) for name, values
                        in report.sink_values.items()}, report
            golden, _ = once(_data_specs())
            chaosed, report = once(_data_specs() + _crash_specs())
            rerun, _ = once(_data_specs() + _crash_specs())
            identical = golden == chaosed and chaosed == rerun
            ok = ok and identical and report.crashes >= 1
            mode = ("chained" if chaining else
                    "batched" if batch_mode else "per-item")
            label = ("supervised" if parallelism is None
                     else f"coordinated p={parallelism}")
            dlq = len(golden.get("__dlq__", ()))
            print(f"  {label:>15} {mode:>8}: dlq={dlq} "
                  f"crashes={report.crashes} "
                  f"{'IDENTICAL' if identical else 'DIVERGED'}")
    return ok


def check_dlq_accounting(seed: int) -> bool:
    """On a pass-through pipeline, committed sink + dead-lettered
    originals must partition the fault-free output exactly."""
    from repro.streaming import Element, JobBuilder
    from repro.streaming.errors import DEAD_LETTER

    print("\n== DLQ accounting (sink + DLQ partitions the input) ==")

    def build():
        events = [Element({"k": i % 4, "v": float(i)},
                          timestamp=float(i) * 0.25) for i in range(300)]
        builder = JobBuilder("datafault-accounting")
        (builder.source("events", events)
                .map(lambda v: v, name="ident")
                .on_error(DEAD_LETTER)
                .sink("out"))
        return builder.build()

    golden = fault_free_sinks(build)
    specs = (FaultSpec("udf_exception", SITE_DATA, at=11, count=5,
                       target="ident"),
             FaultSpec("operator_crash", SITE_OPERATOR, at=150,
                       target="ident"))
    injector = FaultInjector(FaultPlan(specs=specs, seed=seed,
                                       name="accounting-gate"))
    report = run_with_recovery(build(), injector)
    sink = report.sink_values["out"]
    dlq = report.sink_values["__dlq__"]
    union = sorted(_rrepr(sink) + _rrepr([d.value for d in dlq]))
    partitions = union == sorted(_rrepr(golden["out"]))
    disjoint = len(sink) + len(dlq) == len(golden["out"])
    print(f"  sink={len(sink)} dlq={len(dlq)} "
          f"fault-free={len(golden['out'])} "
          f"{'PARTITIONS' if partitions and disjoint else 'LEAKS'}")
    return partitions and disjoint and len(dlq) == 5


def check_checkpoint_integrity(seed: int) -> bool:
    """Rotting the newest checkpoints must quarantine them and fall
    back to the newest verifiable one — output still exactly-once."""
    from repro.streaming.coordinator import CheckpointStore

    print("\n== checkpoint integrity (corruption -> fallback restore) ==")
    golden = run_coordinated(_guarded_reference(seed), None,
                             parallelism=2, interval_cycles=1,
                             source_batch=16)
    specs = (FaultSpec("checkpoint_corruption", SITE_CHECKPOINT, at=2,
                       count=1000, param="payload"),
             FaultSpec("operator_crash", SITE_OPERATOR, at=110,
                       target="window_sum"))
    store = CheckpointStore(keep=100)
    report = run_coordinated(
        _guarded_reference(seed),
        FaultInjector(FaultPlan(specs=specs, seed=seed,
                                name="integrity-gate")),
        parallelism=2, interval_cycles=1, source_batch=16, store=store)
    identical = all(
        _rrepr(golden.sink_values[name]) == _rrepr(report.sink_values[name])
        for name in golden.sink_values)
    detected = report.integrity_failures >= 1 and bool(store.quarantined)
    print(f"  quarantined={len(store.quarantined)} "
          f"integrity_failures={report.integrity_failures} "
          f"full_restores={report.full_restores} "
          f"sinks {'IDENTICAL' if identical else 'DIVERGED'}")
    return identical and detected


def check_restart_budget(seed: int) -> bool:
    """A persistently poisoned record under FAIL policy must terminate
    with a RestartsExhausted diagnostic, not loop forever."""
    from repro.streaming.errors import RestartBudget
    from repro.util.errors import RestartsExhausted

    print("\n== restart budget (poisoned job goes terminal) ==")
    specs = (FaultSpec("udf_exception", SITE_DATA, at=40, count=1,
                       target="double"),)

    def poisoned():
        return reference_job(reference_events(seed=seed, n=200))

    outcomes = []
    for label, budget in (
            ("flapping", RestartBudget(max_restarts=50, flap_threshold=3,
                                       seed=seed)),
            ("budget", RestartBudget(max_restarts=3, flap_threshold=0,
                                     seed=seed))):
        try:
            run_with_recovery(
                poisoned(),
                FaultInjector(FaultPlan(specs=specs, seed=seed,
                                        name="budget-gate")),
                restart_budget=budget)
            outcomes.append((label, None))
        except RestartsExhausted as exc:
            outcomes.append((label, exc))
    ok = True
    for label, exc in outcomes:
        hit = exc is not None and exc.reason == label
        ok = ok and hit
        print(f"  {label:>8}: "
              + (f"terminal after {exc.restarts} restarts"
                 if hit else "DID NOT ESCALATE"))
    return ok


def check_datafault(seed: int) -> bool:
    return (check_dlq_exactly_once(seed)
            and check_dlq_accounting(seed)
            and check_checkpoint_integrity(seed)
            and check_restart_budget(seed))


def check_trace_reproducibility(seed: int, first: list) -> bool:
    print("\n== trace reproducibility (same seed, second run) ==")
    _, second = check_quietly(seed)
    same = first == second
    print(f"  {len(first[0])} fired faults per streaming mode; "
          f"traces {'MATCH' if same else 'DIFFER'}")
    return same


def check_quietly(seed: int) -> tuple[bool, list]:
    traces = []
    ok = True
    for batch_mode, chaining in MODES:
        injector = FaultInjector(the_schedule(seed))
        chaos = seeded_cluster(seed, injector)
        report = run_with_recovery(
            reference_job(log_source(chaos, "events")), injector,
            batch_mode=batch_mode, chaining=chaining)
        ok = ok and bool(report.failures)
        traces.append(injector.trace_tuples())
    return ok, traces


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the marked pytest suite")
    parser.add_argument("--datafault", action="store_true",
                        help="run the data-fault tolerance gate instead "
                             "(datafault suite + DLQ/integrity/budget)")
    args = parser.parse_args()

    if args.datafault:
        gate = Gate("check_robustness[datafault]")
        if not args.skip_tests and not run_suite("datafault test suite",
                                                 "datafault"):
            return gate.fail("datafault suite")
        return gate.verdict(check_datafault(args.seed),
                            "data-fault tolerance checks")

    gate = Gate("check_robustness")
    if not args.skip_tests and not run_suite("chaos test suite",
                                             "chaos or slow"):
        return gate.fail("chaos suite")
    recovered, traces = check_streaming_recovery(args.seed)
    if not recovered:
        return gate.fail("recovered sinks diverged")
    if not check_offload_timeout(args.seed):
        return gate.fail("offload frame not served")
    if not check_trace_reproducibility(args.seed, traces):
        return gate.fail("fault trace not reproducible")
    if not check_recovery_mttr(args.seed):
        return gate.fail("regional recovery did not beat a full restart")
    return gate.ok()


if __name__ == "__main__":
    sys.exit(main())
