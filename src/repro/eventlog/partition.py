"""A single append-only partition with retention and compaction.

Offsets are absolute and never reused: after retention truncates the
head, ``base_offset`` records where the retained range starts, exactly
like Kafka's log start offset.  Compaction keeps the latest record per
key (plus all keyless records), preserving offsets.
"""

from __future__ import annotations

from ..util.errors import OffsetOutOfRange
from .record import Record

__all__ = ["Partition"]


class Partition:
    """Append-only record sequence with absolute offsets."""

    def __init__(self, topic: str, index: int) -> None:
        self.topic = topic
        self.index = index
        self._records: list[Record | None] = []  # None = compacted away
        self._base_offset = 0
        self._size_bytes = 0

    # -- write path --------------------------------------------------------

    def append(self, record: Record) -> int:
        """Append and return the record's absolute offset."""
        self._records.append(record)
        self._size_bytes += record.size_bytes
        return self._base_offset + len(self._records) - 1

    # -- read path ---------------------------------------------------------

    @property
    def base_offset(self) -> int:
        """First retained absolute offset."""
        return self._base_offset

    @property
    def end_offset(self) -> int:
        """Offset the *next* append will receive (= high watermark)."""
        return self._base_offset + len(self._records)

    @property
    def size_bytes(self) -> int:
        return self._size_bytes

    def __len__(self) -> int:
        """Number of retained (non-compacted) records."""
        return sum(1 for r in self._records if r is not None)

    def read(self, offset: int, max_records: int = 512) -> list[tuple[int, Record]]:
        """Read up to ``max_records`` starting at absolute ``offset``.

        Reading at ``end_offset`` returns an empty list (caught up).
        Reading before ``base_offset`` or past the end raises
        :class:`OffsetOutOfRange` — consumers must seek explicitly.
        """
        if offset == self.end_offset:
            return []
        if offset < self._base_offset or offset > self.end_offset:
            raise OffsetOutOfRange(
                f"{self.topic}[{self.index}]: offset {offset} outside "
                f"[{self._base_offset}, {self.end_offset}]"
            )
        out: list[tuple[int, Record]] = []
        i = offset - self._base_offset
        while i < len(self._records) and len(out) < max_records:
            record = self._records[i]
            if record is not None:
                out.append((self._base_offset + i, record))
            i += 1
        return out

    def get(self, offset: int) -> Record:
        """Fetch a single record by absolute offset."""
        rows = self.read(offset, max_records=1)
        if not rows or rows[0][0] != offset:
            raise OffsetOutOfRange(
                f"{self.topic}[{self.index}]: no record at offset {offset}"
            )
        return rows[0][1]

    # -- retention ----------------------------------------------------------

    def truncate_before(self, offset: int) -> int:
        """Drop records with offsets < ``offset``; returns count dropped."""
        if offset <= self._base_offset:
            return 0
        cut = min(offset, self.end_offset) - self._base_offset
        dropped = self._records[:cut]
        self._records = self._records[cut:]
        self._base_offset += cut
        self._size_bytes -= sum(r.size_bytes for r in dropped if r is not None)
        return sum(1 for r in dropped if r is not None)

    def enforce_retention(self, max_bytes: int | None = None,
                          min_timestamp: float | None = None) -> int:
        """Apply size and/or time retention; returns records dropped."""
        dropped = 0
        if min_timestamp is not None:
            # Find first index with timestamp >= min_timestamp; records are
            # appended in time order by convention, so a scan suffices.
            i = 0
            while i < len(self._records):
                record = self._records[i]
                if record is not None and record.timestamp >= min_timestamp:
                    break
                i += 1
            dropped += self.truncate_before(self._base_offset + i)
        if max_bytes is not None:
            while self._size_bytes > max_bytes and self._records:
                dropped += self.truncate_before(self._base_offset + 1)
        return dropped

    def clone(self) -> "Partition":
        """Exact copy of retained state (records are immutable, shared)."""
        twin = Partition(self.topic, self.index)
        twin._records = list(self._records)
        twin._base_offset = self._base_offset
        twin._size_bytes = self._size_bytes
        return twin

    def compact(self) -> int:
        """Keep only the newest record per key; returns records removed.

        Keyless records are always retained.  Offsets of survivors are
        unchanged (tombstoned slots stay as ``None`` placeholders).
        """
        latest_index: dict[str, int] = {}
        for i, record in enumerate(self._records):
            if record is not None and record.key is not None:
                latest_index[record.key] = i
        removed = 0
        for i, record in enumerate(self._records):
            if record is None or record.key is None:
                continue
            if latest_index[record.key] != i:
                self._size_bytes -= record.size_bytes
                self._records[i] = None
                removed += 1
        return removed
