"""Probabilistic sketches for high-velocity streams.

The "velocity" leg of the 3Vs: these structures summarize unbounded
streams in bounded memory with quantified error —

- :class:`CountMinSketch` — frequency estimates, one-sided error
- :class:`BloomFilter` — set membership, no false negatives
- :class:`HyperLogLog` — cardinality estimation
- :class:`ReservoirSample` — uniform sample of a stream

All are deterministic given their construction parameters (hash seeds
are fixed), so tests can assert exact behaviour.  The ``add_many``
batch paths hash whole key arrays with a numpy FNV-1a kernel that is
bit-identical to the scalar ``_hash64`` — per-item and batched inserts
produce the same tables/registers.
"""

from __future__ import annotations

import math
from typing import Iterable, Sequence

import numpy as np

from ..util.errors import ConfigError

__all__ = ["CountMinSketch", "BloomFilter", "HyperLogLog", "ReservoirSample"]


def _hash64(data: str, seed: int) -> int:
    """Seeded FNV-1a 64-bit hash (stable across processes)."""
    h = (1469598103934665603 ^ (seed * 0x9E3779B97F4A7C15)) % (1 << 64)
    for byte in data.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) % (1 << 64)
    # Final avalanche (xorshift-multiply) to decorrelate seeds.
    h ^= h >> 33
    h = (h * 0xFF51AFD7ED558CCD) % (1 << 64)
    h ^= h >> 33
    return h


_FNV_PRIME = np.uint64(1099511628211)
_AVALANCHE = np.uint64(0xFF51AFD7ED558CCD)
_SHIFT33 = np.uint64(33)


def _hash64_many(items: Sequence[str], seed: int) -> np.ndarray:
    """Vectorized seeded FNV-1a: hash every string at once.

    Strings are encoded into a padded byte matrix; the byte-sequential
    FNV fold then runs *across items* one byte-column at a time, so the
    Python-level loop is O(longest key) instead of O(total bytes).
    Bit-identical to :func:`_hash64` (uint64 wraparound arithmetic).
    """
    n = len(items)
    init = (1469598103934665603 ^ (seed * 0x9E3779B97F4A7C15)) % (1 << 64)
    h = np.full(n, init, dtype=np.uint64)
    if n == 0:
        return h
    encoded = [s.encode("utf-8") for s in items]
    lengths = np.fromiter((len(b) for b in encoded), dtype=np.int64, count=n)
    max_len = int(lengths.max())
    buf = np.zeros((n, max_len), dtype=np.uint8)
    for i, b in enumerate(encoded):
        if b:
            buf[i, :len(b)] = np.frombuffer(b, dtype=np.uint8)
    for j in range(max_len):
        active = lengths > j
        if active.all():
            h = (h ^ buf[:, j].astype(np.uint64)) * _FNV_PRIME
        else:
            h[active] = ((h[active] ^ buf[active, j].astype(np.uint64))
                         * _FNV_PRIME)
    h ^= h >> _SHIFT33
    h *= _AVALANCHE
    h ^= h >> _SHIFT33
    return h


def _bit_length64(values: np.ndarray) -> np.ndarray:
    """Vectorized ``int.bit_length`` for uint64 arrays (exact — no float
    round-trip, which loses precision above 2**53)."""
    bits = np.zeros(values.shape, dtype=np.int64)
    v = values.copy()
    for shift in (32, 16, 8, 4, 2, 1):
        mask = v >= np.uint64(1 << shift)
        bits[mask] += shift
        v[mask] >>= np.uint64(shift)
    bits += (v > 0)
    return bits


class CountMinSketch:
    """Frequency estimation: estimate >= true, overestimate bounded.

    Width/depth derive from (epsilon, delta): error <= epsilon * N with
    probability 1 - delta.
    """

    def __init__(self, epsilon: float = 0.001, delta: float = 0.01) -> None:
        if not 0 < epsilon < 1 or not 0 < delta < 1:
            raise ConfigError("epsilon and delta must be in (0, 1)")
        self.width = max(1, math.ceil(math.e / epsilon))
        self.depth = max(1, math.ceil(math.log(1.0 / delta)))
        self._table = np.zeros((self.depth, self.width), dtype=np.int64)
        self.total = 0

    def _indices(self, item: str) -> list[int]:
        return [_hash64(item, row) % self.width for row in range(self.depth)]

    def add(self, item: str, count: int = 1) -> None:
        if count < 0:
            raise ConfigError("count must be non-negative")
        for row, col in enumerate(self._indices(item)):
            self._table[row, col] += count
        self.total += count

    def add_many(self, items: Iterable[str],
                 counts: Iterable[int] | None = None) -> None:
        """Batch insert: one vectorized hash pass per sketch row.

        Equivalent to ``add`` in a loop (additions commute, duplicate
        columns are handled by the unbuffered ``np.add.at``).
        """
        items = list(items)
        if not items:
            return
        if counts is None:
            count_arr = np.ones(len(items), dtype=np.int64)
        else:
            count_arr = np.asarray(list(counts), dtype=np.int64)
            if count_arr.shape != (len(items),):
                raise ConfigError("counts must match items in length")
            if (count_arr < 0).any():
                raise ConfigError("count must be non-negative")
        width = np.uint64(self.width)
        for row in range(self.depth):
            cols = (_hash64_many(items, row) % width).astype(np.int64)
            np.add.at(self._table[row], cols, count_arr)
        self.total += int(count_arr.sum())

    def estimate(self, item: str) -> int:
        return int(min(self._table[row, col]
                       for row, col in enumerate(self._indices(item))))

    def estimate_many(self, items: Sequence[str]) -> np.ndarray:
        """Vectorized ``estimate`` over many keys."""
        if not len(items):
            return np.zeros(0, dtype=np.int64)
        estimates = np.full(len(items), np.iinfo(np.int64).max,
                            dtype=np.int64)
        width = np.uint64(self.width)
        for row in range(self.depth):
            cols = (_hash64_many(items, row) % width).astype(np.int64)
            np.minimum(estimates, self._table[row, cols], out=estimates)
        return estimates

    def merge(self, other: "CountMinSketch") -> None:
        if (self.width, self.depth) != (other.width, other.depth):
            raise ConfigError("cannot merge sketches of different shape")
        self._table += other._table
        self.total += other.total

    @property
    def memory_cells(self) -> int:
        return self.width * self.depth


class BloomFilter:
    """Set membership with tunable false-positive rate, no false negatives."""

    def __init__(self, capacity: int, fp_rate: float = 0.01) -> None:
        if capacity < 1:
            raise ConfigError("capacity must be >= 1")
        if not 0 < fp_rate < 1:
            raise ConfigError("fp_rate must be in (0, 1)")
        self.capacity = capacity
        self.fp_rate = fp_rate
        self.num_bits = max(8, math.ceil(
            -capacity * math.log(fp_rate) / (math.log(2) ** 2)))
        self.num_hashes = max(1, round(self.num_bits / capacity * math.log(2)))
        self._bits = np.zeros(self.num_bits, dtype=bool)
        self.added = 0

    def add(self, item: str) -> None:
        for seed in range(self.num_hashes):
            self._bits[_hash64(item, seed) % self.num_bits] = True
        self.added += 1

    def add_many(self, items: Iterable[str]) -> None:
        """Batch insert: one vectorized hash pass per hash function."""
        items = list(items)
        if not items:
            return
        num_bits = np.uint64(self.num_bits)
        for seed in range(self.num_hashes):
            idx = (_hash64_many(items, seed) % num_bits).astype(np.int64)
            self._bits[idx] = True
        self.added += len(items)

    def __contains__(self, item: str) -> bool:
        return all(self._bits[_hash64(item, seed) % self.num_bits]
                   for seed in range(self.num_hashes))

    def contains_many(self, items: Sequence[str]) -> np.ndarray:
        """Vectorized membership test; returns a boolean array."""
        if not len(items):
            return np.zeros(0, dtype=bool)
        result = np.ones(len(items), dtype=bool)
        num_bits = np.uint64(self.num_bits)
        for seed in range(self.num_hashes):
            idx = (_hash64_many(items, seed) % num_bits).astype(np.int64)
            result &= self._bits[idx]
        return result

    @property
    def fill_ratio(self) -> float:
        return float(self._bits.mean())


class HyperLogLog:
    """Cardinality estimation with ~1.04/sqrt(2^p) relative error."""

    def __init__(self, precision: int = 12) -> None:
        if not 4 <= precision <= 18:
            raise ConfigError("precision must be in [4, 18]")
        self.precision = precision
        self.m = 1 << precision
        self._registers = np.zeros(self.m, dtype=np.uint8)
        if self.m >= 128:
            self._alpha = 0.7213 / (1 + 1.079 / self.m)
        elif self.m == 64:
            self._alpha = 0.709
        elif self.m == 32:
            self._alpha = 0.697
        else:
            self._alpha = 0.673

    def add(self, item: str) -> None:
        h = _hash64(item, 0)
        register = h >> (64 - self.precision)
        remainder = h & ((1 << (64 - self.precision)) - 1)
        # rho = position of leftmost 1-bit in the remainder
        rho = (64 - self.precision) - remainder.bit_length() + 1
        if rho > self._registers[register]:
            self._registers[register] = rho

    def add_many(self, items: Iterable[str]) -> None:
        """Batch insert: vectorized hash + leading-zero count; duplicate
        registers resolve through the unbuffered ``np.maximum.at``."""
        items = list(items)
        if not items:
            return
        h = _hash64_many(items, 0)
        tail_bits = 64 - self.precision
        registers = (h >> np.uint64(tail_bits)).astype(np.int64)
        remainders = h & np.uint64((1 << tail_bits) - 1)
        rho = (tail_bits - _bit_length64(remainders) + 1).astype(np.uint8)
        np.maximum.at(self._registers, registers, rho)

    def estimate(self) -> float:
        registers = self._registers.astype(np.float64)
        raw = self._alpha * self.m ** 2 / np.sum(2.0 ** -registers)
        zeros = int(np.sum(self._registers == 0))
        if raw <= 2.5 * self.m and zeros > 0:
            return self.m * math.log(self.m / zeros)  # linear counting
        return float(raw)

    def merge(self, other: "HyperLogLog") -> None:
        if self.precision != other.precision:
            raise ConfigError("cannot merge HLLs of different precision")
        np.maximum(self._registers, other._registers, out=self._registers)


class ReservoirSample:
    """Uniform sample of size k over a stream (Algorithm R)."""

    def __init__(self, k: int, rng: np.random.Generator) -> None:
        if k < 1:
            raise ConfigError("k must be >= 1")
        self.k = k
        self._rng = rng
        self._sample: list = []
        self.seen = 0

    def add(self, item) -> None:
        self.seen += 1
        if len(self._sample) < self.k:
            self._sample.append(item)
            return
        j = int(self._rng.integers(0, self.seen))
        if j < self.k:
            self._sample[j] = item

    def sample(self) -> list:
        return list(self._sample)
