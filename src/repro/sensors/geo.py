"""Geospatial primitives: haversine distance, local ENU projection,
geohash encoding.

AR travel guides key everything off geospatial coordinates (Section
3.2); these helpers are shared by the mobility generators, the POI
database and the location-privacy mechanisms.
"""

from __future__ import annotations

import math

from ..util.errors import ConfigError

__all__ = ["EARTH_RADIUS_M", "haversine_m", "LocalProjection",
           "geohash_encode", "geohash_decode"]

EARTH_RADIUS_M = 6_371_000.0

_BASE32 = "0123456789bcdefghjkmnpqrstuvwxyz"


def haversine_m(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres."""
    phi1, phi2 = math.radians(lat1), math.radians(lat2)
    dphi = phi2 - phi1
    dlambda = math.radians(lon2 - lon1)
    a = (math.sin(dphi / 2) ** 2
         + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2) ** 2)
    return 2 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))


class LocalProjection:
    """Equirectangular projection around an origin — metres east/north.

    Accurate to well under 1% over city scales, which is all the
    experiments need; exact round-trip with :meth:`inverse`.
    """

    def __init__(self, origin_lat: float, origin_lon: float) -> None:
        if not -90 <= origin_lat <= 90 or not -180 <= origin_lon <= 180:
            raise ConfigError("origin out of range")
        self.origin_lat = origin_lat
        self.origin_lon = origin_lon
        self._cos_lat = math.cos(math.radians(origin_lat))

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        x = math.radians(lon - self.origin_lon) * EARTH_RADIUS_M * self._cos_lat
        y = math.radians(lat - self.origin_lat) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x: float, y: float) -> tuple[float, float]:
        lat = self.origin_lat + math.degrees(y / EARTH_RADIUS_M)
        lon = self.origin_lon + math.degrees(
            x / (EARTH_RADIUS_M * self._cos_lat))
        return lat, lon

    # alias used by callers that think in "inverse projection" terms
    inverse = to_latlon


def geohash_encode(lat: float, lon: float, precision: int = 9) -> str:
    """Standard geohash (interleaved lat/lon bits, base32)."""
    if not -90 <= lat <= 90 or not -180 <= lon <= 180:
        raise ConfigError("lat/lon out of range")
    if precision < 1:
        raise ConfigError("precision must be >= 1")
    lat_range = [-90.0, 90.0]
    lon_range = [-180.0, 180.0]
    bits = []
    even = True
    while len(bits) < precision * 5:
        if even:
            mid = (lon_range[0] + lon_range[1]) / 2
            if lon >= mid:
                bits.append(1)
                lon_range[0] = mid
            else:
                bits.append(0)
                lon_range[1] = mid
        else:
            mid = (lat_range[0] + lat_range[1]) / 2
            if lat >= mid:
                bits.append(1)
                lat_range[0] = mid
            else:
                bits.append(0)
                lat_range[1] = mid
        even = not even
    out = []
    for i in range(0, len(bits), 5):
        value = 0
        for bit in bits[i:i + 5]:
            value = (value << 1) | bit
        out.append(_BASE32[value])
    return "".join(out)


def geohash_decode(geohash: str) -> tuple[float, float]:
    """Centre (lat, lon) of the geohash cell."""
    if not geohash:
        raise ConfigError("empty geohash")
    lat_range = [-90.0, 90.0]
    lon_range = [-180.0, 180.0]
    even = True
    for char in geohash:
        try:
            value = _BASE32.index(char)
        except ValueError:
            raise ConfigError(f"invalid geohash character {char!r}") from None
        for shift in range(4, -1, -1):
            bit = (value >> shift) & 1
            target = lon_range if even else lat_range
            mid = (target[0] + target[1]) / 2
            if bit:
                target[0] = mid
            else:
                target[1] = mid
            even = not even
    return ((lat_range[0] + lat_range[1]) / 2,
            (lon_range[0] + lon_range[1]) / 2)
