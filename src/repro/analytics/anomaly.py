"""Streaming anomaly detection.

Used by the healthcare experiment (F8: vitals monitoring with immediate
AR notification) and the public-services experiment (traffic threat
assessment).  EWMA mean/variance tracking with z-score alarms; a simple
threshold detector for hard clinical limits.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..util.errors import ConfigError

__all__ = ["Alarm", "EwmaDetector", "ThresholdDetector"]


@dataclass(frozen=True)
class Alarm:
    """One raised anomaly."""

    timestamp: float
    value: float
    score: float
    kind: str


class EwmaDetector:
    """Exponentially weighted mean/std with z-score alarming.

    A warm-up period suppresses alarms until the baseline stabilizes.
    """

    def __init__(self, alpha: float = 0.05, threshold: float = 4.0,
                 warmup: int = 30) -> None:
        if not 0 < alpha <= 1:
            raise ConfigError("alpha must be in (0, 1]")
        if threshold <= 0:
            raise ConfigError("threshold must be positive")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self._mean: float | None = None
        self._var = 0.0
        self.observed = 0
        self.alarms: list[Alarm] = []

    def add(self, value: float, timestamp: float = 0.0) -> Alarm | None:
        value = float(value)
        self.observed += 1
        if self._mean is None:
            self._mean = value
            return None
        diff = value - self._mean
        std = math.sqrt(self._var) if self._var > 0 else 0.0
        score = abs(diff) / std if std > 0 else 0.0
        alarm = None
        if self.observed > self.warmup and score > self.threshold:
            alarm = Alarm(timestamp=timestamp, value=value, score=score,
                          kind="ewma-z")
            self.alarms.append(alarm)
            # Do not fold outliers into the baseline; robustness against
            # level shifts comes from alpha.
            return alarm
        self._mean += self.alpha * diff
        self._var = (1 - self.alpha) * (self._var + self.alpha * diff ** 2)
        return alarm

    @property
    def mean(self) -> float:
        return self._mean if self._mean is not None else math.nan

    @property
    def std(self) -> float:
        return math.sqrt(self._var)


class ThresholdDetector:
    """Hard limits (e.g. clinical vital ranges)."""

    def __init__(self, low: float | None = None,
                 high: float | None = None) -> None:
        if low is None and high is None:
            raise ConfigError("at least one of low/high must be set")
        if low is not None and high is not None and low >= high:
            raise ConfigError("low must be below high")
        self.low = low
        self.high = high
        self.alarms: list[Alarm] = []

    def add(self, value: float, timestamp: float = 0.0) -> Alarm | None:
        value = float(value)
        breached = ((self.low is not None and value < self.low)
                    or (self.high is not None and value > self.high))
        if not breached:
            return None
        reference = self.low if (self.low is not None
                                 and value < self.low) else self.high
        score = abs(value - reference)
        alarm = Alarm(timestamp=timestamp, value=value, score=score,
                      kind="threshold")
        self.alarms.append(alarm)
        return alarm
