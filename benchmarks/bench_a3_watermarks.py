"""Ablation A3: watermark lateness vs window correctness vs latency.

The event-time machinery behind every streaming experiment: with
out-of-order arrivals, a tight watermark emits results early but drops
late data (wrong counts); a loose watermark waits longer but is exact.
We sweep the out-of-orderness bound against a stream with known skew and
report dropped-late counts, window-count error, and result delay.
"""

import numpy as np

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    TumblingWindows,
)
from repro.util.rng import make_rng

from tableprint import print_table

N = 4_000
TRUE_WINDOW = 10.0
SKEW_STD = 3.0  # arrival delay std in seconds
LATENESS = [0.0, 2.0, 5.0, 10.0, 20.0]


def _out_of_order_elements():
    rng = make_rng(73)
    rows = []
    for i in range(N):
        event_time = i * (400.0 / N)  # 400 s of event time
        delay = abs(float(rng.normal(0.0, SKEW_STD)))
        rows.append((event_time + delay, event_time))
    rows.sort()  # arrival order = event time + random delay
    return [Element(value={"t": et}, timestamp=et)
            for _arrival, et in rows]


def run_experiment():
    elements = _out_of_order_elements()
    true_counts = {}
    for element in elements:
        start = (element.timestamp // TRUE_WINDOW) * TRUE_WINDOW
        true_counts[start] = true_counts.get(start, 0) + 1
    rows = []
    for lateness in LATENESS:
        builder = JobBuilder(f"wm-{lateness}")
        (builder.source("s", list(elements))
                .with_watermarks(lateness)
                .key_by(lambda v: 0)
                .window(TumblingWindows(TRUE_WINDOW), "count")
                .sink("out"))
        executor = Executor(builder.build())
        sinks = executor.run()
        window_op = executor.job.operators["window_0"]
        got_counts = {r.window.start: r.value
                      for r in sinks["out"].values}
        errors = [abs(got_counts.get(start, 0) - count)
                  for start, count in true_counts.items()]
        rows.append([lateness, window_op.dropped_late,
                     int(np.sum(errors)),
                     float(np.mean(errors)),
                     lateness + TRUE_WINDOW])  # result delay bound
    return rows


def bench_a3_watermarks(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A3  ablation: watermark lateness vs correctness "
        f"(arrival skew std {SKEW_STD}s)",
        ["max lateness s", "dropped late", "total count error",
         "mean error/window", "result delay bound s"],
        rows,
        note="tight watermarks answer fast but drop late data; "
             "~3 sigma of the skew recovers exact counts")
    dropped = [r[1] for r in rows]
    errors = [r[2] for r in rows]
    # Dropping shrinks monotonically with allowed lateness.
    assert all(b <= a for a, b in zip(dropped, dropped[1:]))
    # Zero lateness on a skewed stream loses real data.
    assert dropped[0] > 100
    # Past ~3 sigma the counts are exact.
    assert errors[-1] == 0
    assert dropped[-1] == 0
    # Count error equals dropped records (they are the same elements).
    for row in rows:
        assert row[2] == row[1]
