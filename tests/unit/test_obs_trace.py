"""Unit tests: repro.obs.trace — spans, tracer, propagation."""

import pytest

from repro.obs import NOOP_SPAN, Tracer
from repro.util import SimClock


class TestIds:
    def test_ids_are_deterministic_counters(self):
        tracer = Tracer()
        a = tracer.start_span("a")
        b = tracer.start_span("b", parent=a)
        assert a.trace_id == "t-0000"
        assert (a.span_id, b.span_id) == ("s-00000", "s-00001")

    def test_two_tracers_produce_identical_ids(self):
        ids = []
        for _ in range(2):
            tracer = Tracer()
            root = tracer.start_span("root")
            with tracer.activate(root):
                tracer.start_span("child")
            ids.append([(s.trace_id, s.span_id, s.parent_id)
                        for s in tracer.spans])
        assert ids[0] == ids[1]

    def test_independent_roots_get_fresh_traces(self):
        tracer = Tracer()
        assert tracer.start_span("a").trace_id == "t-0000"
        assert tracer.start_span("b").trace_id == "t-0001"


class TestParenting:
    def test_explicit_parent(self):
        tracer = Tracer()
        parent = tracer.start_span("parent")
        child = tracer.start_span("child", parent=parent)
        assert child.parent_id == parent.span_id
        assert child.trace_id == parent.trace_id

    def test_stack_parenting_via_span_context_manager(self):
        tracer = Tracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                leaf = tracer.start_span("leaf")
        assert inner.parent_id == outer.span_id
        assert leaf.parent_id == inner.span_id
        assert tracer.active is None

    def test_activate_scopes_without_ending(self):
        tracer = Tracer()
        root = tracer.start_span("root")
        with tracer.activate(root):
            child = tracer.start_span("child")
        assert child.parent_id == root.span_id
        assert root.end_time is None  # activate never ends the span
        assert child in tracer.open_spans()

    def test_remote_context_round_trip(self):
        """traceparent header -> parse -> parent across a 'broker hop'."""
        producer_side = Tracer()
        produce = producer_side.start_span("produce")
        header = produce.traceparent

        consumer_side = Tracer()
        ctx = Tracer.parse_traceparent(header)
        consume = consumer_side.start_span("consume", parent=ctx)
        assert consume.trace_id == produce.trace_id
        assert consume.parent_id == produce.span_id

    @pytest.mark.parametrize("garbage", [None, "", "no-separator", "/",
                                         "t-0000/", "/s-00000"])
    def test_parse_traceparent_rejects_garbage(self, garbage):
        assert Tracer.parse_traceparent(garbage) is None


class TestTiming:
    def test_timestamps_come_from_the_clock(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("work")
        clock.advance(1.5)
        span.add_event("midpoint")
        clock.advance(0.5)
        span.end()
        assert span.start_time == 0.0
        assert span.events[0].timestamp == 1.5
        assert span.end_time == 2.0
        assert span.duration == 2.0

    def test_end_is_idempotent(self):
        clock = SimClock()
        tracer = Tracer(clock)
        span = tracer.start_span("work")
        clock.advance(1.0)
        span.end()
        clock.advance(1.0)
        span.end()
        assert span.end_time == 1.0

    def test_open_span_has_zero_duration(self):
        assert Tracer().start_span("open").duration == 0.0

    def test_finished_and_open_partition_the_spans(self):
        tracer = Tracer()
        done = tracer.start_span("done").end()
        still_open = tracer.start_span("open")
        assert tracer.finished() == [done]
        assert tracer.open_spans() == [still_open]


class TestDisabled:
    def test_disabled_tracer_returns_the_shared_noop_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.start_span("anything", attrs={"k": 1})
        assert span is NOOP_SPAN
        assert not span.is_recording
        assert tracer.spans == []

    def test_noop_span_absorbs_the_full_api(self):
        span = Tracer(enabled=False).start_span("x")
        with span:
            span.set_attr("a", 1).add_event("e", detail=2).end()
        assert span.attrs == {}
        assert span.events == []

    def test_disabled_span_context_manager_does_not_stack(self):
        tracer = Tracer(enabled=False)
        with tracer.span("outer"):
            assert tracer.active is None


class TestAttrsAndEvents:
    def test_attrs_at_start_and_via_set_attr(self):
        span = Tracer().start_span("s", attrs={"a": 1})
        span.set_attr("b", 2)
        assert span.attrs == {"a": 1, "b": 2}

    def test_event_attrs(self):
        span = Tracer().start_span("s")
        span.add_event("fault", kind="crash")
        assert span.events[0].name == "fault"
        assert span.events[0].attrs == {"kind": "crash"}
