"""Education scenario (paper intro: AR for teaching; Figure 5's
education field).

An AR classroom: lesson stations carry fiducial markers; scanning one
pops up its content (and fails honestly at distance); quiz streams build
per-student mastery analytics; review hints are anchored at each
student's weakest lesson stations; and a simulated semester measures the
uplift of data-targeted review over handing everyone the same worksheet.

Run:  python examples/ar_classroom.py
"""

from repro import ARBigDataPipeline, PipelineConfig
from repro.apps import EducationApp, Lesson, Student
from repro.core import DEFAULT_INTRINSICS
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(77)
    lessons = [
        Lesson("l-frac", "fractions", marker_id=7, position=(0, 0, 1)),
        Lesson("l-geo", "geometry", marker_id=21, position=(3, 0, 1)),
        Lesson("l-time", "clock-reading", marker_id=42,
               position=(6, 0, 1)),
        Lesson("l-meas", "measurement", marker_id=55, position=(9, 0, 1)),
        Lesson("l-data", "pictographs", marker_id=60, position=(12, 0, 1)),
        Lesson("l-word", "word-problems", marker_id=33,
               position=(15, 0, 1)),
    ]
    app = EducationApp(ARBigDataPipeline(PipelineConfig(seed=77)),
                       lessons)

    # -- marker-triggered pop-ups --------------------------------------------
    print("scanning lesson markers:")
    for distance in (0.4, 1.5, 6.0):
        outcome = app.scan_marker(rng, "l-frac", distance_m=distance,
                                  intrinsics=DEFAULT_INTRINSICS,
                                  noise_sigma=0.02)
        verdict = ("content pops up" if outcome["triggered"]
                   else f"decode failed (got {outcome['decoded']})")
        print(f"  at {distance:3.1f} m: {verdict}")

    # -- one student's quiz history --------------------------------------------
    maya = Student("maya", mastery={
        "fractions": 0.85, "geometry": 0.25, "clock-reading": 0.6,
        "measurement": 0.7, "pictographs": 0.9, "word-problems": 0.35})
    t = 0.0
    for _round in range(25):
        for topic in maya.mastery:
            app.ingest_quiz(maya, topic,
                            maya.answer_correctly(topic, rng), t)
            t += 1.0
    print("\nmaya's estimated mastery:")
    for topic in sorted(maya.mastery):
        estimate = app.estimated_mastery("maya", topic)
        print(f"  {topic:14s} true {maya.mastery[topic]:.2f} "
              f"estimated {estimate:.2f}")
    weak = app.weakest_topics("maya", k=2)
    print(f"review recommendation: {weak}")
    bound = app.publish_review_hints("maya", k=2)
    print(f"{bound} review hints anchored at lesson stations")

    # -- the semester experiment --------------------------------------------------
    outcome = app.run_semester(rng, num_students=30, quiz_rounds=20)
    print(f"\nsemester ({outcome.students} students/arm): targeted "
          f"review gains {outcome.targeted_gain:.3f} mastery vs "
          f"{outcome.untargeted_gain:.3f} untargeted "
          f"(uplift {outcome.uplift:.0%})")


if __name__ == "__main__":
    main()
