"""Unit tests: the CEP pattern operator."""

import pytest

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    PatternMatch,
    PatternOperator,
    PatternStep,
    Watermark,
)
from repro.util.errors import StreamError


def _el(value, ts, key="pt-1"):
    return Element(value=value, timestamp=ts, key=key)


def _vitals_pattern(within=300.0):
    return PatternOperator("sepsis-ish", [
        PatternStep("tachy", lambda v: v.get("hr", 0) > 110),
        PatternStep("hypo", lambda v: v.get("bp", 999) < 90),
    ], within_s=within)


class TestPatternOperator:
    def test_sequence_matches_in_order(self):
        op = _vitals_pattern()
        assert op.handle(_el({"hr": 120}, 10.0)) == []
        out = op.handle(_el({"bp": 80}, 100.0))
        assert len(out) == 1
        match = out[0].value
        assert isinstance(match, PatternMatch)
        assert match.span_s == 90.0
        assert match.events[0]["hr"] == 120
        assert op.matches == 1

    def test_wrong_order_no_match(self):
        op = _vitals_pattern()
        assert op.handle(_el({"bp": 80}, 10.0)) == []
        assert op.handle(_el({"hr": 95}, 20.0)) == []
        assert op.matches == 0

    def test_skip_till_next_match_ignores_noise(self):
        op = _vitals_pattern()
        op.handle(_el({"hr": 120}, 10.0))
        op.handle(_el({"hr": 100}, 20.0))  # noise
        op.handle(_el({"temp": 37.0}, 30.0))  # noise
        out = op.handle(_el({"bp": 85}, 40.0))
        assert len(out) == 1

    def test_window_expiry_restarts(self):
        op = _vitals_pattern(within=100.0)
        op.handle(_el({"hr": 120}, 0.0))
        # The second step arrives too late; partial restarts, so no match.
        assert op.handle(_el({"bp": 80}, 500.0)) == []
        # But the same key can start fresh and complete.
        op.handle(_el({"hr": 130}, 510.0))
        assert len(op.handle(_el({"bp": 70}, 560.0))) == 1

    def test_expired_partial_reseeds_with_current_element(self):
        op = _vitals_pattern(within=100.0)
        op.handle(_el({"hr": 120}, 0.0))
        # Late, but itself a valid *first* step: becomes the new seed.
        assert op.handle(_el({"hr": 140}, 500.0)) == []
        assert len(op.handle(_el({"bp": 80}, 550.0))) == 1

    def test_keys_independent(self):
        op = _vitals_pattern()
        op.handle(_el({"hr": 120}, 0.0, key="a"))
        assert op.handle(_el({"bp": 80}, 10.0, key="b")) == []
        assert len(op.handle(_el({"bp": 80}, 10.0, key="a"))) == 1

    def test_match_resets_state(self):
        op = _vitals_pattern()
        op.handle(_el({"hr": 120}, 0.0))
        op.handle(_el({"bp": 80}, 10.0))
        # A fresh match requires the full sequence again.
        assert op.handle(_el({"bp": 70}, 20.0)) == []
        op.handle(_el({"hr": 125}, 30.0))
        assert len(op.handle(_el({"bp": 60}, 40.0))) == 1

    def test_watermark_gc(self):
        op = _vitals_pattern(within=50.0)
        op.handle(_el({"hr": 120}, 0.0))
        op.handle(Watermark(1000.0))
        assert op.snapshot() == {}

    def test_unkeyed_rejected(self):
        op = _vitals_pattern()
        with pytest.raises(StreamError):
            op.handle(Element(value={"hr": 120}, timestamp=0.0))

    def test_validation(self):
        with pytest.raises(StreamError):
            PatternOperator("p", [PatternStep("only", lambda v: True)],
                            within_s=10.0)
        with pytest.raises(StreamError):
            PatternOperator("p", [PatternStep("a", lambda v: True),
                                  PatternStep("a", lambda v: True)],
                            within_s=10.0)

    def test_snapshot_restore(self):
        op = _vitals_pattern()
        op.handle(_el({"hr": 120}, 0.0))
        snapshot = op.snapshot()
        op.handle(_el({"bp": 80}, 10.0))  # completes
        op.restore(snapshot)
        # Restored to the half-complete state: second step completes it.
        assert len(op.handle(_el({"bp": 85}, 20.0))) == 1

    def test_in_dataflow_graph(self):
        elements = [
            _el({"hr": 120}, 1.0, key="pt-1"),
            _el({"hr": 115}, 2.0, key="pt-2"),
            _el({"bp": 85}, 3.0, key="pt-1"),
            _el({"bp": 95}, 4.0, key="pt-2"),  # bp not low: no match
        ]
        builder = JobBuilder("cep")
        (builder.source("vitals", elements)
                .key_by(lambda v: v.pop("_key") if "_key" in v else None))
        # key is already on the elements; use a pass-through key_by.
        builder2 = JobBuilder("cep2")
        (builder2.source("vitals", elements)
                 .apply(_vitals_pattern())
                 .sink("matches"))
        sinks = Executor(builder2.build()).run()
        assert len(sinks["matches"]) == 1
        assert sinks["matches"].values[0].key == "pt-1"
