"""Event-time window aggregation operator.

Keyed elements are assigned to windows; when the watermark passes a
window's end (+ allowed lateness), the window fires and an aggregate is
emitted as ``WindowResult``.  Elements arriving after their window has
fired-and-purged are counted as *dropped late* — the quantity the A3
watermark experiment sweeps.

Session windows merge on insert, the standard merging-window algorithm.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

from ..util.errors import StreamError
from .element import Element, StreamItem, Watermark
from .operators import Operator, _segmented
from .windows import Window, WindowAssigner

__all__ = ["WindowResult", "LateRecord", "WindowAggregateOperator",
           "aggregators"]


@dataclass(frozen=True)
class WindowResult:
    """Output of a fired window."""

    key: Any
    window: Window
    value: Any
    count: int


@dataclass(frozen=True)
class LateRecord:
    """A late element surfaced on the side output instead of dropped.

    Downstream can route these to a correction path (e.g. re-aggregate
    and amend released results) — the recovery story for the timeliness
    vs completeness trade-off of experiment A3.
    """

    value: Any
    timestamp: float
    key: Any
    lateness: float  # how far behind the watermark it arrived


class _Agg:
    """An incremental aggregator: (init, add, merge, result)."""

    def __init__(self, init: Callable[[], Any],
                 add: Callable[[Any, Any], Any],
                 merge: Callable[[Any, Any], Any],
                 result: Callable[[Any], Any]) -> None:
        self.init = init
        self.add = add
        self.merge = merge
        self.result = result


def _exact_add(partials: list, x: float) -> list:
    """Shewchuk's grow-partials step: fold ``x`` into a list of
    non-overlapping partial sums that exactly represent the true sum."""
    x = float(x)
    i = 0
    for y in partials:
        if abs(x) < abs(y):
            x, y = y, x
        hi = x + y
        lo = y - (hi - x)
        if lo:
            partials[i] = lo
            i += 1
        x = hi
    partials[i:] = [x]
    return partials


#: accumulator length at which _sum_add collapses to exact partials
_COMPACT_AT = 64


def _sum_add(acc: list, v) -> list:
    """Accumulate for an *order-independent* float sum.

    The accumulator is a list whose exact (infinite-precision) sum is
    the window's true sum: the hot path is a C-speed ``append``, and
    when the list grows it is compacted to Shewchuk exact partials —
    an exact-sum-preserving rewrite, so where the compaction boundary
    falls cannot affect the result.  ``math.fsum`` at finalize is then
    the correctly rounded true sum whatever the arrival interleaving
    across parallel channels (or its perturbation by injected network
    delays) was.
    """
    acc.append(float(v))
    if len(acc) >= _COMPACT_AT:
        partials: list = []
        for y in acc:
            _exact_add(partials, y)
        acc[:] = partials
    return acc


def _sum_merge(a: list, b: list) -> list:
    a.extend(b)
    if len(a) >= _COMPACT_AT:
        partials: list = []
        for y in a:
            _exact_add(partials, y)
        a[:] = partials
    return a


def _mean_init():
    return [[], 0]


def _mean_add(acc, v):
    _sum_add(acc[0], v)
    acc[1] += 1
    return acc


def _mean_merge(a, b):
    return [_sum_merge(a[0], b[0]), a[1] + b[1]]


aggregators: dict[str, _Agg] = {
    "count": _Agg(lambda: 0, lambda a, _v: a + 1, lambda a, b: a + b,
                  lambda a: a),
    "sum": _Agg(list, _sum_add, _sum_merge,
                lambda a: math.fsum(a)),
    "min": _Agg(lambda: float("inf"), min, min,
                lambda a: a),
    "max": _Agg(lambda: float("-inf"), max, max,
                lambda a: a),
    "mean": _Agg(_mean_init, _mean_add, _mean_merge,
                 lambda a: math.fsum(a[0]) / a[1] if a[1] else float("nan")),
    "list": _Agg(list, lambda a, v: a + [v], lambda a, b: a + b,
                 lambda a: a),
}


class WindowAggregateOperator(Operator):
    """Keyed event-time windowing with incremental aggregation."""

    requires_shuffle = True

    def __init__(self, name: str, assigner: WindowAssigner,
                 aggregate: str | _Agg = "count",
                 allowed_lateness: float = 0.0,
                 value_fn: Callable[[Any], Any] | None = None,
                 emit_late: bool = False) -> None:
        super().__init__(name)
        self.assigner = assigner
        if isinstance(aggregate, str):
            try:
                aggregate = aggregators[aggregate]
            except KeyError:
                raise StreamError(
                    f"unknown aggregate {aggregate!r}; choose from "
                    f"{sorted(aggregators)}"
                ) from None
        self.agg = aggregate
        if allowed_lateness < 0:
            raise StreamError("allowed_lateness must be non-negative")
        self.allowed_lateness = allowed_lateness
        self.value_fn = value_fn if value_fn is not None else (lambda v: v)
        self.emit_late = emit_late
        # key -> {window -> [acc, count]}
        self._windows: dict[Any, dict[Window, list[Any]]] = {}
        self._current_wm = float("-inf")
        # Lower bound on min(window.end + allowed_lateness) over all open
        # windows: lets on_watermark skip the full ripeness scan when no
        # window can possibly fire (the overwhelmingly common case with
        # per-element watermarks).
        self._min_deadline = float("inf")
        self.dropped_late = 0
        self.fired = 0

    # -- element path --------------------------------------------------------

    def process(self, element: Element) -> list[StreamItem]:
        if element.key is None:
            raise StreamError(
                f"window {self.name!r} requires keyed input; add key_by()"
            )
        if element.timestamp + self.allowed_lateness <= self._current_wm:
            self.dropped_late += 1
            if self.emit_late:
                late = LateRecord(
                    value=element.value, timestamp=element.timestamp,
                    key=element.key,
                    lateness=self._current_wm - element.timestamp)
                return [Element(value=late, timestamp=element.timestamp,
                                key=element.key)]
            return []
        per_key = self._windows.setdefault(element.key, {})
        value = self.value_fn(element.value)
        for window in self.assigner.assign(element.timestamp):
            if self.assigner.merging:
                window = self._merge_sessions(per_key, window)
            slot = per_key.get(window)
            if slot is None:
                slot = [self.agg.init(), 0]
                per_key[window] = slot
                deadline = window.end + self.allowed_lateness
                if deadline < self._min_deadline:
                    self._min_deadline = deadline
            slot[0] = self.agg.add(slot[0], value)
            slot[1] += 1
        return []

    def process_batch(self, items) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        """Watermark-free element run with hoisted hot-path locals; the
        watermark is constant across the run so the late check is a pure
        comparison."""
        assigner = self.assigner
        assign = assigner.assign
        merging = assigner.merging
        value_fn = self.value_fn
        agg_init = self.agg.init
        agg_add = self.agg.add
        windows = self._windows
        lateness = self.allowed_lateness
        current_wm = self._current_wm
        min_deadline = self._min_deadline
        emit_late = self.emit_late
        dropped = 0
        late_emitted = 0
        for element in elements:
            key = element.key
            if key is None:
                raise StreamError(
                    f"window {self.name!r} requires keyed input; add key_by()"
                )
            ts = element.timestamp
            if ts + lateness <= current_wm:
                dropped += 1
                if emit_late:
                    late = LateRecord(value=element.value, timestamp=ts,
                                      key=key, lateness=current_wm - ts)
                    out.append(Element(value=late, timestamp=ts, key=key))
                    late_emitted += 1
                continue
            per_key = windows.get(key)
            if per_key is None:
                per_key = windows[key] = {}
            value = value_fn(element.value)
            for window in assign(ts):
                if merging:
                    window = self._merge_sessions(per_key, window)
                slot = per_key.get(window)
                if slot is None:
                    slot = per_key[window] = [agg_init(), 0]
                    deadline = window.end + lateness
                    if deadline < min_deadline:
                        min_deadline = deadline
                slot[0] = agg_add(slot[0], value)
                slot[1] += 1
        self._min_deadline = min_deadline
        self.dropped_late += dropped
        self.processed += len(elements)
        self.emitted += late_emitted

    def _merge_sessions(self, per_key: dict[Window, list[Any]],
                        new_window: Window) -> Window:
        """Merge the provisional session window with overlapping ones."""
        overlapping = [w for w in per_key if w.intersects(new_window)]
        if not overlapping:
            return new_window
        merged = new_window
        acc = self.agg.init()
        count = 0
        for w in overlapping:
            merged = merged.merged(w)
            slot = per_key.pop(w)
            acc = self.agg.merge(acc, slot[0])
            count += slot[1]
        per_key[merged] = [acc, count]
        return merged

    # -- watermark path ---------------------------------------------------------

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        self._current_wm = max(self._current_wm, watermark.timestamp)
        if self._min_deadline > self._current_wm:
            # No open window can be ripe yet; skip the full scan.  The
            # bound is conservative (a lower bound), so this fast path
            # never suppresses a firing.
            return [watermark]
        out: list[StreamItem] = []
        for key in sorted(self._windows, key=repr):
            per_key = self._windows[key]
            ripe = sorted(w for w in per_key
                          if w.end + self.allowed_lateness <= self._current_wm)
            for window in ripe:
                acc, count = per_key.pop(window)
                self.fired += 1
                result = WindowResult(key=key, window=window,
                                      value=self.agg.result(acc), count=count)
                out.append(Element(value=result, timestamp=window.end, key=key))
        self._windows = {k: v for k, v in self._windows.items() if v}
        self._min_deadline = min(
            (w.end + self.allowed_lateness
             for per_key in self._windows.values() for w in per_key),
            default=float("inf"))
        out.append(watermark)
        return out

    def flush(self) -> list[StreamItem]:
        """Fire every remaining window at end-of-stream."""
        return [item for item in self.on_watermark(Watermark(float("inf")))
                if isinstance(item, Element)]

    # -- checkpointing -------------------------------------------------------------

    def snapshot(self) -> Any:
        import copy
        return {
            "windows": copy.deepcopy(self._windows),
            "wm": self._current_wm,
            "dropped": self.dropped_late,
            "fired": self.fired,
        }

    def restore(self, snapshot: Any) -> None:
        import copy
        snapshot = snapshot or {}
        self._windows = copy.deepcopy(snapshot.get("windows", {}))
        self._current_wm = snapshot.get("wm", float("-inf"))
        self.dropped_late = snapshot.get("dropped", 0)
        self.fired = snapshot.get("fired", 0)
        self._recompute_min_deadline()

    def _recompute_min_deadline(self) -> None:
        self._min_deadline = min(
            (w.end + self.allowed_lateness
             for per_key in self._windows.values() for w in per_key),
            default=float("inf"))

    # -- key-grouped checkpoints (parallel plans) ----------------------------

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        import copy
        from .shuffle import group_by_key_group
        return group_by_key_group(copy.deepcopy(self._windows),
                                  num_key_groups)

    def scalar_snapshot(self) -> Any:
        return {"wm": self._current_wm, "dropped": self.dropped_late,
                "fired": self.fired}

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        import copy
        from .shuffle import merge_key_groups
        self._windows = copy.deepcopy(merge_key_groups(groups.values()))
        if len(scalars) == 1:
            self._current_wm = scalars[0]["wm"]
            self.dropped_late = scalars[0]["dropped"]
            self.fired = scalars[0]["fired"]
        else:
            # Rescale: the watermark regresses to the conservative
            # minimum (can only admit *more* data, never drop extra);
            # counters are job-wide totals, carried by the primary
            # subtask so aggregation across subtasks stays exact.
            self._current_wm = min(
                (s["wm"] for s in scalars), default=float("-inf"))
            self.dropped_late = sum(s["dropped"] for s in scalars) \
                if primary else 0
            self.fired = sum(s["fired"] for s in scalars) if primary else 0
        self._recompute_min_deadline()
