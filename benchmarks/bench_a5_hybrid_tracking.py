"""Ablation A5: tracking-by-detection vs flow-assisted hybrid tracking.

AR's real-time contract (Azuma's "interactive in real time") is easier
to hold when most frames are tracked with cheap sparse optical flow and
full detection runs only on keyframes.  We run the same camera orbit
through both trackers and compare registration error, modelled compute
(offload-priced latency on a phone), and failure behaviour.
"""

import numpy as np

from repro.offload import AlwaysLocal, OffloadPlanner, vision_pipeline
from repro.simnet import LINK_PRESETS, NodeSpec, Topology
from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    HybridTracker,
    PlanarTarget,
    PlanarTracker,
    look_at,
    make_texture,
    render_plane,
)

from tableprint import print_table

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)
FRAMES = 25


def _orbit_frames(rng, target):
    frames = []
    for i in range(FRAMES):
        eye = [0.2 + 0.008 * i, 0.25 + 0.004 * i, -0.8 - 0.003 * i]
        pose = look_at(eye=eye, target=[0.25, 0.25, 0.0])
        frames.append((pose, render_plane(target, INTR, pose, rng=rng,
                                          noise_sigma=0.01)))
    return frames


def _planner():
    topology = Topology(make_rng(82))
    topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_link("device", "edge", LINK_PRESETS["wifi"])
    return OffloadPlanner(topology, "device")


def run_experiment():
    rng = make_rng(82)
    target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
    frames = _orbit_frames(rng, target)
    planner = _planner()
    policy = AlwaysLocal()
    rows = []
    for name, tracker in (
            ("detection", PlanarTracker(target, INTR, make_rng(83))),
            ("hybrid", HybridTracker(target, INTR, make_rng(83)))):
        errors = []
        latencies = []
        for pose_true, frame in frames:
            result = tracker.track(frame)
            errors.append(tracker.registration_error_px(result, pose_true))
            profile = tracker.last_profile
            outcome = policy.decide(planner,
                                    vision_pipeline(profile)).outcome
            latencies.append(outcome.latency_s * 1000)
        detections = getattr(tracker, "detections", FRAMES)
        rows.append([name, float(np.mean(errors)), float(np.max(errors)),
                     float(np.mean(latencies)), float(np.max(latencies)),
                     detections])
    return rows


def bench_a5_hybrid_tracking(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "A5  ablation: tracking-by-detection vs flow-assisted hybrid "
        f"({FRAMES}-frame orbit, local compute on a phone)",
        ["tracker", "mean reg err px", "max reg err px",
         "mean latency ms", "max latency ms", "full detections"],
        rows,
        note="the hybrid runs full detection on keyframes only; flow "
             "frames cost a fraction of a detection frame")
    detection = next(r for r in rows if r[0] == "detection")
    hybrid = next(r for r in rows if r[0] == "hybrid")
    # Hybrid accuracy stays in the same class (no drift blow-up).
    assert hybrid[1] < max(3.0, 4 * detection[1])
    assert hybrid[2] < 5.0
    # And it is much cheaper on average.
    assert hybrid[3] < detection[3] * 0.6
    # Keyframes only: a handful of detections across the orbit.
    assert hybrid[5] <= 3
