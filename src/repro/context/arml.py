"""ARML-like markup: a standard exchange format for AR content.

The paper points to ARML (Augmented Reality Markup Language) as "an
essential step in the right direction" for interpretation.  We implement
a faithful subset of ARML 2.0's conceptual model — Features containing
Anchors (a position) and VisualAssets (labels with styling/priority) —
with XML parse/serialize round-trip via the stdlib ElementTree.

Example document::

    <arml>
      <feature id="cafe-1">
        <name>Blue Bottle</name>
        <anchor x="12.0" y="3.5" z="0.0"/>
        <label text="Blue Bottle Cafe" priority="2.0" kind="poi"/>
        <meta key="category" value="cafe"/>
      </feature>
    </arml>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass, field

import numpy as np

from ..util.errors import MarkupError

__all__ = ["ArmlFeature", "ArmlDocument", "parse_arml", "serialize_arml"]


@dataclass
class ArmlFeature:
    """One AR feature: identity + anchor + visual assets + metadata."""

    feature_id: str
    name: str = ""
    anchor: np.ndarray = field(default_factory=lambda: np.zeros(3))
    label_text: str = ""
    priority: float = 1.0
    kind: str = "label"
    meta: dict[str, str] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.feature_id:
            raise MarkupError("feature id must be non-empty")
        self.anchor = np.asarray(self.anchor, dtype=float).reshape(3)


@dataclass
class ArmlDocument:
    """An ordered collection of features."""

    features: list[ArmlFeature] = field(default_factory=list)

    def add(self, feature: ArmlFeature) -> None:
        if any(f.feature_id == feature.feature_id for f in self.features):
            raise MarkupError(f"duplicate feature id {feature.feature_id!r}")
        self.features.append(feature)

    def get(self, feature_id: str) -> ArmlFeature:
        for feature in self.features:
            if feature.feature_id == feature_id:
                return feature
        raise MarkupError(f"unknown feature {feature_id!r}")

    def __len__(self) -> int:
        return len(self.features)


def serialize_arml(document: ArmlDocument) -> str:
    """Document -> XML string."""
    root = ET.Element("arml")
    for feature in document.features:
        f_el = ET.SubElement(root, "feature", {"id": feature.feature_id})
        if feature.name:
            ET.SubElement(f_el, "name").text = feature.name
        ET.SubElement(f_el, "anchor", {
            "x": repr(float(feature.anchor[0])),
            "y": repr(float(feature.anchor[1])),
            "z": repr(float(feature.anchor[2])),
        })
        ET.SubElement(f_el, "label", {
            "text": feature.label_text,
            "priority": repr(float(feature.priority)),
            "kind": feature.kind,
        })
        for key in sorted(feature.meta):
            ET.SubElement(f_el, "meta", {"key": key,
                                         "value": feature.meta[key]})
    return ET.tostring(root, encoding="unicode")


def parse_arml(text: str) -> ArmlDocument:
    """XML string -> document; raises :class:`MarkupError` on any
    structural problem (malformed XML, missing anchors, bad numbers)."""
    try:
        root = ET.fromstring(text)
    except ET.ParseError as exc:
        raise MarkupError(f"malformed ARML: {exc}") from exc
    if root.tag != "arml":
        raise MarkupError(f"root element must be <arml>, got <{root.tag}>")
    document = ArmlDocument()
    for f_el in root.findall("feature"):
        feature_id = f_el.get("id")
        if not feature_id:
            raise MarkupError("feature missing id attribute")
        anchor_el = f_el.find("anchor")
        if anchor_el is None:
            raise MarkupError(f"feature {feature_id!r} missing <anchor>")
        try:
            anchor = np.array([float(anchor_el.get("x", "nan")),
                               float(anchor_el.get("y", "nan")),
                               float(anchor_el.get("z", "0.0"))])
        except ValueError as exc:
            raise MarkupError(
                f"feature {feature_id!r}: bad anchor coordinates") from exc
        if np.isnan(anchor[:2]).any():
            raise MarkupError(f"feature {feature_id!r}: anchor needs x and y")
        label_el = f_el.find("label")
        label_text = ""
        priority = 1.0
        kind = "label"
        if label_el is not None:
            label_text = label_el.get("text", "")
            kind = label_el.get("kind", "label")
            try:
                priority = float(label_el.get("priority", "1.0"))
            except ValueError as exc:
                raise MarkupError(
                    f"feature {feature_id!r}: bad priority") from exc
        name_el = f_el.find("name")
        meta = {}
        for m_el in f_el.findall("meta"):
            key = m_el.get("key")
            if not key:
                raise MarkupError(f"feature {feature_id!r}: meta missing key")
            meta[key] = m_el.get("value", "")
        document.add(ArmlFeature(
            feature_id=feature_id,
            name=name_el.text or "" if name_el is not None else "",
            anchor=anchor, label_text=label_text, priority=priority,
            kind=kind, meta=meta))
    return document
