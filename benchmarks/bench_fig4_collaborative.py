"""Experiment F4 (Figure 4: "Avatar"-style collaborative interface).

The figure envisions "large data visualization and interaction among
multiple users ... Each user can also probe into subsets respectively
without interference."  We share one analytic dataset across N sessions,
give each user a private probe, stream updates, and measure: per-user
view staleness under a round-robin sync budget, probe isolation (one
user's probe never changes another's view), and per-user render cost.
"""

import numpy as np

from repro.context import SemanticEntity
from repro.core import ARBigDataPipeline, PipelineConfig, Probe
from repro.util.rng import make_rng
from repro.vision.camera import look_at

from tableprint import print_table

USER_COUNTS = [1, 4, 16, 64]
UPDATE_BATCHES = 30
SYNCS_PER_BATCH = 4  # only this many users sync per update batch


def run_experiment():
    rows = []
    for n_users in USER_COUNTS:
        pipeline = ARBigDataPipeline(PipelineConfig(seed=24))
        rng = make_rng(24)
        for i in range(100):
            pipeline.add_entity(SemanticEntity(
                entity_id=f"datum-{i:03d}", entity_type="datum",
                position=np.array([float(i % 10 - 5) * 0.4,
                                   float(i // 10 - 5) * 0.3, 5.0]),
                name=f"datum {i}"))
        pipeline.interpreter.register_default("analytic")
        sessions = [pipeline.open_session(f"u{i:02d}")
                    for i in range(n_users)]
        # Each user probes a private subset (their own modulo class).
        for i, session in enumerate(sessions):
            modulo = i % 4
            session.open_probe(Probe(
                name="mine",
                predicate=lambda a, m=modulo: int(
                    a.annotation_id.split("-")[-1]) % 4 == m))
        staleness_samples = []
        cursor = 0
        for batch in range(UPDATE_BATCHES):
            pipeline.interpret_and_publish([{
                "tag": "analytic",
                "subject": f"datum-{int(rng.integers(0, 100)):03d}",
                "value": batch, "priority": 1.0}
                for _ in range(5)])
            # Round-robin sync budget: not everyone can sync every batch.
            for _ in range(min(SYNCS_PER_BATCH, n_users)):
                sessions[cursor % n_users].sync()
                cursor += 1
            staleness_samples.extend(s.staleness for s in sessions)
        # Probe isolation check: pairwise disjoint views across classes.
        for session in sessions:
            session.sync()
        views = [s.visible_annotation_ids() for s in sessions[:4]]
        isolation_ok = all(
            not (views[a] & views[b])
            for a in range(len(views)) for b in range(a + 1, len(views)))
        pose = look_at(eye=[0, 0, 0], target=[0, 0, 5.0])
        frames = [s.render(pose) for s in sessions]
        rows.append([n_users,
                     float(np.mean(staleness_samples)),
                     float(np.max(staleness_samples)),
                     isolation_ok,
                     float(np.mean([f.drawn for f in frames])),
                     pipeline.dataset.version])
    return rows


def bench_fig4_collaborative(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F4  Figure 4: multi-user shared dataset",
        ["users", "mean staleness", "max staleness", "probes isolated",
         "mean drawn/user", "dataset version"],
        rows,
        note=f"{SYNCS_PER_BATCH} syncs/batch budget: staleness grows "
             "with user count; probes never interfere")
    # Probe isolation holds at every scale.
    assert all(r[3] for r in rows)
    # Staleness grows with user count under a fixed sync budget.
    staleness = [r[1] for r in rows]
    assert staleness[0] <= 1.0
    assert all(b >= a for a, b in zip(staleness, staleness[1:]))
    assert staleness[-1] > staleness[0]
    # Every user still renders content from their probe subset.
    assert all(r[4] > 0 for r in rows)
