"""Property test: checkpoint/restore is semantically invisible.

For any input stream and any prefix length, running a stateful job to
completion must produce exactly the same sink contents as: run part of
the stream, checkpoint, keep running, crash (restore), and re-run from
the checkpoint.  This is the exactly-once guarantee the streaming
engine claims, checked over randomized streams.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import Element, Executor, JobBuilder, TumblingWindows

stream_strategy = st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),  # key
              st.floats(min_value=0.0, max_value=100.0,
                        allow_nan=False)),  # timestamp
    min_size=1, max_size=60)


def _build(elements):
    builder = JobBuilder("ckpt")
    (builder.source("s", list(elements))
            .with_watermarks(5.0)
            .key_by(lambda v: v["k"])
            .window(TumblingWindows(10.0), "sum",
                    value_fn=lambda v: v["v"])
            .sink("out"))
    return builder.build()


def _to_elements(rows):
    return [Element(value={"k": k, "v": float(i)}, timestamp=ts)
            for i, (k, ts) in enumerate(rows)]


def _results(sink_values):
    return sorted((r.key, r.window.start, r.value, r.count)
                  for r in sink_values)


class TestCheckpointInvisibility:
    @given(stream_strategy, st.integers(min_value=0, max_value=8),
           st.integers(min_value=1, max_value=16))
    @settings(max_examples=40, deadline=None)
    def test_restore_replay_equals_straight_run(self, rows, cycles,
                                                batch):
        elements = _to_elements(rows)
        straight = Executor(_build(elements)).run()
        expected = _results(straight["out"].values)

        executor = Executor(_build(elements))
        executor.run(source_batch=batch, max_cycles=cycles)
        try:
            checkpoint = executor.checkpoint()
        except Exception:
            return  # items in flight at this cut: not a checkpointable
        executor.run()  # "crash" after running ahead
        executor.restore(checkpoint)
        replayed = executor.run()
        assert _results(replayed["out"].values) == expected

    @given(stream_strategy)
    @settings(max_examples=30, deadline=None)
    def test_double_restore_still_exact(self, rows):
        elements = _to_elements(rows)
        expected = _results(Executor(_build(elements)).run()["out"].values)
        executor = Executor(_build(elements))
        executor.run(source_batch=7, max_cycles=2)
        checkpoint = executor.checkpoint()
        for _ in range(2):  # crash twice from the same snapshot
            executor.run()
            executor.restore(checkpoint)
        final = executor.run()
        assert _results(final["out"].values) == expected
