"""Log-structured hot store: memtable/runs, compaction, TTL, latest-N.

Every structural path (pure memtable, flushed runs, compacted tiers,
expired rows) is pinned against a brute-force model: a plain dict of
``key -> [(ts, value), ...]`` sorted newest-first.  If `latest` ever
disagrees with the model the store lost or reordered a version.
"""

import numpy as np
import pytest

from repro.store import HotShard, HotStore, key_repr
from repro.streaming.shuffle import key_group_for, subtask_for_key_group
from repro.util.clock import SimClock
from repro.util.rng import make_rng


def _model(applied):
    """Brute force: key -> versions newest-first (ties: later apply wins)."""
    by_key = {}
    for seq, (kr, ts, value) in enumerate(applied):
        by_key.setdefault(kr, []).append((ts, seq, value))
    return {
        kr: [(ts, v) for ts, _s, v in
             sorted(rows, key=lambda r: (-r[0], -r[1]))]
        for kr, rows in by_key.items()
    }


def _random_rows(rng, n, keys):
    return [(key_repr(f"k-{rng.integers(keys)}"),
             float(rng.uniform(0, 1000)), int(rng.integers(10**6)))
            for _ in range(n)]


class TestHotShard:
    def test_latest_matches_model_across_structures(self):
        rng = make_rng(7)
        shard = HotShard(0, memtable_limit=16, tier_fanout=3)
        applied = []
        for epoch in range(1, 13):
            rows = _random_rows(rng, 25, keys=9)
            shard.apply_epoch(epoch, rows)
            shard.maintain()
            applied.extend(rows)
        model = _model(applied)
        assert shard.contents() == model
        for kr in model:
            for n in (1, 3, 50):
                assert shard.latest(eval(kr), n) == model[kr][:n]

    def test_epoch_guard_makes_reapply_a_noop(self):
        shard = HotShard(0)
        rows = [(key_repr("a"), 1.0, "x"), (key_repr("b"), 2.0, "y")]
        assert shard.apply_epoch(1, rows) == 2
        assert shard.stage_epoch(1, rows) is None
        assert shard.apply_epoch(1, rows) == 0
        assert shard.rows == 2
        assert shard.last_applied_epoch == 1

    def test_stage_does_not_mutate(self):
        shard = HotShard(0)
        shard.apply_epoch(1, [(key_repr("a"), 1.0, "x")])
        before = shard.contents()
        staged = shard.stage_epoch(2, [(key_repr("a"), 9.0, "z")])
        assert staged is not None
        assert shard.contents() == before
        assert shard.last_applied_epoch == 1
        shard.install_epoch(staged)
        assert shard.latest("a", 1) == [(9.0, "z")]

    def test_compaction_bounds_runs_and_preserves_contents(self):
        rng = make_rng(11)
        shard = HotShard(0, memtable_limit=8, tier_fanout=2)
        applied = []
        for epoch in range(1, 40):
            rows = _random_rows(rng, 8, keys=5)
            shard.apply_epoch(epoch, rows)
            shard.maintain()
            applied.extend(rows)
        stats = shard.stats()
        # 39 flushes of ~8 rows with fanout-2 merging: far fewer live runs
        assert stats["runs"] < 10
        assert stats["compactions"] > 0
        assert shard.contents() == _model(applied)

    def test_ttl_filters_reads_and_expire_reclaims(self):
        clock = SimClock()
        shard = HotShard(0, clock=clock, ttl_s=10.0, memtable_limit=4)
        shard.apply_epoch(1, [(key_repr("a"), 0.0, "old"),
                              (key_repr("a"), 1.0, "older-ish"),
                              (key_repr("b"), 0.5, "b-old")])
        shard.maintain()
        shard.apply_epoch(2, [(key_repr("a"), 8.0, "fresh")])
        clock.advance(12.0)  # now=12: live window is ts >= 2
        assert shard.latest("a", 5) == [(8.0, "fresh")]
        assert shard.latest("b", 5) == []
        rows_before = shard.rows
        shard.expire()
        assert shard.rows < rows_before
        assert shard.latest("a", 5) == [(8.0, "fresh")]
        # determinism: same clock, same state -> expire is idempotent
        snapshot = shard.contents()
        shard.expire()
        assert shard.contents() == snapshot


class TestHotStore:
    def test_sharding_matches_engine_routing(self):
        store = HotStore(num_shards=4, num_key_groups=16)
        for i in range(50):
            key = f"user-{i}"
            shard = store.shard_for(key)
            group = key_group_for(key, 16)
            assert shard.shard_id == subtask_for_key_group(group, 16, 4)

    def test_cross_shard_latest_and_contents(self):
        rng = make_rng(3)
        store = HotStore(num_shards=4, memtable_limit=8)
        applied = []
        for epoch in range(1, 6):
            per_shard = {}
            for _ in range(30):
                key = f"k-{rng.integers(12)}"
                row = (key_repr(key), float(rng.uniform(0, 100)),
                       int(rng.integers(1000)))
                sid = store.shard_for(key).shard_id
                per_shard.setdefault(sid, []).append(row)
            for sid, rows in per_shard.items():
                store.shards[sid].apply_epoch(epoch, rows)
                applied.extend(rows)
            store.maintain()
        # per-key latest agrees with a global brute-force model
        model = _model(applied)
        assert store.contents() == model
        for kr, versions in model.items():
            assert store.latest(eval(kr), 2) == versions[:2]
            assert store.point(eval(kr)) == versions[0][1]
        assert store.point("never-seen") is None

    def test_point_on_empty_store(self):
        store = HotStore(num_shards=2)
        assert store.point("nope") is None
        assert store.latest("nope", 3) == []
        assert store.rows == 0
