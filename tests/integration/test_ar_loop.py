"""Integration: the closed AR loop — track a real (synthetic) camera
frame, anchor virtual content on the tracked target, and verify the
overlay lands on the target's true pixels.

This is Azuma's "registered in 3-D" checked end to end: vision estimates
the pose, render projects through it, and the result must coincide with
ground truth within a few pixels.
"""

import numpy as np
import pytest

from repro.render import Annotation, Compositor, SceneGraph
from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    HybridTracker,
    PlanarTarget,
    PlanarTracker,
    look_at,
    make_texture,
    render_plane,
)

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


class TestClosedArLoop:
    def _world(self, seed):
        rng = make_rng(seed)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        scene = SceneGraph()
        # Virtual content anchored at the target's centre and corners.
        anchors = {
            "centre": np.array([0.25, 0.25, 0.0]),
            "corner": np.array([0.05, 0.05, 0.0]),
            "above": np.array([0.25, 0.25, -0.1]),  # floats off-plane
        }
        for name, anchor in anchors.items():
            scene.add(Annotation(annotation_id=name, anchor=anchor,
                                 text=name, width_px=30, height_px=10))
        return rng, target, scene, anchors

    def test_overlay_registers_on_tracked_pose(self):
        rng, target, scene, anchors = self._world(101)
        tracker = PlanarTracker(target, INTR, rng)
        compositor = Compositor(INTR, declutter=False)
        pose_true = look_at(eye=[0.2, 0.3, -0.9],
                            target=[0.25, 0.25, 0.0])
        frame_image = render_plane(target, INTR, pose_true, rng=rng,
                                   noise_sigma=0.01)
        result = tracker.track(frame_image)
        overlay = compositor.compose(scene, result.pose)
        truth_px = INTR.project(pose_true.transform(
            np.stack(list(anchors.values()))))
        by_id = {item.annotation_id: item for item in overlay.items}
        for i, name in enumerate(anchors):
            item = by_id[name]
            cx, cy = item.label.rect.center
            error = np.hypot(cx - truth_px[i, 0], cy - truth_px[i, 1])
            assert error < 4.0, f"{name} misregistered by {error:.1f}px"

    def test_overlay_follows_camera_motion(self):
        rng, target, scene, anchors = self._world(102)
        tracker = HybridTracker(target, INTR, rng)
        compositor = Compositor(INTR, declutter=False)
        previous_cx = None
        for i in range(6):
            pose_true = look_at(eye=[0.15 + 0.02 * i, 0.3, -0.9],
                                target=[0.25, 0.25, 0.0])
            frame_image = render_plane(target, INTR, pose_true, rng=rng,
                                       noise_sigma=0.01)
            result = tracker.track(frame_image)
            overlay = compositor.compose(scene, result.pose)
            centre = next(item for item in overlay.items
                          if item.annotation_id == "centre")
            cx, _cy = centre.label.rect.center
            if previous_cx is not None:
                # Camera moves +x, so the anchored content slides -x.
                assert cx < previous_cx + 1.0
            previous_cx = cx
        assert tracker.flow_frames >= 4  # mostly cheap frames

    def test_registration_error_degrades_gracefully_with_noise(self):
        rng, target, scene, _anchors = self._world(103)
        tracker = PlanarTracker(target, INTR, rng)
        pose_true = look_at(eye=[0.25, 0.25, -0.8],
                            target=[0.25, 0.25, 0.0])
        errors = []
        for noise in (0.0, 0.03, 0.08):
            frame_image = render_plane(target, INTR, pose_true, rng=rng,
                                       noise_sigma=noise)
            result = tracker.track(frame_image)
            errors.append(tracker.registration_error_px(result,
                                                        pose_true))
        assert errors[0] < 1.0
        assert errors[-1] < 8.0  # noisy but not catastrophic
        assert errors[0] <= errors[-1] + 1.0
