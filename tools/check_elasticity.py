#!/usr/bin/env python
"""Elasticity gate: live rescaling must be safe, live and bounded.

Runs the autoscale-marked chaos suite, then the deterministic
end-to-end demo from ``benchmarks/bench_p7_autoscale.py`` (diurnal +
flash-crowd trace) and asserts:

1. **SLO dominance** — the autoscaled deployment's latency-SLO
   compliance strictly beats the fixed-parallelism baseline, and the
   two commit exactly the same sink content;
2. **liveness under chaos** — a supervisor crash at every rescale
   phase (decide / savepoint / recompile / restore) still completes
   the rescale on retry, with committed output bit-equal to the
   fault-free run;
3. **bounded replay** — recovery across a crashed rescale replays at
   most one savepoint interval's worth of input per attempt, never a
   whole-job restart;
4. **determinism** — the same seeds reproduce the same scaling
   trajectory and fault trace on a second run.

Exit 0 when all hold, 1 otherwise.

Usage:  python tools/check_elasticity.py [--skip-tests]
"""

from __future__ import annotations

import argparse
import sys

from gatelib import Gate, ensure_paths, run_suite

ensure_paths()

from bench_p7_autoscale import run_experiment  # noqa: E402

from repro.chaos import (  # noqa: E402
    SITE_RESCALE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    fault_free_sinks,
    reference_events,
    reference_job,
)
from repro.streaming import SchedulePolicy, ScalingSupervisor  # noqa: E402

SOURCE_BATCH = 32
INTERVAL_CYCLES = 4
SPLITS = 4


def check_demo() -> bool:
    """The bench IS the acceptance demo; its internal asserts cover SLO
    dominance, exactly-once equality and the four-phase chaos column —
    any violation raises before we get numbers back."""
    print("\n== end-to-end demo (diurnal + flash crowd) ==")
    try:
        results = run_experiment()
    except AssertionError as exc:
        print(f"  demo invariant violated: {exc}")
        return False
    auto = results["autoscale"]
    print(f"  SLO compliance: fixed={auto['slo_fixed']:.3f} "
          f"autoscaled={auto['slo_autoscaled']:.3f} "
          f"capped+shed={auto['slo_capped_shed']:.3f}")
    print(f"  chaos: {auto['chaos_rescale_crashes']} rescale crashes "
          f"across {auto['chaos_phases']} phases, "
          f"{auto['chaos_rescales_completed']} rescales still completed, "
          "output bit-equal")
    return (auto["slo_autoscaled"] > auto["slo_fixed"]
            and auto["chaos_rescales_completed"] >= auto["chaos_phases"])


def _crashed_rescale(seed: int):
    plan = FaultPlan(specs=(
        FaultSpec("rescale_crash", SITE_RESCALE, at=0, target="restore"),
    ), name="elasticity-gate")
    injector = FaultInjector(plan)
    supervisor = ScalingSupervisor(
        reference_job(reference_events(seed=seed, n=400, keys=4),
                      splits=SPLITS),
        SchedulePolicy({1: {"window_sum": 2}}),
        injector=injector, parallelism=1,
        source_batch=SOURCE_BATCH, interval_cycles=INTERVAL_CYCLES)
    report = supervisor.run()
    return report, injector.trace_tuples()


def check_bounded_replay(seed: int) -> tuple[bool, tuple]:
    print("\n== bounded replay across a crashed rescale ==")
    report, trace = _crashed_rescale(seed)
    golden = canonical_sinks(fault_free_sinks(
        lambda: reference_job(reference_events(seed=seed, n=400, keys=4),
                              splits=SPLITS),
        batch_mode=True, chaining=True, parallelism=1,
        source_batch=SOURCE_BATCH))
    exactly_once = canonical_sinks(report.sink_values) == golden
    # a savepoint precedes every restore, so replay per attempt can
    # never exceed what arrived since that cut
    bound = INTERVAL_CYCLES * SOURCE_BATCH * SPLITS
    attempts = sum(e.attempts for e in report.rescales)
    bounded = report.replayed_total <= bound * max(attempts, 1)
    completed = bool(report.rescales) and report.rescale_crashes >= 1
    print(f"  rescale_crashes={report.rescale_crashes} "
          f"rescales_completed={len(report.rescales)} "
          f"replayed={report.replayed_total} "
          f"bound={bound * max(attempts, 1)} "
          f"sinks {'EXACTLY-ONCE' if exactly_once else 'DIVERGED'}")
    return exactly_once and bounded and completed, (report.sink_values,
                                                   trace)


def check_determinism(seed: int, first: tuple) -> bool:
    print("\n== determinism (same seed, second run) ==")
    report, trace = _crashed_rescale(seed)
    same = (report.sink_values, trace) == first
    print(f"  sinks + fault trace {'MATCH' if same else 'DIFFER'}")
    return same


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the autoscale-marked pytest suite")
    args = parser.parse_args()

    gate = Gate("check_elasticity")
    if not args.skip_tests and not run_suite("autoscale test suite",
                                             "autoscale"):
        return gate.fail("autoscale suite")
    if not check_demo():
        return gate.fail("end-to-end demo")
    bounded, first = check_bounded_replay(args.seed)
    if not bounded:
        return gate.fail("replay unbounded or output diverged")
    if not check_determinism(args.seed, first):
        return gate.fail("trajectory not reproducible")
    return gate.ok()


if __name__ == "__main__":
    sys.exit(main())
