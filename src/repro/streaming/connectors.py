"""Connectors between the event log and the streaming engine.

``log_source`` adapts an event-log topic into a stream source: each
retained record becomes an :class:`Element` whose timestamp is the
record's event timestamp and whose key is the record key.  ``log_sink``
returns a callable that writes sink elements back to a topic — the glue
for multi-stage pipelines (raw -> analytics -> AR content topics).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..eventlog.broker import LogCluster
from ..eventlog.consumer import Consumer
from ..eventlog.producer import Producer
from .element import Element

__all__ = ["log_source", "log_sink"]


def log_source(cluster: LogCluster, topic: str,
               partitions: list[int] | None = None,
               time_ordered: bool = True, tracer: Any = None,
               ) -> Callable[[], Iterable[Element]]:
    """A re-runnable source reading everything retained in ``topic``.

    With ``time_ordered`` (the default) the bounded replay merges
    partitions by event timestamp — the moral equivalent of Flink's
    per-partition watermarking, without which cross-partition skew makes
    a single watermark generator drop most of the replay as late.  Pass
    ``time_ordered=False`` to get raw partition-grouped order (useful
    for studying exactly that effect, as experiment A3 does).

    The consumer runs with offset dedup on: a broker that re-delivers
    (duplicate delivery under fault injection, a retried fetch) still
    feeds each record into the stream exactly once.
    """

    def iterate() -> Iterable[Element]:
        consumer = Consumer(cluster, topic, partitions, start="earliest",
                            dedup=True, tracer=tracer)
        span = (tracer.start_span(f"log_source:{topic}",
                                  attrs={"topic": topic})
                if tracer is not None else None)
        records = 0
        try:
            if not time_ordered:
                for batch in consumer.iter_batches(max_records=1024):
                    records += len(batch)
                    for row in batch:
                        yield Element(value=row.value,
                                      timestamp=row.timestamp, key=row.key)
            else:
                rows = []
                for batch in consumer.iter_batches(max_records=4096):
                    rows.extend(batch)
                rows.sort(key=lambda r: (r.timestamp, r.partition, r.offset))
                records = len(rows)
                for row in rows:
                    yield Element(value=row.value, timestamp=row.timestamp,
                                  key=row.key)
        finally:
            if span is not None:
                span.set_attr("records", records)
                span.end()

    return iterate


def log_sink(cluster: LogCluster, topic: str) -> Callable[[Element], None]:
    """A callable that appends sink elements to ``topic``."""
    producer = Producer(cluster)

    def write(element: Element) -> None:
        key = element.key if isinstance(element.key, str) else (
            None if element.key is None else str(element.key))
        producer.send(topic, element.value, key=key,
                      timestamp=element.timestamp)

    return write
