"""Observability: tracing spans, metric exporters, profiling, reports.

This package is the repo's cross-cutting observability layer.  It sits
*above* every subsystem: the executor, event log, offload runner, render
compositor and chaos harness each accept duck-typed ``tracer`` /
``metrics`` / ``profiler`` hooks and never import this package — so the
dependency edges all point upward and disabled instrumentation costs a
``None`` check.

- :mod:`.trace` — deterministic causal spans on simulated time.
- :mod:`.exporters` — in-memory, JSON-lines and console sinks.
- :mod:`.report` — span-tree assembly, critical path, rendering.
- :mod:`.profile` — per-operator wall-time hooks into the registry.
- :mod:`.pipeline` — the end-to-end traced reference run.
"""

from .exporters import (
    ConsoleExporter,
    InMemoryExporter,
    JsonLinesExporter,
    json_safe,
    read_jsonl,
    span_from_dict,
    span_to_dict,
)
from .pipeline import TracedRunReport, traced_reference_run
from .profile import Profiler
from .report import (
    SpanNode,
    build_tree,
    critical_path,
    render_tree,
    tree_is_connected,
)
from .trace import NOOP_SPAN, Span, SpanContext, SpanEvent, Tracer

__all__ = [
    "ConsoleExporter",
    "InMemoryExporter",
    "JsonLinesExporter",
    "NOOP_SPAN",
    "Profiler",
    "Span",
    "SpanContext",
    "SpanEvent",
    "SpanNode",
    "TracedRunReport",
    "Tracer",
    "build_tree",
    "critical_path",
    "json_safe",
    "read_jsonl",
    "render_tree",
    "span_from_dict",
    "span_to_dict",
    "traced_reference_run",
    "tree_is_connected",
]
