"""CheckpointStore integrity: checksums, quarantine, fallback, debris.

Tier-1 coverage for the store-level integrity machinery — manifest
self-checksums, payload digests, quarantine-aware ``latest()``, the
finalize-after-abort guard, and pruning's handling of quarantined and
recovery debris.  End-to-end corruption-under-chaos lives in the
``datafault``-marked suite and ``tools/check_robustness.py --datafault``.
"""

from __future__ import annotations

import pytest

from repro.streaming.coordinator import (
    ABORTED,
    FINALIZED,
    PENDING,
    CheckpointManifest,
    CheckpointStore,
)
from repro.streaming.execution import ParallelCheckpoint
from repro.util.errors import CheckpointError, CheckpointIntegrityError


def ckpt(cid, marker="state"):
    return ParallelCheckpoint(
        checkpoint_id=cid,
        num_key_groups=8,
        parallelism={"double": 2},
        num_splits={"events": 1},
        source_positions={"events": {0: cid * 10}},
        keyed_state={"double": {0: {"marker": marker}}},
        scalar_state={"double": [None, None]},
        sink_elements={"out": []},
    )


def finalize(store, cid, **kw):
    manifest = CheckpointManifest(checkpoint_id=cid, started_at=float(cid))
    store.record(manifest)
    store.finalize(ckpt(cid, **kw), manifest)
    return manifest


# -- digests and verification ------------------------------------------------


def test_finalize_records_digest_and_checksum():
    store = CheckpointStore(keep=2)
    manifest = finalize(store, 1)
    assert manifest.status == FINALIZED
    assert manifest.payload_digest and manifest.checksum
    assert store.verify(1)


def test_verify_fails_closed_on_missing_or_pending():
    store = CheckpointStore(keep=2)
    assert not store.verify(99)  # never existed
    pending = CheckpointManifest(checkpoint_id=1)
    store.record(pending)
    assert pending.status == PENDING
    assert not store.verify(1)  # manifest without snapshot: crash debris


def test_corrupt_payload_detected():
    store = CheckpointStore(keep=2)
    finalize(store, 1)
    store.corrupt(1, mode="payload")
    assert not store.verify(1)
    with pytest.raises(CheckpointIntegrityError):
        store.require(1)
    assert store.quarantined == {1}
    assert store.integrity_failures == 1


def test_corrupt_manifest_detected():
    store = CheckpointStore(keep=2)
    finalize(store, 1)
    store.corrupt(1, mode="manifest")
    assert not store.verify(1)
    with pytest.raises(CheckpointIntegrityError):
        store.require(1)


def test_corrupt_rejects_unknown_target_and_mode():
    store = CheckpointStore(keep=2)
    with pytest.raises(CheckpointError):
        store.corrupt(7)
    finalize(store, 1)
    with pytest.raises(CheckpointError):
        store.corrupt(1, mode="gamma_ray")


# -- quarantine-aware latest() ----------------------------------------------


def test_latest_falls_back_past_corrupt_newest():
    store = CheckpointStore(keep=2)
    finalize(store, 1, marker="old")
    finalize(store, 2, marker="new")
    store.corrupt(2, mode="payload")
    restored = store.latest()
    assert restored is not None and restored.checkpoint_id == 1
    assert store.quarantined == {2}
    assert store.integrity_failures == 1
    # A second lookup must not double-count the same rotten snapshot.
    assert store.latest().checkpoint_id == 1
    assert store.integrity_failures == 1


def test_latest_none_when_everything_rotten():
    store = CheckpointStore(keep=2)
    finalize(store, 1)
    finalize(store, 2)
    store.corrupt(1, mode="payload")
    store.corrupt(2, mode="manifest")
    assert store.latest() is None
    assert store.quarantined == {1, 2}
    assert store.integrity_failures == 2


def test_require_skips_quarantine_recount():
    store = CheckpointStore(keep=2)
    finalize(store, 1)
    store.corrupt(1, mode="payload")
    assert store.latest() is None  # quarantines id 1
    with pytest.raises(CheckpointIntegrityError):
        store.require(1)
    assert store.integrity_failures == 1


# -- abort / finalize ordering ----------------------------------------------


def test_finalize_after_abort_raises():
    store = CheckpointStore(keep=2)
    manifest = CheckpointManifest(checkpoint_id=1)
    store.record(manifest)
    store.abort(1)
    assert manifest.status == ABORTED
    with pytest.raises(CheckpointError):
        store.finalize(ckpt(1), manifest)
    assert store.snapshot(1) is None


def test_abort_only_demotes_pending():
    store = CheckpointStore(keep=2)
    manifest = finalize(store, 1)
    store.abort(1)  # finalized manifests are immune
    assert manifest.status == FINALIZED
    assert store.verify(1)


def test_id_mismatch_rejected():
    store = CheckpointStore(keep=2)
    manifest = CheckpointManifest(checkpoint_id=2)
    store.record(manifest)
    with pytest.raises(CheckpointError):
        store.finalize(ckpt(1), manifest)


# -- pruning with quarantine and recovery debris -----------------------------


def test_quarantined_snapshot_does_not_crowd_out_fallback():
    store = CheckpointStore(keep=1)
    finalize(store, 1)
    finalize(store, 2)
    # keep=1 pruned id 1; corrupt the sole survivor, then finalize a
    # replacement: the quarantined snapshot must not count against
    # ``keep`` and push the healthy one out.
    store.corrupt(2, mode="payload")
    assert store.latest() is None
    finalize(store, 3)
    assert store.latest().checkpoint_id == 3
    assert 3 in store.retained_ids()


def test_prune_reclaims_stale_quarantined_debris():
    store = CheckpointStore(keep=2)
    finalize(store, 1)
    finalize(store, 2)
    store.corrupt(2, mode="payload")
    assert store.latest().checkpoint_id == 1  # quarantines 2
    finalize(store, 3)
    finalize(store, 4)
    finalize(store, 5)
    # healthy = {4, 5}; the quarantined id 2 is now older than the
    # oldest healthy snapshot — dead weight recovery can never target.
    assert store.snapshot(2) is None
    assert store.retained_ids() == [4, 5]


def test_recovery_debris_never_a_restore_target():
    store = CheckpointStore(keep=3)
    finalize(store, 1)
    # Crash mid-attempt: pending manifest, no snapshot committed.
    store.record(CheckpointManifest(checkpoint_id=2))
    store.record(CheckpointManifest(checkpoint_id=3))
    store.abort(3)
    assert store.latest().checkpoint_id == 1
    assert store.latest_manifest().checkpoint_id == 1
    # A rebuilt coordinator must not reuse ids the dead one claimed,
    # even ids that only ever reached pending/aborted.
    assert store.next_checkpoint_id() == 4
