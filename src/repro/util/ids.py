"""Deterministic identifier generation and stable hashing/assignment.

Real distributed systems use UUIDs; a reproducible simulation cannot.
:class:`IdFactory` hands out readable, strictly increasing identifiers
(``"task-0001"``, ``"task-0002"``, ...) per namespace, so logs, tests and
benchmark output are stable run to run.

:func:`stable_hash` (FNV-1a, process-stable — unlike built-in ``hash``)
and :func:`split_ranges` (contiguous range assignment of N items to P
workers) live here because both the eventlog layer (producer
partitioning, consumer-group rebalance) and the streaming layer (key
groups, source-split assignment) need the *same* deterministic
primitives without importing each other.
"""

from __future__ import annotations

from collections import defaultdict

__all__ = ["IdFactory", "monotonic_ids", "stable_hash", "split_ranges"]


def stable_hash(key: str) -> int:
    """FNV-1a 64-bit — stable across processes, unlike built-in hash()."""
    h = 1469598103934665603
    for byte in key.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) % (1 << 64)
    return h


def split_ranges(n_items: int, n_workers: int) -> list[range]:
    """Contiguous range assignment of ``n_items`` slots to ``n_workers``.

    Worker ``i`` owns ``range(ceil(i*n/w), ceil((i+1)*n/w))`` — the
    Flink key-group formula, which the consumer group's range assignment
    and the streaming layer's key-group/split mapping both use, so a
    topic partitioned P-ways and an operator at parallelism P line up
    slot for slot.  Sizes differ by at most one; early workers get the
    extra slots.
    """
    if n_workers < 1:
        raise ValueError("n_workers must be >= 1")
    out = []
    for i in range(n_workers):
        start = -(-(i * n_items) // n_workers)        # ceil division
        stop = -(-((i + 1) * n_items) // n_workers)
        out.append(range(start, stop))
    return out


class IdFactory:
    """Per-namespace counters producing readable unique ids."""

    def __init__(self) -> None:
        self._counters: defaultdict[str, int] = defaultdict(int)

    def next(self, namespace: str) -> str:
        """Return the next id for ``namespace``, e.g. ``"frame-0007"``."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return f"{namespace}-{value:04d}"

    def next_int(self, namespace: str) -> int:
        """Return the next raw integer for ``namespace`` (starting at 0)."""
        value = self._counters[namespace]
        self._counters[namespace] = value + 1
        return value

    def peek(self, namespace: str) -> int:
        """Return the integer the next call would use, without consuming."""
        return self._counters[namespace]


def monotonic_ids(namespace: str):
    """Infinite generator of ids for one namespace (convenience)."""
    factory = IdFactory()
    while True:
        yield factory.next(namespace)
