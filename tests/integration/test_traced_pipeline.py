"""Integration tests: end-to-end tracing across every subsystem.

The contract under test (gated continuously by ``tools/check_obs.py``):
a traced reference run yields ONE connected span tree rooted at
``frame`` covering produce -> broker hop -> consume -> every logical
streaming operator -> sink -> offload -> render, and the tree's shape is
identical in per-item, batched and chained execution.
"""

from collections import Counter as TallyCounter

import pytest

from repro.chaos.harness import reference_operator_names
from repro.eventlog.broker import LogCluster, TopicConfig
from repro.eventlog.consumer import Consumer
from repro.eventlog.producer import Producer
from repro.obs import (
    JsonLinesExporter,
    Tracer,
    build_tree,
    critical_path,
    read_jsonl,
    span_to_dict,
    traced_reference_run,
    tree_is_connected,
)
from repro.util import SimClock

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}
N_EVENTS = 60


@pytest.fixture(scope="module")
def runs():
    return {mode: traced_reference_run(seed=0, n_events=N_EVENTS, **kwargs)
            for mode, kwargs in MODES.items()}


def _shape(spans) -> TallyCounter:
    by_id = {s.span_id: s for s in spans}
    return TallyCounter(
        (s.name, by_id[s.parent_id].name if s.parent_id in by_id else None)
        for s in spans)


class TestCompleteness:
    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_single_connected_tree(self, runs, mode):
        run = runs[mode]
        assert run.tracer.open_spans() == []
        assert tree_is_connected(run.tracer.spans)
        [root] = build_tree(run.tracer.spans)
        assert root.name == "frame"
        assert root.span["attrs"]["mode"] == mode

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_covers_every_stage(self, runs, mode):
        names = TallyCounter(s.name for s in runs[mode].tracer.spans)
        assert names["produce"] == N_EVENTS
        assert names["consume"] == N_EVENTS
        assert names["offload:frame"] == 1
        assert names["offload:attempt"] >= 1
        assert names["render:compose"] == 1
        for stage in ("ingest", "stream", "offload", "render"):
            assert names[stage] == 1, stage

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_job_span_covers_every_logical_operator(self, runs, mode):
        [root] = build_tree(runs[mode].tracer.spans)
        [job] = [n for n in root.walk() if n.name.startswith("job:")]
        children = {c.name for c in job.children}
        wanted = ({f"op:{name}" for name in reference_operator_names()}
                  | {"source:events", "sink:out"})
        assert wanted <= children

    @pytest.mark.parametrize("mode", sorted(MODES))
    def test_consume_spans_parented_across_broker_hop(self, runs, mode):
        spans = runs[mode].tracer.spans
        produce_ids = {s.span_id for s in spans if s.name == "produce"}
        consumes = [s for s in spans if s.name == "consume"]
        assert consumes
        assert all(s.parent_id in produce_ids for s in consumes)

    def test_critical_path_reaches_a_leaf_stage(self, runs):
        [root] = build_tree(runs["chained"].tracer.spans)
        path = critical_path(root)
        assert path[0].name == "frame"
        assert len(path) >= 2
        assert path[-1].children == []


class TestModeInvariance:
    def test_span_tree_shape_identical_across_modes(self, runs):
        shapes = {mode: _shape(run.tracer.spans)
                  for mode, run in runs.items()}
        assert shapes["batched"] == shapes["per_item"]
        assert shapes["chained"] == shapes["per_item"]

    def test_sinks_identical_across_modes(self, runs):
        base = runs["per_item"].sinks
        for mode in ("batched", "chained"):
            assert runs[mode].sinks == base, mode

    def test_runs_are_reproducible(self):
        a = traced_reference_run(seed=0, n_events=20)
        b = traced_reference_run(seed=0, n_events=20)
        assert ([span_to_dict(s) for s in a.tracer.spans]
                == [span_to_dict(s) for s in b.tracer.spans])
        assert a.registry.snapshot() == b.registry.snapshot()


class TestBrokerHopPropagation:
    def test_producer_injects_consumer_parents(self):
        """Standalone producer -> cluster -> consumer: the traceparent
        header carries the produce span's context across the hop."""
        clock = SimClock()
        tracer = Tracer(clock)
        cluster = LogCluster(num_brokers=3)
        cluster.create_topic(TopicConfig("t", partitions=2, replication=2))
        producer = Producer(cluster, clock=clock, tracer=tracer)
        for i in range(8):
            producer.send("t", {"i": i}, key=str(i))

        consumer = Consumer(cluster, "t", tracer=tracer)
        records = consumer.poll(max_records=64)
        assert len(records) == 8
        for record in records:
            ctx = Tracer.parse_traceparent(record.headers["traceparent"])
            assert ctx is not None

        produce = {s.span_id: s for s in tracer.spans if s.name == "produce"}
        consumes = [s for s in tracer.spans if s.name == "consume"]
        assert len(produce) == 8 and len(consumes) == 8
        for span in consumes:
            parent = produce[span.parent_id]
            assert span.trace_id == parent.trace_id
            assert span.end_time is not None

    def test_untraced_producer_yields_rootless_consumes(self):
        """Records without a traceparent header still consume cleanly —
        the consume spans just start fresh traces."""
        cluster = LogCluster(num_brokers=1)
        cluster.create_topic(TopicConfig("t"))
        producer = Producer(cluster)  # no tracer: no header injected
        producer.send("t", {"x": 1})
        tracer = Tracer()
        consumer = Consumer(cluster, "t", tracer=tracer)
        assert len(consumer.poll()) == 1
        [consume] = [s for s in tracer.spans if s.name == "consume"]
        assert consume.parent_id is None


class TestExportRoundTrip:
    def test_jsonl_round_trip_preserves_the_real_tree(self, runs, tmp_path):
        run = runs["chained"]
        path = tmp_path / "trace.jsonl"
        exporter = JsonLinesExporter(path)
        assert exporter.export_spans(run.tracer.spans) == len(run.tracer.spans)
        exporter.export_metrics(run.registry.snapshot())

        spans, metrics = read_jsonl(path)
        assert tree_is_connected(spans)
        assert _shape_from_dicts(spans) == _shape(run.tracer.spans)
        assert metrics == [
            {k: pytest.approx(v)
             for k, v in run.registry.snapshot().items()}]

    def test_trace_report_cli_renders(self, runs, tmp_path, capsys):
        import importlib.util
        import pathlib
        tool = (pathlib.Path(__file__).resolve().parents[2]
                / "tools" / "trace_report.py")
        spec = importlib.util.spec_from_file_location("trace_report", tool)
        module = importlib.util.module_from_spec(spec)
        spec.loader.exec_module(module)

        run = runs["chained"]
        module.report([span_to_dict(s) for s in run.tracer.spans],
                      run.registry.snapshot())
        out = capsys.readouterr().out
        assert "== span tree ==" in out
        assert "== critical path ==" in out
        assert "frame" in out and "render:compose" in out
        assert "== metrics ==" in out


def _shape_from_dicts(spans) -> TallyCounter:
    by_id = {s["span_id"]: s for s in spans}
    return TallyCounter(
        (s["name"],
         by_id[s["parent_id"]]["name"] if s.get("parent_id") in by_id
         else None)
        for s in spans)
