"""Cross-region topic replication with bounded, observable lag.

A :class:`ReplicatedTopic` asynchronously mirrors one topic from a
source :class:`~repro.eventlog.broker.LogCluster` (the primary region)
into a destination cluster (a standby region), partition by partition
and strictly in order.  The mirror is itself a client of both clusters,
so it composes with broker failures on either side.

Exactly-once mirroring reuses the idempotent-producer machinery
(:meth:`LogCluster.append_idempotent`): every mirrored record carries a
contiguous per-partition sequence number, so a re-pumped batch (e.g.
after a mirror crash and offset rewind) deduplicates to the original
offsets, and a *fenced* epoch bump (:meth:`ReplicatedTopic.fence`)
permanently locks out a zombie mirror incarnation after failover — the
same fencing path transactional sinks use.

Because mirroring preserves order and never duplicates, the destination
partition is always a **prefix** of the source partition: offsets line
up one-to-one.  That is what lets a failed-over job restore a
checkpoint taken against the primary and resume reading the replica at
the same positions.

Lag is first-class: :meth:`lag` reports, per partition, how many source
records the replica has not yet applied; :meth:`pump` drains until lag
is within the configured ``max_lag`` bound, so a deployment that pumps
once per supervision step keeps replication lag observable *and*
bounded.
"""

from __future__ import annotations

from ..util.errors import ConfigError, LogError
from .broker import LogCluster, TopicConfig

__all__ = ["ReplicatedTopic"]


class ReplicatedTopic:
    """Asynchronous fenced mirror of one topic between two clusters."""

    def __init__(self, source: LogCluster, dest: LogCluster, topic: str,
                 *, producer_id: int = 9_000, max_lag: int = 0,
                 batch: int = 256) -> None:
        if max_lag < 0:
            raise ConfigError("max_lag must be non-negative")
        if batch < 1:
            raise ConfigError("batch must be >= 1")
        self.source = source
        self.dest = dest
        self.topic = topic
        self.producer_id = producer_id
        self.max_lag = max_lag
        self.batch = batch
        self.epoch = 0
        self.fenced = False
        config = source.topic_config(topic)
        if topic not in dest.topics():
            dest.create_topic(TopicConfig(name=topic,
                                          partitions=config.partitions))
        elif dest.partition_count(topic) != config.partitions:
            raise ConfigError(
                f"mirror of {topic!r}: destination has "
                f"{dest.partition_count(topic)} partitions, source "
                f"{config.partitions}")
        self.partitions = config.partitions
        #: next source offset to mirror, per partition; because the
        #: replica is a strict prefix, this doubles as the sequence
        #: number of the next mirrored record
        self._positions: dict[int, int] = {
            p: dest.end_offset(topic, p) for p in range(self.partitions)
        }
        self.mirrored = 0

    # -- observability ----------------------------------------------------

    def lag(self) -> dict[int, int]:
        """Per-partition replication lag: source records not yet applied
        to the replica."""
        return {
            p: self.source.end_offset(self.topic, p)
            - self.dest.end_offset(self.topic, p)
            for p in range(self.partitions)
        }

    def max_observed_lag(self) -> int:
        return max(self.lag().values(), default=0)

    # -- control ----------------------------------------------------------

    def fence(self) -> int:
        """Fence this incarnation's epoch: any still-running mirror at
        the old epoch gets a ``fenced`` :class:`LogError` on its next
        append.  Called by the region controller at failover, before the
        standby starts serving, so a zombie primary-side mirror can
        never write behind the new deployment's back.  Returns the new
        epoch."""
        self.epoch += 1
        self.fenced = True
        return self.epoch

    def pump(self, partition: int | None = None) -> int:
        """Mirror pending records until lag is within ``max_lag``.

        Returns the number of records applied to the replica.  Raises
        the underlying :class:`~repro.util.errors.BrokerDown` when a
        side is unavailable (the caller's supervision loop decides what
        that means), and :class:`LogError` once fenced.
        """
        if self.fenced:
            raise LogError(
                f"mirror of {self.topic!r} is fenced at epoch {self.epoch}")
        parts = ([partition] if partition is not None
                 else list(range(self.partitions)))
        applied = 0
        for p in parts:
            while (self.source.end_offset(self.topic, p)
                   - self._positions[p]) > self.max_lag:
                records = self.source.read(self.topic, p,
                                           self._positions[p], self.batch)
                if not records:
                    break
                for offset, record in records:
                    got = self.dest.append_idempotent(
                        self.topic, p, record,
                        producer_id=self.producer_id,
                        sequence=offset, epoch=self.epoch)
                    if got != offset:
                        raise LogError(
                            f"mirror of {self.topic!r}[{p}] diverged: "
                            f"source offset {offset} landed at replica "
                            f"offset {got}")
                    self._positions[p] = offset + 1
                    applied += 1
        self.mirrored += applied
        return applied

    def resync(self) -> None:
        """Re-derive read positions from the replica itself — the crash
        recovery path.  A restarted mirror resumes exactly where the
        replica ends; because mirrored sequence numbers *are* replica
        offsets, the idempotent sequence space stays contiguous and a
        half-applied batch whose append landed but whose position
        update was lost deduplicates on the retry."""
        self._positions = {
            p: self.dest.end_offset(self.topic, p)
            for p in range((self.partitions))
        }
