"""Experiment F7 (Figure 7 and Section 3.2: tourism overlays and the
Ingress-style game).

Claims under test: "a cluster of bobbling tags, not aligned with
anything ... seem not interesting, unhelpful, and not better than simply
displaying the data on a 2D map" — we quantify the bubble failure vs the
registered/decluttered overlay as POI density grows; and "AR promotes
gamification of travel to increase tourists' interest" — portal capture
vs organic encounters along mobility traces.
"""

import numpy as np

from repro.apps import TourismApp
from repro.core import ARBigDataPipeline, DEFAULT_INTRINSICS, PipelineConfig
from repro.datagen import MobilityConfig, generate_population
from repro.sensors import Poi, PoiDatabase
from repro.util.geometry import Rect
from repro.util.rng import make_rng

from tableprint import print_table

DENSITIES = [10, 30, 60, 120]  # POIs in the downtown view


def _app(rng, downtown):
    pois = PoiDatabase(Rect(0, 0, 3000, 3000))
    for i in range(downtown):
        pois.add(Poi(poi_id=f"dt-{i:03d}", name=f"POI {i}",
                     category="landmark",
                     x=min(max(1500.0 + float(rng.normal(0, 150.0)), 0.0),
                           3000.0),
                     y=min(max(1500.0 + float(rng.normal(0, 150.0)), 0.0),
                           3000.0),
                     popularity=float(downtown - i)))
    for i in range(60):
        pois.add(Poi(poi_id=f"sub-{i:03d}", name=f"Suburb {i}",
                     category="cafe",
                     x=float(rng.uniform(0, 3000)),
                     y=float(rng.uniform(0, 3000)),
                     popularity=1.0))
    return TourismApp(ARBigDataPipeline(PipelineConfig(seed=42)), pois)


def run_overlay_experiment():
    rows = []
    for density in DENSITIES:
        rng = make_rng(42)
        app = _app(rng, density)
        comparison = app.compare_overlays(1500, 1500, (1600, 1500),
                                          DEFAULT_INTRINSICS,
                                          radius_m=600, limit=100)
        rows.append([density, comparison.labels,
                     comparison.naive_useful_ratio,
                     comparison.smart_useful_ratio,
                     comparison.naive_overlap_ratio,
                     comparison.smart_overlap_ratio])
    return rows


def run_game_experiment():
    rng = make_rng(43)
    app = _app(rng, 60)
    rows = []
    for n_tourists in [5, 20, 50]:
        traces = generate_population(
            n_tourists, rng, MobilityConfig(steps=150, area_m=3000.0))
        stats = app.run_game(traces, portal_count=15, encounter_m=40.0,
                             detour_m=180.0)
        rows.append([n_tourists, stats.visits_plain,
                     stats.visits_gamified, stats.engagement_uplift])
    return rows


def bench_fig7_tourism_overlays(benchmark):
    rows = benchmark.pedantic(run_overlay_experiment, rounds=1,
                              iterations=1)
    print_table(
        "F7a Sec 3.2: floating bubbles vs registered/decluttered overlay",
        ["downtown POIs", "labels in view", "naive useful",
         "smart useful", "naive overlap", "smart overlap"],
        rows,
        note="as density grows the bubble overlay collapses "
             "(MacIntyre's 'POIs are pointless'); declutter holds")
    for row in rows:
        assert row[3] >= row[2]  # smart never worse
        assert row[5] <= row[4] + 1e-9  # smart never more overlapped
    # Dense view: bubbles collapse, declutter keeps most labels useful.
    dense = rows[-1]
    assert dense[2] < 0.3
    assert dense[3] > 0.5
    assert dense[4] > 0.0
    assert dense[5] == 0.0


def bench_fig7_tourism_game(benchmark):
    rows = benchmark.pedantic(run_game_experiment, rounds=1, iterations=1)
    print_table(
        "F7b Figure 7: Ingress-style gamification engagement",
        ["tourists", "organic POI encounters", "gamified encounters",
         "engagement uplift"],
        rows,
        note="portals within detour range attract players the plain "
             "overlay never brings to the spot")
    for row in rows:
        assert row[2] >= row[1]
    assert rows[-1][3] > 0.1  # game adds real engagement at scale
