"""Public-services scenario (paper Section 3.4, Figures 2 and 9).

A city operations picture: VANET beacons feed collision warnings
(including X-ray blind-spot warnings through the traffic ahead), an
AR-assisted security checkpoint is compared against manual screening,
and a civil-engineering crew works an excavation site whose
design-vs-as-built diff is overlaid day by day with per-role views.

Run:  python examples/smart_city.py
"""

from repro import ARBigDataPipeline, PipelineConfig
from repro.apps import PublicServicesApp
from repro.datagen import ExcavationSite, RingRoadSim
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(47)
    app = PublicServicesApp(ARBigDataPipeline(PipelineConfig(seed=47)))

    # -- traffic: a stalled car creates a shock wave ------------------------
    sim = RingRoadSim(rng, num_vehicles=30, ring_length_m=1500.0)
    sim.force_slowdown(8, start_s=10.0, end_s=120.0, speed_mps=0.3)
    warned_total = set()
    for _step in range(120):  # one minute of traffic
        sim.step(0.5)
        app.ingest_beacons(sim.beacons())
        for threat in app.assess_threats(sim):
            if threat.warning:
                warned_total.add(threat.vehicle_id)
    blind = app.blind_spot_warnings(sim, lookahead=4)
    print(f"traffic: {len(warned_total)} vehicles got collision "
          f"warnings; {len(blind)} warned about a hazard hidden "
          f"behind the car ahead (VANET x-ray)")

    # -- security screening --------------------------------------------------
    manual = app.run_screening(rng, passengers=200,
                               arrival_rate_per_s=0.35, mode="manual")
    ar = app.run_screening(rng, passengers=200,
                           arrival_rate_per_s=0.35, mode="ar")
    print(f"\nscreening at 0.35 pax/s: manual waits "
          f"{manual.mean_wait_s:.0f}s ({manual.throughput_per_min:.1f}"
          f"/min) vs AR {ar.mean_wait_s:.1f}s "
          f"({ar.throughput_per_min:.1f}/min)")

    # -- excavation site ------------------------------------------------------
    site = ExcavationSite(rng, nx=30, ny=20)
    print("\nexcavation (design vs as-built):")
    for day in range(0, 15, 3):
        scene = app.excavation_overlay(site)
        print(f"  day {day:2d}: progress {site.progress:5.1%}, "
              f"{site.deviation_cells():4d} cells off-design, "
              f"{len(scene)} overlay annotations")
        for _ in range(3):
            site.excavate_day(fraction=0.25, noise_m=0.05)

    # -- per-role subsurface views ---------------------------------------------
    utilities = (
        [{"id": i, "kind": "electrical", "x": i * 2.0, "y": 0.0,
          "depth": 0.8} for i in range(12)]
        + [{"id": 100 + i, "kind": "water", "x": i * 2.0, "y": 4.0,
            "depth": 1.6} for i in range(9)]
        + [{"id": 200 + i, "kind": "gas", "x": i * 2.0, "y": 8.0,
            "depth": 1.2} for i in range(6)])
    print("\nfield crew role views (own lines only):")
    for view in app.role_views(utilities):
        print(f"  {view.role:12s}: sees {view.visible:2d} lines, "
              f"{view.hidden:2d} filtered out")


if __name__ == "__main__":
    main()
