"""AR rendering substrate: scene graph, occlusion, label layout,
overlay composition with frame budgets."""

from .compositor import Compositor, FrameBudget, OverlayFrame, OverlayItem
from .layout import (
    LayoutMetrics,
    PlacedLabel,
    clutter_metrics,
    declutter_layout,
    naive_layout,
)
from .occlusion import BoxOccluder, OcclusionWorld, Visibility
from .scene import Annotation, SceneGraph, SceneNode
from .stability import StabilityStats, StableLayout

__all__ = [
    "Compositor",
    "FrameBudget",
    "OverlayFrame",
    "OverlayItem",
    "LayoutMetrics",
    "PlacedLabel",
    "clutter_metrics",
    "declutter_layout",
    "naive_layout",
    "BoxOccluder",
    "OcclusionWorld",
    "Visibility",
    "Annotation",
    "SceneGraph",
    "SceneNode",
    "StabilityStats",
    "StableLayout",
]
