"""Operator chaining: fuse linear runs of operators into one node.

Flink-style task chaining for the single-threaded executor: a maximal
linear run of chainable operators (single input, single output, no
keyed state, no side-tagged edges) is fused into one
:class:`ChainedOperator` at executor build time.  Items then traverse
the whole run in a single call instead of one bounded channel hop per
operator — the per-hop deque traffic and drain bookkeeping disappear.

A chain is broken by (see docs/ARCHITECTURE.md):

- **keyed state** — reduce, window, CEP operators are shuffle points;
- **joins** — two side-tagged inputs need their own channels;
- **fan-out / fan-in** — a node with multiple downstreams (or an
  operator fed by several upstreams) must stay a routing point.

Member operators keep their identity: the job graph still names them,
the checkpoint coordinator snapshots/restores them individually, and
their ``processed``/``emitted`` counters keep working, so chaining is
invisible to everything except the channel structure.

Columnar execution composes transparently: ``process_batch`` pipes each
member's output list straight into the next member, so a
:class:`~repro.streaming.batch.RecordBatch` flows zero-copy through the
whole chain as long as every member has a columnar kernel — and the
first member without one simply decodes it via the per-item fallback in
:func:`~repro.streaming.operators._segmented`.
"""

from __future__ import annotations

from typing import Any, Iterable, Sequence

from ..util.errors import StreamError
from .element import StreamItem
from .errors import FAIL, guard_batch, guard_item
from .operators import Operator

__all__ = ["ChainedOperator"]


class ChainedOperator(Operator):
    """A fused linear run of operators executed as one node.

    The chain itself is stateless glue: member operators own all state
    and counters.  ``snapshot``/``restore`` delegate per member keyed by
    name (the executor normally checkpoints members directly through the
    job graph, but the chain stays self-contained for direct use).
    """

    chainable = False  # chains are built once; never re-fused
    requires_shuffle = False  # only non-keyed operators ever fuse
    #: optional :class:`repro.obs.profile.Profiler` (duck-typed) set by
    #: the executor — the chain times each member so per-operator wall
    #: time survives fusion.
    profiler: Any = None
    #: per-member error policies (logical member name ->
    #: :class:`~repro.streaming.errors.ErrorPolicy`), set by the
    #: executor when the job declares any.  Fusion must not change what
    #: happens to a poisoned record, so the chain enforces each
    #: member's policy exactly where the unchained executor would.
    policies: dict[str, Any] | None = None
    #: shared dead-letter list the owning executor drains and routes to
    #: the DLQ sink after each call into the chain.
    dead_letters: list | None = None
    #: optional callable ``(member_op, items) -> {offset: fault}`` from
    #: the chaos injector — injected data faults are counted per
    #: *member* input so chained and unchained runs poison the same
    #: records.
    fault_source: Any = None

    def __init__(self, operators: Sequence[Operator]) -> None:
        if len(operators) < 2:
            raise StreamError("a chain needs at least two operators")
        super().__init__("chain(" + "+".join(op.name for op in operators)
                         + ")")
        self.operators = list(operators)

    @property
    def member_names(self) -> list[str]:
        """Member operator names in chain order (used by the parallel
        executor's per-subtask bookkeeping and the chaos injector's
        crash-site targeting)."""
        return [op.name for op in self.operators]

    def _member_policy(self, op: Operator) -> Any:
        if self.policies is None:
            return None
        name = op.name
        if name.endswith("]"):
            cut = name.rfind("[")
            if cut > 0:
                name = name[:cut]
        return self.policies.get(name)

    def _guarded(self) -> bool:
        return self.policies is not None or self.fault_source is not None

    def handle(self, item: StreamItem) -> list[StreamItem]:
        pending: list[StreamItem] = [item]
        guarded = self._guarded()
        for op in self.operators:
            if not pending:
                break
            nxt: list[StreamItem] = []
            if not guarded:
                for it in pending:
                    nxt.extend(op.handle(it))
            else:
                policy = self._member_policy(op) or FAIL
                source = self.fault_source
                for it in pending:
                    faults = (source(op, (it,))
                              if source is not None else None)
                    nxt.extend(guard_item(
                        op, it, policy, self.dead_letters,
                        faults.get(0) if faults else None))
            pending = nxt
        return pending

    def process(self, element):  # pragma: no cover - handle() is the entry
        raise StreamError(
            f"chain {self.name!r} dispatches via handle()/process_batch()"
        )

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        profiler = self.profiler
        guarded = self._guarded()
        pending: list[StreamItem] | Iterable[StreamItem] = items
        for op in self.operators:
            if guarded:
                policy = self._member_policy(op) or FAIL
                pending = (list(pending)
                           if not isinstance(pending, list) else pending)
                faults = (self.fault_source(op, pending)
                          if self.fault_source is not None else None)
                started = (profiler.timer()
                           if profiler is not None else 0.0)
                pending = guard_batch(op, pending, policy,
                                      op.process_batch,
                                      self.dead_letters, faults)
                if profiler is not None:
                    profiler.record("op.wall_s", started, op=op.name)
            elif profiler is None:
                pending = op.process_batch(pending)
            else:
                started = profiler.timer()
                pending = op.process_batch(pending)
                profiler.record("op.wall_s", started, op=op.name)
            if not pending:
                return []
        return list(pending)

    def flush(self) -> list[StreamItem]:
        """Flush members head-to-tail, cascading each member's pendings
        through the rest of the chain — equivalent to the unchained
        executor flushing each node and draining its downstream hops."""
        out: list[StreamItem] = []
        for i, op in enumerate(self.operators):
            pending: list[StreamItem] = op.flush()
            for later in self.operators[i + 1:]:
                if not pending:
                    break
                pending = later.process_batch(pending)
            out.extend(pending)
        return out

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Any:
        return {op.name: op.snapshot() for op in self.operators}

    def restore(self, snapshot: Any) -> None:
        snapshot = snapshot or {}
        for op in self.operators:
            op.restore(snapshot.get(op.name))
