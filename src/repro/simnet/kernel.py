"""Discrete-event simulation kernel.

A minimal but complete event scheduler: callbacks are scheduled at
absolute simulated times onto a priority queue; :meth:`Simulator.run`
pops them in (time, insertion-order) order and advances the shared
:class:`~repro.util.clock.SimClock`.  Every latency-sensitive experiment
(offloading, remote diagnosis, screening queues) runs on this kernel.

Insertion order breaks ties deterministically, so simulations are exactly
reproducible.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Any, Callable

from ..util.clock import SimClock
from ..util.errors import SimulationError

__all__ = ["Simulator", "ScheduledEvent"]

Callback = Callable[[], Any]


@dataclass(order=True)
class ScheduledEvent:
    """An entry in the simulator's event queue."""

    time: float
    seq: int
    callback: Callback = field(compare=False)
    label: str = field(compare=False, default="")
    cancelled: bool = field(compare=False, default=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it when popped."""
        self.cancelled = True


class Simulator:
    """Deterministic single-threaded discrete-event simulator."""

    def __init__(self, clock: SimClock | None = None) -> None:
        self.clock = clock if clock is not None else SimClock()
        self._queue: list[ScheduledEvent] = []
        self._seq = 0
        self._processed = 0

    @property
    def now(self) -> float:
        return self.clock.now

    @property
    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._queue if not e.cancelled)

    @property
    def processed(self) -> int:
        """Number of callbacks executed so far."""
        return self._processed

    def schedule_at(self, when: float, callback: Callback,
                    label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` at absolute time ``when``."""
        if when < self.clock.now:
            raise SimulationError(
                f"cannot schedule event at {when!r} before now={self.clock.now!r}"
            )
        event = ScheduledEvent(when, self._seq, callback, label)
        self._seq += 1
        heapq.heappush(self._queue, event)
        return event

    def schedule_after(self, delay: float, callback: Callback,
                       label: str = "") -> ScheduledEvent:
        """Schedule ``callback`` ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        return self.schedule_at(self.clock.now + delay, callback, label)

    def schedule_every(self, interval: float, callback: Callback,
                       until: float | None = None,
                       label: str = "") -> ScheduledEvent:
        """Schedule a repeating callback every ``interval`` seconds.

        The returned handle cancels the *whole* series when cancelled.
        ``until`` (absolute time) bounds the series; otherwise it repeats
        as long as the simulation keeps running.
        """
        if interval <= 0:
            raise SimulationError(f"non-positive interval {interval!r}")

        series = ScheduledEvent(self.clock.now + interval, self._seq, callback,
                                label)

        def fire() -> None:
            if series.cancelled:
                return
            callback()
            next_time = self.clock.now + interval
            if until is None or next_time <= until:
                inner = self.schedule_at(next_time, fire, label)
                # Propagate cancellation of the series to the queued event.
                series_children.append(inner)

        series_children: list[ScheduledEvent] = []
        first = self.schedule_after(interval, fire, label)
        series_children.append(first)

        original_cancel = series.cancel

        def cancel_all() -> None:
            original_cancel()
            for child in series_children:
                child.cancel()

        series.cancel = cancel_all  # type: ignore[method-assign]
        return series

    def step(self) -> bool:
        """Run the single next event; returns False when queue is empty."""
        while self._queue:
            event = heapq.heappop(self._queue)
            if event.cancelled:
                continue
            self.clock.advance_to(event.time)
            event.callback()
            self._processed += 1
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drain the queue, optionally bounded by time and/or event count.

        Returns the number of events processed by this call.  When
        ``until`` is given, the clock is advanced to ``until`` at the end
        even if the queue drained earlier, so callers can rely on
        ``sim.now == until``.
        """
        ran = 0
        while self._queue:
            if max_events is not None and ran >= max_events:
                break
            head = self._queue[0]
            if head.cancelled:
                heapq.heappop(self._queue)
                continue
            if until is not None and head.time > until:
                break
            self.step()
            ran += 1
        if until is not None and self.clock.now < until:
            self.clock.advance_to(until)
        return ran
