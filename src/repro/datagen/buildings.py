"""Built-environment workloads: wind fields over buildings (Figure 1),
BIM excavation sites (Figure 2), and building sensor grids (Section 2.1's
"torrent of data from in-built sensors").

The wind field is a potential-flow composition: uniform flow plus
doublets at building centres, so buildings visibly deflect the flow —
the qualitative property Figure 1 illustrates.  The excavation site is a
voxel grid with design vs as-built occupancy whose diff is the overlay.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError

__all__ = ["Building", "WindField", "ExcavationSite", "SensorGrid"]


@dataclass(frozen=True)
class Building:
    """A cylinder-approximated building footprint."""

    name: str
    cx: float
    cy: float
    radius: float
    height: float

    def __post_init__(self) -> None:
        if self.radius <= 0 or self.height <= 0:
            raise ConfigError("building radius/height must be positive")


class WindField:
    """2-D potential flow around circular buildings.

    velocity(x, y) = U_inf + sum of doublet deflections; inside a
    building the velocity is zero.  Streaming samples draw sensor
    positions and return (t, x, y, vx, vy) rows.
    """

    def __init__(self, buildings: list[Building],
                 free_stream: tuple[float, float] = (5.0, 0.0)) -> None:
        self.buildings = list(buildings)
        self.free_stream = free_stream

    def velocity(self, x: float, y: float) -> tuple[float, float]:
        u, v = self.free_stream
        u_inf = np.hypot(*self.free_stream)
        for b in self.buildings:
            dx, dy = x - b.cx, y - b.cy
            r_sq = dx * dx + dy * dy
            if r_sq <= b.radius ** 2:
                return (0.0, 0.0)
            # Doublet aligned with the free stream (flow around cylinder).
            k = u_inf * b.radius ** 2
            r4 = r_sq * r_sq
            u += k * (dy * dy - dx * dx) / r4
            v += k * (-2.0 * dx * dy) / r4
        return (float(u), float(v))

    def sample_grid(self, x0: float, y0: float, x1: float, y1: float,
                    nx: int, ny: int) -> np.ndarray:
        """Rows (x, y, vx, vy) over a regular grid."""
        xs = np.linspace(x0, x1, nx)
        ys = np.linspace(y0, y1, ny)
        rows = []
        for y in ys:
            for x in xs:
                vx, vy = self.velocity(float(x), float(y))
                rows.append((float(x), float(y), vx, vy))
        return np.array(rows)

    def stream_samples(self, rng: np.random.Generator, n: int,
                       bounds: tuple[float, float, float, float],
                       noise: float = 0.1, t0: float = 0.0,
                       rate_per_s: float = 100.0) -> list[dict]:
        """Streaming sensor readings: dicts ready for the event log."""
        x0, y0, x1, y1 = bounds
        out = []
        t = t0
        for i in range(n):
            x = float(rng.uniform(x0, x1))
            y = float(rng.uniform(y0, y1))
            vx, vy = self.velocity(x, y)
            out.append({
                "sensor": f"anem-{i % 64:02d}",
                "t": t, "x": x, "y": y,
                "vx": vx + float(rng.normal(0, noise)),
                "vy": vy + float(rng.normal(0, noise)),
            })
            t += 1.0 / rate_per_s
        return out


class ExcavationSite:
    """Voxelized design vs as-built terrain (Figure 2's overlay).

    ``design`` holds target depth per (x, y) cell; ``current`` the
    as-excavated depth.  Daily scans move ``current`` toward ``design``
    with noise; the diff is what AR overlays on the pit.
    """

    def __init__(self, rng: np.random.Generator, nx: int = 40, ny: int = 30,
                 cell_m: float = 2.0, max_depth_m: float = 12.0) -> None:
        if nx < 2 or ny < 2:
            raise ConfigError("site grid too small")
        self.nx, self.ny = nx, ny
        self.cell_m = cell_m
        # Smooth design surface: superposed cosine bumps.
        xs = np.linspace(0, 1, nx)
        ys = np.linspace(0, 1, ny)
        gx, gy = np.meshgrid(xs, ys)
        self.design = max_depth_m * (0.4
                                     + 0.3 * np.cos(2 * np.pi * gx)
                                     * np.sin(np.pi * gy)
                                     + 0.3 * gy)
        self.design = np.clip(self.design, 0.5, max_depth_m)
        self.current = np.zeros_like(self.design)
        self._rng = rng

    def excavate_day(self, fraction: float = 0.15,
                     noise_m: float = 0.2) -> None:
        """One work day: move toward design by ``fraction`` of remaining."""
        if not 0 < fraction <= 1:
            raise ConfigError("fraction must be in (0, 1]")
        remaining = self.design - self.current
        dig = fraction * np.clip(remaining, 0.0, None)
        dig += self._rng.normal(0.0, noise_m, size=dig.shape)
        self.current = np.clip(self.current + np.clip(dig, 0.0, None),
                               0.0, None)

    def diff(self) -> np.ndarray:
        """Signed remaining depth (positive = still to dig, negative =
        over-excavated)."""
        return self.design - self.current

    @property
    def progress(self) -> float:
        """Volume fraction completed, over-dig clipped."""
        done = np.clip(self.current, 0.0, self.design).sum()
        return float(done / self.design.sum())

    def deviation_cells(self, tolerance_m: float = 0.3) -> int:
        """Cells outside tolerance — what field workers must act on."""
        return int((np.abs(self.diff()) > tolerance_m).sum())


class SensorGrid:
    """A building instrumented with temperature sensors (asset
    inspection of Section 2.1): smooth spatial field + hot spots."""

    def __init__(self, rng: np.random.Generator, nx: int = 10, ny: int = 8,
                 floor_m: float = 4.0, base_temp: float = 21.0) -> None:
        self.nx, self.ny = nx, ny
        self.floor_m = floor_m
        self.base_temp = base_temp
        self._rng = rng
        self._gradients = rng.normal(0.0, 0.3, size=2)
        self.hot_spots: list[tuple[int, int, float]] = []

    def add_hot_spot(self, ix: int, iy: int, delta_c: float) -> None:
        if not (0 <= ix < self.nx and 0 <= iy < self.ny):
            raise ConfigError("hot spot outside grid")
        self.hot_spots.append((ix, iy, delta_c))

    def read_all(self, t: float, noise_c: float = 0.1) -> list[dict]:
        """One reading per sensor: dicts with position and value."""
        out = []
        for iy in range(self.ny):
            for ix in range(self.nx):
                temp = (self.base_temp
                        + self._gradients[0] * ix + self._gradients[1] * iy)
                for hx, hy, delta in self.hot_spots:
                    dist_sq = (ix - hx) ** 2 + (iy - hy) ** 2
                    temp += delta * np.exp(-dist_sq / 2.0)
                out.append({
                    "sensor": f"temp-{ix:02d}-{iy:02d}",
                    "t": t,
                    "x": ix * self.floor_m, "y": iy * self.floor_m,
                    "value": float(temp + self._rng.normal(0, noise_c)),
                })
        return out
