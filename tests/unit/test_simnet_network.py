"""Unit tests: links, topology routing, failure-aware paths."""

import pytest

from repro.simnet import LINK_PRESETS, Link, LinkSpec, NodeSpec, Topology
from repro.util.errors import ConfigError, NetworkError
from repro.util.rng import make_rng


class TestLinkSpec:
    def test_nominal_transfer_time(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1000.0)
        assert spec.nominal_transfer_time(500) == pytest.approx(0.51)

    def test_zero_size_costs_propagation(self):
        spec = LinkSpec(latency_s=0.02, bandwidth_bps=1e6)
        assert spec.nominal_transfer_time(0) == pytest.approx(0.02)

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency_s=0.0, bandwidth_bps=0.0)

    def test_invalid_loss_rejected(self):
        with pytest.raises(ConfigError):
            LinkSpec(latency_s=0.0, bandwidth_bps=1.0, loss_rate=1.0)

    def test_presets_exist(self):
        for name in ("wifi", "lte", "5g", "wan", "lan", "loopback"):
            assert name in LINK_PRESETS


class TestLink:
    def test_no_jitter_no_loss_is_nominal(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1000.0)
        link = Link(spec, make_rng(0))
        assert link.transfer_time(1000) == pytest.approx(1.01)

    def test_jitter_only_adds_delay(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1e9, jitter_s=0.005)
        link = Link(spec, make_rng(1))
        for _ in range(50):
            assert link.transfer_time(100) >= spec.nominal_transfer_time(100)

    def test_loss_triggers_retries(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.3)
        link = Link(spec, make_rng(2))
        times = []
        for _ in range(100):
            try:
                times.append(link.transfer_time(100))
            except NetworkError:
                pass  # an unlucky total loss is legal at 30% loss rate
        assert link.retries > 0
        nominal = spec.nominal_transfer_time(100)
        assert max(times) >= 2 * nominal  # at least one retry happened

    def test_total_loss_raises(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1e6, loss_rate=0.99)
        link = Link(spec, make_rng(3), max_retries=2)
        with pytest.raises(NetworkError):
            for _ in range(200):
                link.transfer_time(10)

    def test_round_trip_is_two_transfers(self):
        spec = LinkSpec(latency_s=0.01, bandwidth_bps=1000.0)
        link = Link(spec, make_rng(0))
        rtt = link.round_trip_time(1000, 500)
        assert rtt == pytest.approx(1.01 + 0.51)


class TestTopology:
    def _three_tier(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
        topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
        topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
        topology.add_link("device", "edge",
                          LinkSpec(latency_s=0.002, bandwidth_bps=25e6))
        topology.add_link("edge", "cloud",
                          LinkSpec(latency_s=0.050, bandwidth_bps=12.5e6))
        return topology

    def test_duplicate_node_rejected(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("a", cpu_hz=1e9))
        with pytest.raises(ConfigError):
            topology.add_node(NodeSpec("a", cpu_hz=1e9))

    def test_self_link_rejected(self):
        topology = Topology(make_rng(0))
        topology.add_node(NodeSpec("a", cpu_hz=1e9))
        with pytest.raises(ConfigError):
            topology.add_link("a", "a", LinkSpec(latency_s=0, bandwidth_bps=1))

    def test_route_multi_hop(self):
        topology = self._three_tier()
        assert topology.route("device", "cloud") == ["device", "edge",
                                                     "cloud"]

    def test_nodes_by_role(self):
        topology = self._three_tier()
        assert [n.name for n in topology.nodes(role="edge")] == ["edge"]

    def test_transfer_same_node_is_free(self):
        topology = self._three_tier()
        assert topology.transfer_time("device", "device", 1e6) == 0.0

    def test_multi_hop_transfer_sums_links(self):
        topology = self._three_tier()
        t = topology.transfer_time("device", "cloud", 1e6)
        expected = (0.002 + 1e6 / 25e6) + (0.050 + 1e6 / 12.5e6)
        assert t == pytest.approx(expected)

    def test_failed_node_breaks_route(self):
        topology = self._three_tier()
        topology.fail_node("edge")
        with pytest.raises(NetworkError):
            topology.route("device", "cloud")

    def test_recovery_restores_route(self):
        topology = self._three_tier()
        topology.fail_node("edge")
        topology.recover_node("edge")
        assert topology.route("device", "cloud") == ["device", "edge",
                                                     "cloud"]

    def test_nominal_path_latency(self):
        topology = self._three_tier()
        assert topology.nominal_path_latency("device", "cloud") == \
            pytest.approx(0.052)

    def test_replace_link(self):
        topology = self._three_tier()
        topology.replace_link("device", "edge",
                              LinkSpec(latency_s=0.1, bandwidth_bps=1e6))
        assert topology.nominal_path_latency("device", "edge") == \
            pytest.approx(0.1)

    def test_replace_missing_link_rejected(self):
        topology = self._three_tier()
        with pytest.raises(ConfigError):
            topology.replace_link("device", "cloud",
                                  LinkSpec(latency_s=0, bandwidth_bps=1))

    def test_compute_time(self):
        node = NodeSpec("n", cpu_hz=2e9)
        assert node.compute_time(4e9) == pytest.approx(2.0)
