"""The paper's contribution: the AR x Big-Data convergence framework.

- :class:`ARBigDataPipeline` — the end-to-end facade
- :class:`ARSession` / :class:`SharedDataset` — multi-user AR views
- :class:`TimelinessController` — Section 4.1 as a component
- :class:`PrivacyGuard` — Section 4.3 as a component
- :mod:`influence` — the computable Figure-5 model
"""

from .influence import (
    LEVELS,
    PAPER_FIGURE5,
    FieldInfluence,
    InfluenceLevel,
    classify,
    classify_score,
)
from .pipeline import (
    DEFAULT_INTRINSICS,
    AnalyticsSnapshot,
    ARBigDataPipeline,
    PipelineConfig,
)
from .privacy_guard import PrivacyConfig, PrivacyGuard
from .session import ARSession, Probe, SharedDataset
from .timeliness import (
    AdaptiveQualityController,
    FrameTiming,
    TimelinessController,
    TimelinessReport,
)

__all__ = [
    "LEVELS",
    "PAPER_FIGURE5",
    "FieldInfluence",
    "InfluenceLevel",
    "classify",
    "classify_score",
    "DEFAULT_INTRINSICS",
    "AnalyticsSnapshot",
    "ARBigDataPipeline",
    "PipelineConfig",
    "PrivacyConfig",
    "PrivacyGuard",
    "ARSession",
    "Probe",
    "SharedDataset",
    "AdaptiveQualityController",
    "FrameTiming",
    "TimelinessController",
    "TimelinessReport",
]
