"""Causal tracing spans on simulated time.

A :class:`Span` is one timed, attributed unit of work; spans form a tree
via ``parent_id`` within a ``trace_id``.  The :class:`Tracer` hands out
deterministic identifiers (``t-0000``/``s-00000`` counters, never
UUIDs), stamps spans from a :class:`~repro.util.clock.SimClock` (or any
injected ``timer``), and keeps an explicit active-span stack so nested
instrumentation parents correctly without thread-local magic.

Cross-process propagation mirrors W3C ``traceparent``: a span's context
serializes to ``"<trace_id>/<span_id>"`` and rides in event-log record
headers, so a consumer on the far side of a broker hop can parent its
spans to the producer's (see :mod:`repro.eventlog.producer`).

A tracer constructed with ``enabled=False`` returns a shared no-op span
from every call — instrumented code pays one method call and no
allocation, which is what keeps the disabled-path overhead at ~0%
(gated by ``tools/check_obs.py``).
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Iterator

from ..util.clock import SimClock

__all__ = ["Span", "SpanEvent", "SpanContext", "Tracer", "NOOP_SPAN"]

#: (trace_id, span_id) — the portable identity of a span.
SpanContext = tuple[str, str]


class SpanEvent:
    """A point-in-time annotation inside a span."""

    __slots__ = ("name", "timestamp", "attrs")

    def __init__(self, name: str, timestamp: float,
                 attrs: dict[str, Any] | None = None) -> None:
        self.name = name
        self.timestamp = timestamp
        self.attrs = attrs or {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SpanEvent({self.name!r}, t={self.timestamp:.6f})"


class Span:
    """One node of a trace tree."""

    __slots__ = ("trace_id", "span_id", "parent_id", "name", "start_time",
                 "end_time", "attrs", "events", "_tracer")

    def __init__(self, trace_id: str, span_id: str, parent_id: str | None,
                 name: str, start_time: float,
                 attrs: dict[str, Any] | None = None,
                 tracer: "Tracer | None" = None) -> None:
        self.trace_id = trace_id
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start_time = start_time
        self.end_time: float | None = None
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.events: list[SpanEvent] = []
        self._tracer = tracer

    # -- identity -----------------------------------------------------------

    @property
    def context(self) -> SpanContext:
        return (self.trace_id, self.span_id)

    @property
    def traceparent(self) -> str:
        """Header-safe serialized context (``"trace/span"``)."""
        return f"{self.trace_id}/{self.span_id}"

    # -- mutation -----------------------------------------------------------

    def set_attr(self, key: str, value: Any) -> "Span":
        self.attrs[key] = value
        return self

    def add_event(self, name: str, **attrs: Any) -> "Span":
        now = self._tracer.now() if self._tracer is not None else (
            self.end_time if self.end_time is not None else self.start_time)
        self.events.append(SpanEvent(name, now, attrs or None))
        return self

    def end(self, at: float | None = None) -> "Span":
        """Close the span (idempotent — the first end time wins)."""
        if self.end_time is None:
            if at is not None:
                self.end_time = float(at)
            elif self._tracer is not None:
                self.end_time = self._tracer.now()
            else:
                self.end_time = self.start_time
        return self

    # -- reads --------------------------------------------------------------

    @property
    def duration(self) -> float:
        if self.end_time is None:
            return 0.0
        return self.end_time - self.start_time

    @property
    def is_recording(self) -> bool:
        return True

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.end()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "open" if self.end_time is None else f"{self.duration:.6f}s"
        return f"Span({self.name!r}, {self.span_id}, {state})"


class _NoopSpan:
    """Shared do-nothing span returned by a disabled tracer."""

    __slots__ = ()

    trace_id = ""
    span_id = ""
    parent_id = None
    name = ""
    start_time = 0.0
    end_time = 0.0
    attrs: dict[str, Any] = {}
    events: list[SpanEvent] = []
    duration = 0.0
    is_recording = False
    context: SpanContext = ("", "")
    traceparent = ""

    def set_attr(self, key: str, value: Any) -> "_NoopSpan":
        return self

    def add_event(self, name: str, **attrs: Any) -> "_NoopSpan":
        return self

    def end(self, at: float | None = None) -> "_NoopSpan":
        return self

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc: Any) -> None:
        return None


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Creates spans with deterministic ids and simulated timestamps.

    clock    the time source for span start/end/event stamps; ``None``
             stamps everything at 0.0 (structure-only tracing)
    timer    overrides ``clock`` with an arbitrary ``() -> float``
             callable (e.g. ``time.perf_counter`` for wall profiling —
             opt-in only, it breaks run-to-run reproducibility)
    enabled  ``False`` turns every call into a no-op returning
             :data:`NOOP_SPAN`
    """

    def __init__(self, clock: SimClock | None = None, *,
                 enabled: bool = True, timer: Any = None) -> None:
        self.clock = clock
        self.timer = timer
        self.enabled = enabled
        #: every span ever started, in start order (open spans included)
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._trace_seq = 0
        self._span_seq = 0

    # -- time ---------------------------------------------------------------

    def now(self) -> float:
        if self.timer is not None:
            return float(self.timer())
        if self.clock is not None:
            return self.clock.now
        return 0.0

    # -- span lifecycle -----------------------------------------------------

    def start_span(self, name: str,
                   parent: "Span | SpanContext | None" = None,
                   attrs: dict[str, Any] | None = None) -> Span:
        """Open a span.  ``parent`` may be a :class:`Span`, a serialized
        :data:`SpanContext` from across a broker hop, or ``None`` — in
        which case the innermost active ``span()`` context is the parent
        (a brand-new trace when there is none)."""
        if not self.enabled:
            return NOOP_SPAN  # type: ignore[return-value]
        if parent is None:
            parent = self._stack[-1] if self._stack else None
        if isinstance(parent, Span):
            trace_id, parent_id = parent.trace_id, parent.span_id
        elif isinstance(parent, _NoopSpan) or parent is None:
            trace_id, parent_id = self._next_trace_id(), None
        else:  # a remote SpanContext tuple
            trace_id, parent_id = parent
        span = Span(trace_id=trace_id, span_id=self._next_span_id(),
                    parent_id=parent_id, name=name, start_time=self.now(),
                    attrs=attrs, tracer=self)
        self.spans.append(span)
        return span

    @contextmanager
    def span(self, name: str, parent: "Span | SpanContext | None" = None,
             **attrs: Any) -> Iterator[Span]:
        """Open a span, make it the active parent, end it on exit."""
        s = self.start_span(name, parent=parent, attrs=attrs or None)
        if not s.is_recording:
            yield s
            return
        self._stack.append(s)
        try:
            yield s
        finally:
            self._stack.pop()
            s.end()

    @contextmanager
    def activate(self, span: Span) -> Iterator[Span]:
        """Make an already-open span the active parent without ending it
        on exit (used by long-lived spans like the executor's job span)."""
        if not span.is_recording:
            yield span
            return
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()

    @property
    def active(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    # -- reads --------------------------------------------------------------

    def finished(self) -> list[Span]:
        return [s for s in self.spans if s.end_time is not None]

    def open_spans(self) -> list[Span]:
        return [s for s in self.spans if s.end_time is None]

    # -- propagation --------------------------------------------------------

    @staticmethod
    def parse_traceparent(value: str | None) -> SpanContext | None:
        """Inverse of :attr:`Span.traceparent`; ``None`` on garbage."""
        if not value:
            return None
        trace_id, sep, span_id = value.partition("/")
        if not sep or not trace_id or not span_id:
            return None
        return (trace_id, span_id)

    # -- ids ----------------------------------------------------------------

    def _next_trace_id(self) -> str:
        value = self._trace_seq
        self._trace_seq += 1
        return f"t-{value:04d}"

    def _next_span_id(self) -> str:
        value = self._span_seq
        self._span_seq += 1
        return f"s-{value:05d}"
