"""AR tracking + offloading walkthrough (Azuma's loop + Section 4.1).

Renders synthetic camera frames of a textured planar target, tracks it
(detect -> describe -> match -> RANSAC -> pose), measures registration
error against ground truth, and prices every frame's compute placement
across device / edge / cloud under a 30 fps deadline.

Run:  python examples/ar_tracking_offload.py
"""

import numpy as np

from repro import ARBigDataPipeline, PipelineConfig
from repro.offload import DeadlineEnergyAware
from repro.util.rng import make_rng
from repro.vision import (
    CameraIntrinsics,
    PlanarTarget,
    PlanarTracker,
    look_at,
    make_texture,
    render_plane,
)


def main() -> None:
    rng = make_rng(57)
    intrinsics = CameraIntrinsics(fx=500, fy=500, cx=160, cy=120,
                                  width=320, height=240)
    target = PlanarTarget(make_texture(rng, size=256), width_m=0.5,
                          height_m=0.5)
    tracker = PlanarTracker(target, intrinsics, rng)
    print(f"reference target described: "
          f"{tracker.reference_feature_count} features")

    pipeline = ARBigDataPipeline(PipelineConfig(
        seed=57, deadline_s=1.0 / 30.0, access_link="wifi"))
    pipeline.set_offload_policy(DeadlineEnergyAware(deadline_s=1.0 / 30.0))

    # A camera orbit: 12 frames around the target.
    print("\nframe  inliers  reg.err(px)  placement  latency(ms)  "
          "deadline")
    for i in range(12):
        angle = 0.3 + i * 0.05
        eye = [0.25 + 0.4 * np.sin(angle), 0.25 + 0.1 * np.cos(angle),
               -0.7 - 0.02 * i]
        pose_true = look_at(eye=eye, target=[0.25, 0.25, 0.0])
        frame = render_plane(target, intrinsics, pose_true, rng=rng,
                             noise_sigma=0.01,
                             gain=1.0 - 0.02 * i)  # dimming light
        result = tracker.track(frame)
        reg_error = tracker.registration_error_px(result, pose_true)
        timing = pipeline.timeliness.admit_frame(tracker.last_profile)
        print(f"{i:5d}  {result.num_inliers:7d}  {reg_error:11.2f}  "
              f"{timing.placement:9s}  {timing.latency_s * 1000:11.1f}  "
              f"{'met' if timing.met_deadline else 'MISS'}")

    report = pipeline.timeliness.report
    print(f"\nsummary: {report.frames} frames, mean latency "
          f"{report.mean_latency_s * 1000:.1f} ms, miss rate "
          f"{report.miss_rate:.0%}, energy/frame "
          f"{report.mean_energy_j * 1000:.1f} mJ, placements "
          f"{report.placements}")
    print(f"p95 latency {pipeline.timeliness.latency_p95.value() * 1000:.1f} ms")


if __name__ == "__main__":
    main()
