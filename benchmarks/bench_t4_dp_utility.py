"""Experiment T4 (Section 4.3, differential privacy utility).

Claims under test: (a) "differential privacy is a possible way of
accessing data with a limited privacy risk, however the information is
reduced too far to be useful in practice" — utility collapses as epsilon
shrinks; (b) "it is ill-suited for dynamically changing data" — a static
DP release goes stale on a drifting stream, and refreshing it burns the
budget linearly.

Output: per epsilon, the error of a DP-noised product-popularity
histogram and the precision of recommendations re-ranked by it; plus the
staleness-vs-budget trade for a drifting stream.
"""

import numpy as np

from repro.analytics import precision_at_k
from repro.datagen import RetailWorld
from repro.privacy import (
    BudgetAccountant,
    LaplaceMechanism,
    private_top_k,
)
from repro.util.errors import BudgetExhausted
from repro.util.rng import make_rng

from tableprint import print_table

EPSILONS = [10.0, 1.0, 0.5, 0.1, 0.05, 0.01]


def _popularity(world, interactions):
    counts = {p.product_id: 0.0 for p in world.products}
    for interaction in interactions:
        counts[interaction.item] += 1.0
    return counts


def run_utility():
    rng = make_rng(6)
    world = RetailWorld.generate(rng, num_products=100,
                                 num_categories=10, num_shoppers=80,
                                 preference_concentration=0.3)
    interactions = world.interactions(rng, events_per_shopper=30)
    truth = _popularity(world, interactions)
    items = sorted(truth)
    true_vec = np.array([truth[i] for i in items])
    true_rank = [i for _c, i in
                 sorted(((-truth[i], i) for i in items))]
    # Ground-truth relevance: top-decile products.
    relevant = set(true_rank[:10])
    rows = []
    for epsilon in EPSILONS:
        mechanism = LaplaceMechanism(epsilon=epsilon, sensitivity=1.0,
                                     rng=rng)
        errors, precisions = [], []
        for _trial in range(15):
            noisy = mechanism.release(true_vec)
            errors.append(float(np.abs(noisy - true_vec).mean()))
            noisy_rank = [items[j] for j in np.argsort(-noisy)]
            precisions.append(precision_at_k(noisy_rank[:10], relevant,
                                             10))
        rows.append([epsilon, float(np.mean(errors)),
                     float(np.mean(precisions))])
    return rows


def run_drift():
    """Static release vs drifting truth, refresh vs budget."""
    rng = make_rng(7)
    accountant = BudgetAccountant(epsilon=1.0)
    mechanism = LaplaceMechanism(epsilon=0.2, sensitivity=1.0, rng=rng,
                                 accountant=accountant)
    truth = 100.0
    release = mechanism.release(truth)
    rows = []
    refusals = 0
    for step in range(10):
        truth += 30.0  # the stream drifts
        stale_error = abs(release - truth)
        try:
            release = mechanism.release(truth)
            refreshed = True
        except BudgetExhausted:
            refreshed = False
            refusals += 1
        rows.append([step, truth, round(stale_error, 1), refreshed,
                     round(accountant.remaining_epsilon, 2)])
    return rows, refusals


def run_selection_comparison():
    """Laplace-then-rank vs exponential-mechanism peeling at *equal,
    correctly calibrated* user-level epsilon.

    Releasing the whole noisy histogram must pay a user's full L1
    footprint (every interaction they made) in sensitivity; selecting
    top-k by peeling pays only the user's largest per-item contribution
    per pick.  That asymmetry is why selection mechanisms survive tight
    budgets that flatten noisy histograms.
    """
    rng = make_rng(8)
    world = RetailWorld.generate(rng, num_products=100,
                                 num_categories=10, num_shoppers=80,
                                 preference_concentration=0.3)
    interactions = world.interactions(rng, events_per_shopper=30)
    # Contribution capping (standard DP practice): count *distinct
    # users* per item, so one user moves any single count by at most 1.
    pairs = {(it.user, it.item) for it in interactions}
    truth: dict[str, float] = {p.product_id: 0.0
                               for p in world.products}
    for _user, item in pairs:
        truth[item] += 1.0
    items = sorted(truth)
    true_vec = np.array([truth[i] for i in items])
    relevant = {items[j] for j in np.argsort(-true_vec)[:10]}
    # A user still touches many distinct items: the histogram release
    # pays that whole footprint; each selection pick pays 1.
    footprint: dict[str, int] = {}
    for user, _item in pairs:
        footprint[user] = footprint.get(user, 0) + 1
    histogram_sensitivity = float(max(footprint.values()))
    selection_sensitivity = 1.0
    rows = []
    for epsilon in [3.0, 1.0, 0.3]:
        lap_scores, exp_scores = [], []
        for _trial in range(40):
            lap = LaplaceMechanism(epsilon=epsilon,
                                   sensitivity=histogram_sensitivity,
                                   rng=rng)
            noisy = lap.release(true_vec)
            lap_rank = [items[j] for j in np.argsort(-noisy)[:10]]
            lap_scores.append(len(set(lap_rank) & relevant) / 10)
            picks = private_top_k(dict(zip(items, true_vec)), k=10,
                                  epsilon=epsilon, rng=rng,
                                  sensitivity=selection_sensitivity)
            exp_scores.append(len(set(picks) & relevant) / 10)
        rows.append([epsilon, float(np.mean(lap_scores)),
                     float(np.mean(exp_scores))])
    return rows, histogram_sensitivity, selection_sensitivity


def bench_t4_private_selection(benchmark):
    rows, hist_sens, sel_sens = benchmark.pedantic(
        run_selection_comparison, rounds=1, iterations=1)
    print_table(
        "T4c Sec 4.3: private top-10 selection — Laplace ranking vs "
        "exponential mechanism (user-level DP)",
        ["epsilon", "laplace-then-rank recall", "exp-mechanism recall"],
        rows,
        note=f"histogram sensitivity {hist_sens:.0f} (a user's whole "
             f"footprint) vs selection sensitivity {sel_sens:.0f} per "
             "pick; with head counts of only ~50 distinct users, BOTH "
             "correctly-calibrated mechanisms collapse below eps~1 — "
             "the paper's 'reduced too far to be useful', quantified")
    lap = [r[1] for r in rows]
    exp = [r[2] for r in rows]
    # Both degrade monotonically as epsilon shrinks.
    assert lap == sorted(lap, reverse=True)
    assert exp == sorted(exp, reverse=True)
    # At a generous budget both recover real signal...
    assert lap[0] > 0.4
    assert exp[0] > 0.4
    # ...and the two calibrated mechanisms stay in the same class
    # (neither dodges the collapse; the paper's skepticism stands).
    for l, e in zip(lap, exp):
        assert abs(l - e) < 0.15
    assert lap[-1] < 0.35
    assert exp[-1] < 0.35


def bench_t4_dp_utility(benchmark):
    rows = benchmark.pedantic(run_utility, rounds=1, iterations=1)
    print_table(
        "T4a Sec 4.3: DP epsilon vs utility (popularity histogram)",
        ["epsilon", "mean abs error", "precision@10 of noisy ranking"],
        rows,
        note="true top-decile ~24 interactions/product; at small epsilon "
             "the ranking is near-random (paper: 'reduced too far to be "
             "useful')")
    errors = [r[1] for r in rows]
    precisions = [r[2] for r in rows]
    # Error grows monotonically as epsilon shrinks (EPSILONS descending).
    assert all(b > a for a, b in zip(errors, errors[1:]))
    # Utility collapses: strong privacy ranking ~ random (10/100 = 0.1).
    assert precisions[0] > 0.9
    assert precisions[-1] < 0.35
    # Monotone-ish utility decline (allow small sampling wiggle).
    assert all(b <= a + 0.1 for a, b in zip(precisions, precisions[1:]))


def bench_t4_dp_dynamic_data(benchmark):
    (rows, refusals) = benchmark.pedantic(run_drift, rounds=1,
                                          iterations=1)
    print_table(
        "T4b Sec 4.3: static DP release on drifting data",
        ["step", "true value", "staleness error", "refreshed",
         "epsilon left"],
        rows,
        note=f"budget 1.0, 0.2/refresh: {refusals} refresh refusals — "
             "the paper's 'ill-suited for dynamically changing data'")
    # Budget supports only 4 refreshes after the initial release.
    assert refusals == 6
    # Once the budget is gone, staleness error grows without bound.
    stale_tail = [r[2] for r in rows[-3:]]
    assert stale_tail == sorted(stale_tail)
    assert stale_tail[-1] >= 90.0
