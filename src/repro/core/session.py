"""AR sessions over a shared dataset (Figures 3 and 4).

A :class:`SharedDataset` is a versioned collection of interpreted AR
content (annotations) produced by the pipeline.  Each
:class:`ARSession` is one user's window onto it: the user syncs (pull),
composes their own view from their own pose, and can open *probes* —
per-user filters over the shared content that do not interfere with
other users ("each user can also probe into subsets respectively
without interference").  Staleness (shared version minus synced
version) is the consistency metric experiment F4 sweeps with user count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..render.compositor import Compositor, OverlayFrame
from ..render.scene import Annotation, SceneGraph
from ..util.errors import PipelineError
from ..vision.camera import Pose

__all__ = ["SharedDataset", "ARSession", "Probe"]


@dataclass
class Probe:
    """A named per-user filter over shared annotations."""

    name: str
    predicate: Callable[[Annotation], bool]


class SharedDataset:
    """Versioned shared AR content."""

    def __init__(self) -> None:
        self._annotations: dict[str, Annotation] = {}
        self.version = 0
        self._log: list[tuple[int, str, Annotation | None]] = []

    def publish(self, annotations: list[Annotation]) -> int:
        """Upsert a batch; one version tick per batch."""
        self.version += 1
        for annotation in annotations:
            self._annotations[annotation.annotation_id] = annotation
            self._log.append((self.version, annotation.annotation_id,
                              annotation))
        return self.version

    def retract(self, annotation_id: str) -> int:
        if annotation_id not in self._annotations:
            raise PipelineError(f"unknown annotation {annotation_id!r}")
        self.version += 1
        del self._annotations[annotation_id]
        self._log.append((self.version, annotation_id, None))
        return self.version

    def snapshot(self) -> tuple[int, list[Annotation]]:
        return self.version, list(self._annotations.values())

    def __len__(self) -> int:
        return len(self._annotations)


@dataclass
class ARSession:
    """One user's live view onto the shared dataset."""

    user_id: str
    dataset: SharedDataset
    compositor: Compositor
    synced_version: int = 0
    probes: dict[str, Probe] = field(default_factory=dict)
    _scene: SceneGraph = field(default_factory=SceneGraph)
    frames_rendered: int = 0
    #: simnet node this user's device maps to (geo-aware deployments)
    device: str | None = None
    #: tier currently serving this session's overlay updates
    serving_node: str | None = None
    serving_region: str | None = None
    tier_switches: int = 0

    @property
    def staleness(self) -> int:
        """Versions behind the shared dataset."""
        return self.dataset.version - self.synced_version

    def sync(self) -> int:
        """Pull the latest shared content; returns versions advanced."""
        version, annotations = self.dataset.snapshot()
        advanced = version - self.synced_version
        self._scene = SceneGraph()
        for annotation in annotations:
            self._scene.add(annotation)
        self.synced_version = version
        return advanced

    # -- serving tier --------------------------------------------------------

    def rehome(self, selector) -> "TierDecision":
        """Re-price this session's serving tier against live link
        conditions (a :class:`~repro.offload.tiers.LiveTierSelector`).

        Sticky by construction: the selector keeps the incumbent tier
        within its hysteresis band, so a session only switches — and
        only then pays a state handoff — when the network genuinely
        moved under it (edge outage, partition, congestion).
        """
        if self.device is None:
            raise PipelineError(
                f"session {self.user_id!r} has no device node; "
                "set ARSession.device to enable tier selection")
        decision = selector.select(self.device, current=self.serving_node)
        if decision.node != self.serving_node:
            if self.serving_node is not None:
                self.tier_switches += 1
            self.serving_node = decision.node
        self.serving_region = decision.region
        return decision

    # -- probes -------------------------------------------------------------

    def open_probe(self, probe: Probe) -> None:
        if probe.name in self.probes:
            raise PipelineError(f"probe {probe.name!r} already open")
        self.probes[probe.name] = probe

    def close_probe(self, name: str) -> None:
        if name not in self.probes:
            raise PipelineError(f"probe {name!r} not open")
        del self.probes[name]

    def _probe_filtered(self) -> SceneGraph:
        if not self.probes:
            return self._scene
        filtered = SceneGraph()
        for annotation, _anchor in self._scene.all_world_annotations():
            if all(probe.predicate(annotation)
                   for probe in self.probes.values()):
                filtered.add(annotation)
        return filtered

    def visible_annotation_ids(self) -> set[str]:
        return {a.annotation_id for a, _p
                in self._probe_filtered().all_world_annotations()}

    # -- rendering -----------------------------------------------------------

    def render(self, pose: Pose) -> OverlayFrame:
        """Compose this user's current view (probe-filtered, own pose)."""
        self.frames_rendered += 1
        return self.compositor.compose(self._probe_filtered(), pose)
