"""Key-group math: stable hashing, ranges, routing consistency."""

import pytest

from repro.streaming.shuffle import (
    DEFAULT_KEY_GROUPS,
    group_by_key_group,
    key_group_for,
    key_group_range,
    merge_key_groups,
    subtask_for_key,
    subtask_for_key_group,
)
from repro.util.errors import StreamError
from repro.util.ids import split_ranges, stable_hash


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash("gps-42") == stable_hash("gps-42")

    def test_spreads(self):
        groups = {stable_hash(f"k{i}") % 128 for i in range(500)}
        assert len(groups) > 100  # near-uniform over 128 buckets

    def test_known_value_pinned(self):
        # Pins the hash so a refactor that silently changes it (breaking
        # every checkpoint's key groups) fails loudly.
        assert stable_hash("a") == 4953267810257967366


class TestSplitRanges:
    def test_partitions_exactly(self):
        for n, w in [(0, 1), (1, 1), (4, 4), (5, 2), (10, 4), (128, 3)]:
            ranges = split_ranges(n, w)
            assert len(ranges) == w
            flat = [i for r in ranges for i in r]
            assert flat == list(range(n))

    def test_balanced(self):
        for n, w in [(10, 3), (128, 5), (7, 7)]:
            sizes = [len(r) for r in split_ranges(n, w)]
            assert max(sizes) - min(sizes) <= 1

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            split_ranges(4, 0)


class TestKeyGroups:
    def test_none_key_rejected(self):
        with pytest.raises(StreamError):
            key_group_for(None, 128)

    def test_in_range(self):
        for key in ("a", 7, (1, 2), "user-99"):
            assert 0 <= key_group_for(key, 128) < 128

    def test_range_and_inverse_agree(self):
        # The forward map (key group -> subtask) must be the inverse of
        # the ownership ranges (subtask -> key groups) for every G, P —
        # otherwise restored state lands on a subtask that never sees
        # the key.
        for num_groups in (8, 128, 100):
            for parallelism in (1, 2, 3, 4, 7):
                if parallelism > num_groups:
                    continue
                for subtask in range(parallelism):
                    for kg in key_group_range(num_groups, parallelism,
                                              subtask):
                        assert subtask_for_key_group(
                            kg, num_groups, parallelism) == subtask

    def test_subtask_for_key_composes(self):
        key = "car-17"
        kg = key_group_for(key, DEFAULT_KEY_GROUPS)
        assert subtask_for_key(key, DEFAULT_KEY_GROUPS, 4) == \
            subtask_for_key_group(kg, DEFAULT_KEY_GROUPS, 4)

    def test_group_and_merge_round_trip(self):
        state = {f"k{i}": i * 10 for i in range(40)}
        groups = group_by_key_group(state, 16)
        assert set(groups) <= set(range(16))
        assert merge_key_groups(groups.values()) == state

    def test_grouping_respects_key_group_for(self):
        state = {"a": 1, "b": 2}
        groups = group_by_key_group(state, 8)
        for kg, blob in groups.items():
            for key in blob:
                assert key_group_for(key, 8) == kg
