"""Unit tests: DP mechanisms, budget, location privacy, re-identification."""

import math

import numpy as np
import pytest

from repro.privacy import (
    BudgetAccountant,
    GaussianMechanism,
    GeometricMechanism,
    GridCloak,
    LaplaceMechanism,
    PlanarLaplace,
    TraceDatabase,
    discretize_trace,
)
from repro.util.errors import BudgetExhausted, PrivacyError
from repro.util.geometry import Rect
from repro.util.rng import make_rng


class TestBudgetAccountant:
    def test_charges_accumulate(self):
        accountant = BudgetAccountant(epsilon=1.0)
        accountant.charge(0.4)
        accountant.charge(0.4)
        assert accountant.remaining_epsilon == pytest.approx(0.2)
        assert accountant.queries == 2

    def test_exhaustion_raises(self):
        accountant = BudgetAccountant(epsilon=0.5)
        accountant.charge(0.5)
        with pytest.raises(BudgetExhausted):
            accountant.charge(0.01)

    def test_delta_tracked(self):
        accountant = BudgetAccountant(epsilon=1.0, delta=1e-5)
        accountant.charge(0.1, delta=1e-5)
        with pytest.raises(BudgetExhausted):
            accountant.charge(0.1, delta=1e-6)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyError):
            BudgetAccountant(epsilon=0.0)


class TestLaplaceMechanism:
    def test_noise_scale(self):
        mech = LaplaceMechanism(epsilon=0.5, sensitivity=2.0,
                                rng=make_rng(0))
        assert mech.scale == 4.0
        samples = np.array([mech.release(0.0) for _ in range(5000)])
        # Laplace(b) has std b*sqrt(2).
        assert samples.std() == pytest.approx(4.0 * math.sqrt(2), rel=0.1)
        assert abs(samples.mean()) < 0.3

    def test_array_release(self):
        mech = LaplaceMechanism(epsilon=1.0, sensitivity=1.0,
                                rng=make_rng(1))
        out = mech.release(np.zeros(10))
        assert out.shape == (10,)

    def test_charges_accountant(self):
        accountant = BudgetAccountant(epsilon=0.25)
        mech = LaplaceMechanism(epsilon=0.1, sensitivity=1.0,
                                rng=make_rng(2), accountant=accountant)
        mech.release(1.0)
        mech.release(1.0)
        with pytest.raises(BudgetExhausted):
            mech.release(1.0)

    def test_higher_epsilon_less_noise(self):
        loose = LaplaceMechanism(epsilon=10.0, sensitivity=1.0,
                                 rng=make_rng(3))
        tight = LaplaceMechanism(epsilon=0.01, sensitivity=1.0,
                                 rng=make_rng(3))
        loose_err = np.std([loose.release(0.0) for _ in range(500)])
        tight_err = np.std([tight.release(0.0) for _ in range(500)])
        assert tight_err > 50 * loose_err


class TestGaussianMechanism:
    def test_sigma_formula(self):
        mech = GaussianMechanism(epsilon=0.5, delta=1e-5, sensitivity=1.0,
                                 rng=make_rng(4))
        expected = math.sqrt(2 * math.log(1.25 / 1e-5)) / 0.5
        assert mech.sigma == pytest.approx(expected)

    def test_epsilon_range_enforced(self):
        with pytest.raises(PrivacyError):
            GaussianMechanism(epsilon=2.0, delta=1e-5, sensitivity=1.0,
                              rng=make_rng(0))


class TestGeometricMechanism:
    def test_integer_output(self):
        mech = GeometricMechanism(epsilon=0.5, rng=make_rng(5))
        values = [mech.release(100) for _ in range(100)]
        assert all(isinstance(v, int) for v in values)

    def test_unbiased(self):
        mech = GeometricMechanism(epsilon=1.0, rng=make_rng(6))
        values = [mech.release(50) for _ in range(5000)]
        assert np.mean(values) == pytest.approx(50, abs=0.5)


class TestGridCloak:
    def test_reports_region_with_k_users(self):
        rng = make_rng(7)
        population = rng.uniform(0, 1000, size=(200, 2))
        cloak = GridCloak(Rect(0, 0, 1000, 1000), k=10)
        x, y = float(population[0, 0]), float(population[0, 1])
        region = cloak.cloak(x, y, population)
        assert region.occupancy >= 10
        assert region.rect.contains(x, y)

    def test_larger_k_larger_region(self):
        rng = make_rng(8)
        population = rng.uniform(0, 1000, size=(300, 2))
        x, y = float(population[0, 0]), float(population[0, 1])
        small = GridCloak(Rect(0, 0, 1000, 1000), k=5).cloak(
            x, y, population)
        large = GridCloak(Rect(0, 0, 1000, 1000), k=100).cloak(
            x, y, population)
        assert large.radius_m >= small.radius_m

    def test_insufficient_population_raises(self):
        cloak = GridCloak(Rect(0, 0, 100, 100), k=10)
        population = np.array([[5.0, 5.0]])
        with pytest.raises(PrivacyError):
            cloak.cloak(5.0, 5.0, population)

    def test_outside_bounds_rejected(self):
        cloak = GridCloak(Rect(0, 0, 100, 100), k=1)
        with pytest.raises(PrivacyError):
            cloak.cloak(500.0, 5.0, np.zeros((5, 2)))


class TestPlanarLaplace:
    def test_expected_displacement(self):
        mech = PlanarLaplace(epsilon_per_m=0.05, rng=make_rng(9))
        assert mech.expected_displacement_m == pytest.approx(40.0)
        displacements = []
        for _ in range(3000):
            px, py = mech.perturb(0.0, 0.0)
            displacements.append(math.hypot(px, py))
        assert np.mean(displacements) == pytest.approx(40.0, rel=0.05)

    def test_smaller_epsilon_more_noise(self):
        strong = PlanarLaplace(0.01, make_rng(10))
        weak = PlanarLaplace(1.0, make_rng(10))
        d_strong = np.mean([math.hypot(*strong.perturb(0, 0))
                            for _ in range(500)])
        d_weak = np.mean([math.hypot(*weak.perturb(0, 0))
                          for _ in range(500)])
        assert d_strong > 20 * d_weak

    def test_perturb_many_shape(self):
        mech = PlanarLaplace(0.1, make_rng(11))
        out = mech.perturb_many(np.zeros((7, 2)))
        assert out.shape == (7, 2)

    def test_invalid_epsilon_rejected(self):
        with pytest.raises(PrivacyError):
            PlanarLaplace(0.0, make_rng(0))


class TestReidentification:
    def _database(self, n_users=40, seed=12, cell_m=200.0, bucket_s=600.0):
        from repro.datagen import MobilityConfig, generate_population
        rng = make_rng(seed)
        traces = generate_population(
            n_users, rng, MobilityConfig(steps=150, area_m=4000.0))
        db = TraceDatabase(cell_m=cell_m, bucket_s=bucket_s)
        for trace in traces:
            db.add_trace(trace.user, trace.xs, trace.ys, trace.ts)
        return db

    def test_discretize(self):
        points = discretize_trace(np.array([10.0, 210.0]),
                                  np.array([10.0, 10.0]),
                                  np.array([0.0, 700.0]),
                                  cell_m=200.0, bucket_s=600.0)
        assert points == {(0, 0, 0), (1, 0, 1)}

    def test_more_known_points_more_unique(self):
        db = self._database()
        rng = make_rng(13)
        few = db.attack(rng, known_points=1)
        many = db.attack(rng, known_points=6)
        assert many.reidentification_rate >= few.reidentification_rate

    def test_handful_of_points_reidentifies_most(self):
        # The Gonzalez/de Montjoye-style claim: a few spatio-temporal
        # points suffice.
        db = self._database()
        result = db.attack(make_rng(14), known_points=4)
        assert result.reidentification_rate > 0.8

    def test_defended_database_reduces_uniqueness(self):
        from repro.datagen import MobilityConfig, generate_population
        rng = make_rng(15)
        traces = generate_population(
            30, rng, MobilityConfig(steps=120, area_m=4000.0))
        truth = TraceDatabase(cell_m=200.0, bucket_s=600.0)
        defended = TraceDatabase(cell_m=200.0, bucket_s=600.0)
        noise = PlanarLaplace(epsilon_per_m=0.005, rng=rng)  # ~400 m noise
        for trace in traces:
            truth.add_trace(trace.user, trace.xs, trace.ys, trace.ts)
            noisy = noise.perturb_many(
                np.column_stack([trace.xs, trace.ys]))
            defended.add_trace(trace.user, noisy[:, 0], noisy[:, 1],
                               trace.ts)
        attack_rng = make_rng(16)
        raw = truth.attack(attack_rng, known_points=4)
        guarded = defended.attack(make_rng(16), known_points=4,
                                  observed=truth)
        assert guarded.reidentification_rate < raw.reidentification_rate

    def test_duplicate_user_rejected(self):
        db = TraceDatabase(100.0, 60.0)
        db.add_trace("u", np.zeros(1), np.zeros(1), np.zeros(1))
        with pytest.raises(PrivacyError):
            db.add_trace("u", np.zeros(1), np.zeros(1), np.zeros(1))
