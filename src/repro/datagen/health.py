"""Healthcare workload: patients, EHRs, vital-sign streams.

The Section-3.3 scenario: each patient has an electronic health record
and wearable sensors streaming vitals.  Vitals follow stationary AR(1)
processes around clinical baselines; scripted *episodes* (tachycardia,
desaturation, fever) superimpose ramps so detection lead time (F8) is
measurable against known onset times.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..util.errors import ConfigError

__all__ = ["VitalSpec", "VITALS", "Episode", "Patient", "VitalSample",
           "generate_patients", "vitals_stream"]


@dataclass(frozen=True)
class VitalSpec:
    """Clinical parameters of one vital sign."""

    name: str
    baseline: float
    sigma: float  # AR(1) innovation std
    ar: float  # AR(1) coefficient
    low: float  # clinical alarm bounds
    high: float


VITALS: dict[str, VitalSpec] = {
    "heart_rate": VitalSpec("heart_rate", baseline=72.0, sigma=2.0,
                            ar=0.9, low=45.0, high=120.0),
    "spo2": VitalSpec("spo2", baseline=97.5, sigma=0.4, ar=0.85,
                      low=90.0, high=100.5),
    "temperature": VitalSpec("temperature", baseline=36.8, sigma=0.05,
                             ar=0.95, low=35.0, high=38.5),
    "systolic_bp": VitalSpec("systolic_bp", baseline=118.0, sigma=3.0,
                             ar=0.9, low=85.0, high=160.0),
}


@dataclass(frozen=True)
class Episode:
    """A clinical event: the vital ramps by ``magnitude`` over
    [onset, onset+ramp_s] and holds until ``end``."""

    vital: str
    onset_s: float
    end_s: float
    magnitude: float
    ramp_s: float = 120.0

    def __post_init__(self) -> None:
        if self.vital not in VITALS:
            raise ConfigError(f"unknown vital {self.vital!r}")
        if not self.onset_s < self.end_s:
            raise ConfigError("episode must end after onset")
        if self.ramp_s <= 0:
            raise ConfigError("ramp_s must be positive")

    def offset_at(self, t: float) -> float:
        if t < self.onset_s or t > self.end_s:
            return 0.0
        ramp = min(1.0, (t - self.onset_s) / self.ramp_s)
        return self.magnitude * ramp


@dataclass
class Patient:
    patient_id: str
    age: int
    conditions: list[str] = field(default_factory=list)
    episodes: list[Episode] = field(default_factory=list)
    ward: str = "ward-a"
    bed: tuple[float, float] = (0.0, 0.0)


@dataclass(frozen=True)
class VitalSample:
    patient_id: str
    vital: str
    timestamp: float
    value: float


_CONDITIONS = ["hypertension", "diabetes", "asthma", "afib", "copd"]


def generate_patients(rng: np.random.Generator, n: int = 20,
                      episode_rate: float = 0.5,
                      horizon_s: float = 3600.0) -> list[Patient]:
    """Patients with Poisson-scripted episodes over the horizon."""
    if n < 1:
        raise ConfigError("need at least one patient")
    patients = []
    vital_names = sorted(VITALS)
    for i in range(n):
        conditions = [c for c in _CONDITIONS if rng.random() < 0.2]
        episodes = []
        n_episodes = rng.poisson(episode_rate)
        for _ in range(n_episodes):
            vital = vital_names[rng.integers(0, len(vital_names))]
            spec = VITALS[vital]
            onset = float(rng.uniform(0.2, 0.7) * horizon_s)
            duration = float(rng.uniform(300.0, 900.0))
            direction = -1.0 if vital == "spo2" else float(
                rng.choice([-1.0, 1.0]))
            magnitude = direction * float(rng.uniform(6.0, 12.0)) * spec.sigma \
                / (1 - spec.ar)
            episodes.append(Episode(vital=vital, onset_s=onset,
                                    end_s=onset + duration,
                                    magnitude=magnitude))
        patients.append(Patient(
            patient_id=f"pt-{i:03d}",
            age=int(rng.integers(18, 95)),
            conditions=conditions,
            episodes=episodes,
            ward=f"ward-{'abc'[i % 3]}",
            bed=(float(i % 10) * 3.0, float(i // 10) * 5.0),
        ))
    return patients


def vitals_stream(patient: Patient, rng: np.random.Generator,
                  horizon_s: float = 3600.0, period_s: float = 5.0,
                  ) -> list[VitalSample]:
    """All vitals of one patient, interleaved in time order."""
    if period_s <= 0 or horizon_s <= 0:
        raise ConfigError("period and horizon must be positive")
    samples: list[VitalSample] = []
    times = np.arange(0.0, horizon_s, period_s)
    for vital, spec in sorted(VITALS.items()):
        state = 0.0  # AR(1) deviation from baseline
        episodes = [e for e in patient.episodes if e.vital == vital]
        for t in times:
            state = spec.ar * state + rng.normal(0.0, spec.sigma)
            offset = sum(e.offset_at(float(t)) for e in episodes)
            samples.append(VitalSample(
                patient_id=patient.patient_id, vital=vital,
                timestamp=float(t),
                value=spec.baseline + state + offset))
    samples.sort(key=lambda s: (s.timestamp, s.vital))
    return samples
