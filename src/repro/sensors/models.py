"""Sensor noise models: GPS and IMU.

"A user's position is tracked using GPS and built-in sensors" (Section
3.2).  The models generate noisy readings from ground-truth trajectories
so the fusion filter and the location-privacy mechanisms have honest
inputs: GPS with Gaussian error, dropouts (urban canyons) and limited
rate; an accelerometer with bias and white noise.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import SensorError

__all__ = ["GpsFix", "GpsSensor", "ImuReading", "ImuSensor"]


@dataclass(frozen=True)
class GpsFix:
    """One GPS reading in local metres."""

    timestamp: float
    x: float
    y: float
    accuracy_m: float  # reported 1-sigma accuracy


@dataclass(frozen=True)
class ImuReading:
    """One accelerometer sample in local metres/s^2."""

    timestamp: float
    ax: float
    ay: float


class GpsSensor:
    """GPS with Gaussian position noise and Bernoulli dropouts."""

    def __init__(self, rng: np.random.Generator, sigma_m: float = 5.0,
                 rate_hz: float = 1.0, dropout: float = 0.0) -> None:
        if sigma_m < 0:
            raise SensorError("sigma_m must be non-negative")
        if rate_hz <= 0:
            raise SensorError("rate_hz must be positive")
        if not 0.0 <= dropout < 1.0:
            raise SensorError("dropout must be in [0, 1)")
        self._rng = rng
        self.sigma_m = sigma_m
        self.rate_hz = rate_hz
        self.dropout = dropout
        self.fixes = 0
        self.dropped = 0

    @property
    def period(self) -> float:
        return 1.0 / self.rate_hz

    def read(self, timestamp: float, true_x: float, true_y: float,
             ) -> GpsFix | None:
        """Sample one fix; ``None`` models a dropout."""
        if self.dropout > 0 and self._rng.random() < self.dropout:
            self.dropped += 1
            return None
        self.fixes += 1
        noise = self._rng.normal(0.0, self.sigma_m, size=2)
        return GpsFix(timestamp=timestamp, x=true_x + noise[0],
                      y=true_y + noise[1], accuracy_m=self.sigma_m)

    def track(self, times: np.ndarray, xs: np.ndarray, ys: np.ndarray,
              ) -> list[GpsFix | None]:
        """Sample a whole trajectory (arrays of equal length)."""
        if not len(times) == len(xs) == len(ys):
            raise SensorError("times/xs/ys must have equal length")
        return [self.read(float(t), float(x), float(y))
                for t, x, y in zip(times, xs, ys)]


class ImuSensor:
    """Accelerometer with constant bias + white noise."""

    def __init__(self, rng: np.random.Generator,
                 noise_sigma: float = 0.05,
                 bias_sigma: float = 0.02,
                 rate_hz: float = 50.0) -> None:
        if noise_sigma < 0 or bias_sigma < 0:
            raise SensorError("noise/bias sigmas must be non-negative")
        if rate_hz <= 0:
            raise SensorError("rate_hz must be positive")
        self._rng = rng
        self.noise_sigma = noise_sigma
        self.rate_hz = rate_hz
        self.bias = rng.normal(0.0, bias_sigma, size=2) if bias_sigma > 0 \
            else np.zeros(2)

    @property
    def period(self) -> float:
        return 1.0 / self.rate_hz

    def read(self, timestamp: float, true_ax: float, true_ay: float,
             ) -> ImuReading:
        noise = self._rng.normal(0.0, self.noise_sigma, size=2)
        return ImuReading(timestamp=timestamp,
                          ax=true_ax + self.bias[0] + noise[0],
                          ay=true_ay + self.bias[1] + noise[1])
