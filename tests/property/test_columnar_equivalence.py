"""Property tests: columnar execution ≡ per-element execution.

The columnar ``RecordBatch`` representation (see "Columnar batch
representation" in docs/ARCHITECTURE.md) promises to be an *encoding*,
not a semantic: for any job and any input stream, running with
``columnar=True`` produces bit-identical sink contents and checkpoint
state to ``columnar=False`` — and both match element-at-a-time
dispatch.  These tests drive randomized streams through vectorized
kernels, through the mixed/opaque-value fallback, through parallel
plans with hash shuffles and the columnar source merge, and through
rescale restores, comparing exactly every time.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    ParallelExecutor,
    TumblingWindows,
)

import numpy as np

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched_plain": dict(batch_mode=True, chaining=False, columnar=False),
    "batched_columnar": dict(batch_mode=True, chaining=False, columnar=True),
    "chained_plain": dict(batch_mode=True, chaining=True, columnar=False),
    "chained_columnar": dict(batch_mode=True, chaining=True, columnar=True),
}
PARALLELISMS = (1, 2, 4)
N_SPLITS = 4

numeric_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),          # key
              st.floats(min_value=-50.0, max_value=50.0,      # value
                        allow_nan=False)),
    min_size=1, max_size=70)

# Mixed payloads: floats ride the float64 column, ints/strings force
# the opaque-list path batch by batch — including batches where the
# two kinds interleave, which must disable the numeric column entirely.
mixed_value = st.one_of(
    st.floats(min_value=-50.0, max_value=50.0, allow_nan=False),
    st.integers(min_value=-50, max_value=50),
    st.text(alphabet="abc", min_size=0, max_size=3))
mixed_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7), mixed_value),
    min_size=1, max_size=70)


def _run_all_modes(make_job, source_batch):
    out = {}
    for mode, flags in MODES.items():
        executor = Executor(make_job(), **flags)
        executor.run(source_batch=source_batch)
        out[mode] = executor
    return out


def _assert_identical(executors):
    """Same sinks, same operator state, same source positions — exactly."""
    base = executors["per_item"]
    base_ckpt = base.checkpoint()
    for mode, other in executors.items():
        if mode == "per_item":
            continue
        for name, sink in base.sinks.items():
            assert other.sinks[name].elements == sink.elements, (mode, name)
        ckpt = other.checkpoint()
        assert ckpt.source_positions == base_ckpt.source_positions, mode
        assert ckpt.operator_state == base_ckpt.operator_state, mode
        assert ckpt.emitted_to_sinks == base_ckpt.emitted_to_sinks, mode


class TestColumnarKernels:
    @given(numeric_rows,
           st.integers(min_value=1, max_value=9),     # watermark cadence
           st.integers(min_value=1, max_value=48))    # source batch
    @settings(max_examples=30, deadline=None)
    def test_vectorized_pipeline(self, rows, emit_every, source_batch):
        # The full kernel chain: vectorized map/filter/keyBy, watermark
        # generator, and the grouped-reduction window sum.
        elements = [Element(value=float(v), timestamp=i * 0.7)
                    for i, (_, v) in enumerate(rows)]

        def make_job():
            builder = JobBuilder("columnar-vec")
            (builder.source("s", elements)
                    .map(lambda v: v * 1.5 + 1.0, vectorized=True)
                    .filter(lambda v: v > -60.0, vectorized=True)
                    .key_by(lambda v: np.floor(v) % 4, vectorized=True)
                    .with_watermarks(3.0, emit_every=emit_every)
                    .window(TumblingWindows(10.0), "sum")
                    .sink("out"))
            return builder.build()
        _assert_identical(_run_all_modes(make_job, source_batch))

    @given(mixed_rows, st.integers(min_value=1, max_value=32))
    @settings(max_examples=30, deadline=None)
    def test_mixed_opaque_values_force_fallback(self, rows, source_batch):
        # Non-float payloads must ride the opaque path and fall back to
        # per-item kernels without changing a single sink element.
        elements = [Element(value=v, timestamp=i * 0.7, key=k)
                    for i, (k, v) in enumerate(rows)]

        def make_job():
            builder = JobBuilder("columnar-opaque")
            (builder.source("s", elements)
                    .map(lambda v: (v, v))
                    .filter(lambda v: v[0] == v[1])
                    .with_watermarks(3.0, emit_every=4)
                    .window(TumblingWindows(10.0), "count",
                            value_fn=lambda v: v[0])
                    .sink("out"))
            return builder.build()
        _assert_identical(_run_all_modes(make_job, source_batch))

    @given(numeric_rows, st.integers(min_value=1, max_value=32))
    @settings(max_examples=20, deadline=None)
    def test_keyed_reduce_kernel(self, rows, source_batch):
        elements = [Element(value=float(v), timestamp=i * 0.7, key=k)
                    for i, (k, v) in enumerate(rows)]

        def make_job():
            builder = JobBuilder("columnar-reduce")
            (builder.source("s", elements)
                    .reduce(lambda a, b: a + b)
                    .sink("out"))
            return builder.build()
        _assert_identical(_run_all_modes(make_job, source_batch))


class TestParallelColumnar:
    def _make_job(self, rows):
        # Keyed elements with per-split-monotone timestamps: the
        # columnar source merge takes its lexsort fast path while the
        # plain run heap-merges — outputs must still match exactly.
        elements = [Element(value=float(v), timestamp=i * 0.7, key=k)
                    for i, (k, v) in enumerate(rows)]
        builder = JobBuilder("columnar-parallel")
        (builder.source("s", elements, splits=N_SPLITS)
                .with_watermarks(5.0, emit_every=4)
                .map(lambda v: v * 1.5, name="scale")
                .window(TumblingWindows(10.0), "sum", name="win")
                .sink("out"))
        return builder.build()

    @given(numeric_rows, st.integers(min_value=1, max_value=32))
    @settings(max_examples=15, deadline=None)
    def test_parallel_columnar_matches_plain(self, rows, source_batch):
        for p in PARALLELISMS:
            runs = {}
            for columnar in (False, True):
                executor = ParallelExecutor(self._make_job(rows), p,
                                            columnar=columnar)
                executor.run(source_batch=source_batch)
                runs[columnar] = executor
            plain, col = runs[False], runs[True]
            assert (col.sinks["out"].elements
                    == plain.sinks["out"].elements), p
            # Keyed state is snapshotted per key group; the whole
            # checkpoint (a dataclass) must compare equal field-wise.
            assert col.checkpoint() == plain.checkpoint(), p

    @given(numeric_rows)
    @settings(max_examples=10, deadline=None)
    def test_rescale_restore_columnar(self, rows):
        expected = Executor(self._make_job(rows)).run()["out"].elements
        for old_p, new_p in ((1, 2), (1, 4), (2, 4), (4, 1)):
            donor = ParallelExecutor(self._make_job(rows), old_p,
                                     columnar=True)
            donor.run(source_batch=8, max_cycles=2)
            snapshot = donor.checkpoint()
            survivor = ParallelExecutor(self._make_job(rows), new_p,
                                        columnar=True)
            survivor.restore(snapshot)
            survivor.run(source_batch=8)
            got = sorted(repr(e) for e in survivor.sinks["out"].elements)
            want = sorted(repr(e) for e in expected)
            assert got == want, (
                f"columnar rescale {old_p}->{new_p} diverged")

    @given(mixed_rows)
    @settings(max_examples=10, deadline=None)
    def test_parallel_mixed_values_fallback(self, rows):
        # Opaque payloads through a parallel hash shuffle: batches must
        # fall back to per-element routing without changing delivery.
        elements = [Element(value=v, timestamp=i * 0.7, key=k)
                    for i, (k, v) in enumerate(rows)]

        def make_job():
            builder = JobBuilder("columnar-parallel-opaque")
            (builder.source("s", elements, splits=N_SPLITS)
                    .with_watermarks(5.0, emit_every=4)
                    .window(TumblingWindows(10.0), "count", name="win")
                    .sink("out"))
            return builder.build()

        for p in PARALLELISMS:
            runs = {}
            for columnar in (False, True):
                executor = ParallelExecutor(make_job(), p,
                                            columnar=columnar)
                executor.run(source_batch=16)
                runs[columnar] = executor
            assert (runs[True].sinks["out"].elements
                    == runs[False].sinks["out"].elements), p
            assert runs[True].checkpoint() == runs[False].checkpoint(), p
