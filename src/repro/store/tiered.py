"""TieredStore: one facade over the hot and analytical tiers.

The serving layer the apps talk to.  One committed epoch feeds both
tiers in a single stage/install cycle — point-lookup state and scan
history can never disagree about which epochs they contain — and the
facade carries the query surface of both: ``latest``/``point`` for
overlay binding, ``group_by``/``tumbling``/``filter`` for dashboards.

:func:`serve_topic` is the standard wiring: build a coordinated job
over an event-log topic, run it under the chaos harness's supervisor,
and return the store fed exactly-once through a
:class:`~repro.store.sink.StoreSink`.
"""

from __future__ import annotations

from typing import Any, Callable

from ..streaming.element import Element
from ..streaming.shuffle import DEFAULT_KEY_GROUPS
from ..util.clock import SimClock
from .analytical import AnalyticalStore
from .hot import HotStore, key_repr

__all__ = ["TieredStore", "serve_topic", "canonical_contents"]


class TieredStore:
    """Hot point-lookup tier + columnar analytical tier, fed together."""

    def __init__(self, *, num_shards: int = 8,
                 num_key_groups: int = DEFAULT_KEY_GROUPS,
                 clock: SimClock | None = None,
                 ttl_s: float | None = None,
                 memtable_limit: int = 4096, tier_fanout: int = 4,
                 metric_fn: Callable[[Any], float] | None = None) -> None:
        self.clock = clock
        self.hot = HotStore(num_shards=num_shards,
                            num_key_groups=num_key_groups,
                            clock=clock, ttl_s=ttl_s,
                            memtable_limit=memtable_limit,
                            tier_fanout=tier_fanout)
        self.analytical = AnalyticalStore(metric_fn=metric_fn)

    # -- epoch protocol (driven by StoreSink) --------------------------------

    def stage_epoch(self, epoch: int,
                    elements: list[Element]) -> dict[str, Any]:
        """Route one committed epoch: per-shard hot rows + one
        analytical segment, staged but not installed."""
        per_shard: dict[int, list[tuple[str, float, Any]]] = {}
        hot = self.hot
        for e in elements:
            shard = hot.shard_for(e.key)
            per_shard.setdefault(shard.shard_id, []).append(
                (key_repr(e.key), e.timestamp, e.value))
        return {
            "epoch": epoch,
            "shards": {sid: hot.shards[sid].stage_epoch(epoch, rows)
                       for sid, rows in per_shard.items()},
            "analytical": self.analytical.stage_epoch(epoch, elements),
        }

    def install_epoch(self, staged: dict[str, Any]) -> int:
        """Install a staged epoch into every affected shard and the
        analytical tier (each guarded by its own epoch)."""
        installed = 0
        for sid, st in staged["shards"].items():
            installed += self.hot.shards[sid].install_epoch(st)
        self.analytical.install_epoch(staged["analytical"])
        return installed

    def apply_epoch(self, epoch: int, elements: list[Element]) -> int:
        return self.install_epoch(self.stage_epoch(epoch, elements))

    # -- maintenance ---------------------------------------------------------

    def maintain(self) -> None:
        self.hot.maintain()

    def expire(self) -> None:
        """Deterministic TTL sweep of the hot tier (SimClock-driven);
        analytical history is deliberately unexpiring — it is the
        full-log tier."""
        self.hot.expire()

    # -- serving surface -----------------------------------------------------

    def latest(self, key: Any, n: int = 1) -> list[tuple[float, Any]]:
        return self.hot.latest(key, n)

    def point(self, key: Any) -> Any | None:
        return self.hot.point(key)

    def group_by(self, *args: Any, **kwargs: Any) -> dict[Any, float]:
        return self.analytical.group_by(*args, **kwargs)

    def tumbling(self, *args: Any, **kwargs: Any) -> dict:
        return self.analytical.tumbling(*args, **kwargs)

    def filter(self, *args: Any, **kwargs: Any) -> dict[str, Any]:
        return self.analytical.filter(*args, **kwargs)

    def count(self, *args: Any, **kwargs: Any) -> int:
        return self.analytical.count(*args, **kwargs)

    # -- introspection -------------------------------------------------------

    def contents(self) -> dict[str, list[tuple[float, Any]]]:
        return self.hot.contents()

    def stats(self) -> dict[str, Any]:
        return {"hot": self.hot.stats(),
                "analytical": self.analytical.stats()}


def serve_topic(cluster: Any, topic: str, *,
                store: TieredStore | None = None,
                key_fn: Callable[[Any], Any] | None = None,
                parallelism: int = 1, source_batch: int = 64,
                interval_cycles: int = 4, injector: Any = None,
                metric_fn: Callable[[Any], float] | None = None,
                num_shards: int = 8, ttl_s: float | None = None,
                memtable_limit: int = 4096,
                name: str | None = None,
                ) -> tuple[TieredStore, Any]:
    """Stream an event-log topic into a tiered store, exactly once.

    Builds ``source(topic) [-> key_by(key_fn)] -> sink``, runs it under
    coordinated checkpoints with a :class:`StoreSink` listening on the
    transactional sink's commits, and returns ``(store, report)``.
    Records keep their log keys unless ``key_fn`` re-keys them.  The
    run is chaos-ready: pass an ``injector`` and the store still comes
    out bit-identical to the fault-free run.
    """
    from ..chaos.harness import run_coordinated
    from ..chaos.injector import FaultInjector
    from ..chaos.plan import FaultPlan
    from ..streaming.connectors import log_source
    from ..streaming.graph import JobBuilder
    from .sink import StoreSink

    if store is None:
        store = TieredStore(num_shards=num_shards, ttl_s=ttl_s,
                            memtable_limit=memtable_limit,
                            metric_fn=metric_fn)
    builder = JobBuilder(name or f"serve:{topic}")
    stream = builder.source("events", log_source(cluster, topic))
    if key_fn is not None:
        stream = stream.key_by(key_fn)
    stream.sink("store")
    if injector is None:
        injector = FaultInjector(FaultPlan(specs=()))
    sink = StoreSink(store, sink_name="store", injector=injector)
    report = run_coordinated(builder.build(), injector,
                             parallelism=parallelism,
                             source_batch=source_batch,
                             interval_cycles=interval_cycles,
                             on_coordinator=sink.attach)
    return store, report


def canonical_contents(store: TieredStore) -> list[tuple]:
    """Order-stable dump for equivalence assertions: sorted
    ``(key_repr, versions)`` pairs plus the analytical row count."""
    return sorted(store.contents().items())
