"""Differential-privacy mechanisms and budget accounting.

Section 4.3: "differential privacy is a possible way of accessing data
with a limited privacy risk, however the information is reduced too far
to be useful in practice" — experiment T4 quantifies exactly that with
these mechanisms.  The :class:`BudgetAccountant` enforces sequential
composition and refuses queries once epsilon is spent, which is also how
the "ill-suited for dynamically changing data" claim shows up: refreshing
a release on drifting data burns budget linearly.
"""

from __future__ import annotations

import math

import numpy as np

from ..util.errors import BudgetExhausted, PrivacyError

__all__ = ["LaplaceMechanism", "GaussianMechanism", "GeometricMechanism",
           "BudgetAccountant"]


class BudgetAccountant:
    """Sequential-composition epsilon (and optional delta) ledger."""

    def __init__(self, epsilon: float, delta: float = 0.0) -> None:
        if epsilon <= 0:
            raise PrivacyError("total epsilon must be positive")
        if delta < 0:
            raise PrivacyError("delta must be non-negative")
        self.total_epsilon = epsilon
        self.total_delta = delta
        self.spent_epsilon = 0.0
        self.spent_delta = 0.0
        self.queries = 0

    @property
    def remaining_epsilon(self) -> float:
        return self.total_epsilon - self.spent_epsilon

    def charge(self, epsilon: float, delta: float = 0.0) -> None:
        if epsilon <= 0:
            raise PrivacyError("query epsilon must be positive")
        if (self.spent_epsilon + epsilon > self.total_epsilon + 1e-12
                or self.spent_delta + delta > self.total_delta + 1e-12):
            raise BudgetExhausted(
                f"charge ({epsilon}, {delta}) exceeds remaining "
                f"({self.remaining_epsilon:.4g}, "
                f"{self.total_delta - self.spent_delta:.4g})"
            )
        self.spent_epsilon += epsilon
        self.spent_delta += delta
        self.queries += 1


class LaplaceMechanism:
    """epsilon-DP noise for queries with known L1 sensitivity."""

    def __init__(self, epsilon: float, sensitivity: float,
                 rng: np.random.Generator,
                 accountant: BudgetAccountant | None = None) -> None:
        if epsilon <= 0:
            raise PrivacyError("epsilon must be positive")
        if sensitivity <= 0:
            raise PrivacyError("sensitivity must be positive")
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self._rng = rng
        self.accountant = accountant

    @property
    def scale(self) -> float:
        return self.sensitivity / self.epsilon

    def release(self, true_value: float | np.ndarray) -> float | np.ndarray:
        """Noise one value (or an array, charging once — treat arrays as
        one query whose sensitivity already accounts for all cells)."""
        if self.accountant is not None:
            self.accountant.charge(self.epsilon)
        value = np.asarray(true_value, dtype=float)
        noised = value + self._rng.laplace(0.0, self.scale, size=value.shape)
        if np.isscalar(true_value) or value.shape == ():
            return float(noised)
        return noised


class GaussianMechanism:
    """(epsilon, delta)-DP with L2 sensitivity (analytic sigma bound)."""

    def __init__(self, epsilon: float, delta: float, sensitivity: float,
                 rng: np.random.Generator,
                 accountant: BudgetAccountant | None = None) -> None:
        if not 0 < epsilon < 1:
            raise PrivacyError("classic Gaussian mechanism needs epsilon in "
                               "(0, 1)")
        if not 0 < delta < 1:
            raise PrivacyError("delta must be in (0, 1)")
        if sensitivity <= 0:
            raise PrivacyError("sensitivity must be positive")
        self.epsilon = epsilon
        self.delta = delta
        self.sensitivity = sensitivity
        self._rng = rng
        self.accountant = accountant

    @property
    def sigma(self) -> float:
        return (self.sensitivity * math.sqrt(2.0 * math.log(1.25 / self.delta))
                / self.epsilon)

    def release(self, true_value: float | np.ndarray) -> float | np.ndarray:
        if self.accountant is not None:
            self.accountant.charge(self.epsilon, self.delta)
        value = np.asarray(true_value, dtype=float)
        noised = value + self._rng.normal(0.0, self.sigma, size=value.shape)
        if np.isscalar(true_value) or value.shape == ():
            return float(noised)
        return noised


class GeometricMechanism:
    """Integer-valued epsilon-DP (two-sided geometric noise) for counts."""

    def __init__(self, epsilon: float, rng: np.random.Generator,
                 sensitivity: int = 1,
                 accountant: BudgetAccountant | None = None) -> None:
        if epsilon <= 0:
            raise PrivacyError("epsilon must be positive")
        if sensitivity < 1:
            raise PrivacyError("sensitivity must be >= 1")
        self.epsilon = epsilon
        self.sensitivity = sensitivity
        self._rng = rng
        self.accountant = accountant

    def release(self, true_count: int) -> int:
        if self.accountant is not None:
            self.accountant.charge(self.epsilon)
        alpha = math.exp(-self.epsilon / self.sensitivity)
        # Two-sided geometric: difference of two geometric variables.
        g1 = self._rng.geometric(1 - alpha) - 1
        g2 = self._rng.geometric(1 - alpha) - 1
        return int(true_count + g1 - g2)
