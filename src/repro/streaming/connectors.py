"""Connectors between the event log and the streaming engine.

``log_source`` adapts an event-log topic into a stream source: each
retained record becomes an :class:`Element` whose timestamp is the
record's event timestamp and whose key is the record key.  ``log_sink``
returns a callable that writes sink elements back to a topic — the glue
for multi-stage pipelines (raw -> analytics -> AR content topics).
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

from ..eventlog.broker import LogCluster
from ..eventlog.consumer import Consumer, ConsumerGroup
from ..eventlog.producer import Producer
from .batch import RecordBatch
from .element import Element

__all__ = ["log_source", "parallel_log_source", "log_sink"]


def log_source(cluster: LogCluster, topic: str,
               partitions: list[int] | None = None,
               time_ordered: bool = True, tracer: Any = None,
               columnar: bool = False,
               ) -> Callable[[], Iterable[Element]]:
    """A re-runnable source reading everything retained in ``topic``.

    With ``time_ordered`` (the default) the bounded replay merges
    partitions by event timestamp — the moral equivalent of Flink's
    per-partition watermarking, without which cross-partition skew makes
    a single watermark generator drop most of the replay as late.  Pass
    ``time_ordered=False`` to get raw partition-grouped order (useful
    for studying exactly that effect, as experiment A3 does).

    The consumer runs with offset dedup on: a broker that re-delivers
    (duplicate delivery under fault injection, a retried fetch) still
    feeds each record into the stream exactly once.

    With ``columnar`` the source materializes
    :class:`~repro.streaming.batch.RecordBatch` runs instead of loose
    Elements (one per fetch batch unordered, one for the whole replay
    when time-ordered) — the executor splices them into its source
    buffer without re-encoding.  Decoded, the stream is identical.
    """

    def iterate() -> Iterable[Element]:
        consumer = Consumer(cluster, topic, partitions, start="earliest",
                            dedup=True, tracer=tracer)
        span = (tracer.start_span(f"log_source:{topic}",
                                  attrs={"topic": topic})
                if tracer is not None else None)
        records = 0
        try:
            if not time_ordered:
                for batch in consumer.iter_batches(max_records=1024):
                    records += len(batch)
                    run = [Element(value=row.value, timestamp=row.timestamp,
                                   key=row.key) for row in batch]
                    if columnar and run:
                        yield RecordBatch.from_elements(run)
                    else:
                        yield from run
            else:
                rows = []
                for batch in consumer.iter_batches(max_records=4096):
                    rows.extend(batch)
                rows.sort(key=lambda r: (r.timestamp, r.partition, r.offset))
                records = len(rows)
                run = [Element(value=row.value, timestamp=row.timestamp,
                               key=row.key) for row in rows]
                if columnar and run:
                    yield RecordBatch.from_elements(run)
                else:
                    yield from run
        finally:
            if span is not None:
                span.set_attr("records", records)
                span.end()

    return iterate


def parallel_log_source(cluster: LogCluster, topic: str,
                        *, splits: int | None = None,
                        group_id: str | None = None,
                        time_ordered: bool = True, tracer: Any = None,
                        columnar: bool = False,
                        ) -> tuple[Callable[[int, int], Iterable[Element]],
                                   int]:
    """A split-aware source over ``topic``, fanned out via a consumer
    group: returns ``(split_factory, num_splits)`` for
    :meth:`~repro.streaming.graph.JobBuilder.source`::

        factory, n = parallel_log_source(cluster, "gps")
        builder.source("gps", splits=n, split_factory=factory)

    Each split is a consumer-group member; range assignment hands it a
    contiguous partition slice (the same ceil-division formula as
    streaming key groups, see :meth:`ConsumerGroup._rebalance`), so
    split -> partition ownership is deterministic and, because the
    producer routes a key to a fixed partition, **key-aligned**: a key's
    records always land in the same split, preserving per-key order in
    parallel plans.  Splits default to the topic's partition count — one
    partition per split — and checkpoints store positions per split, so
    a job over this source rescales freely.

    With ``time_ordered`` each split's replay is merged by event
    timestamp *within the split* (cross-split order is the parallel
    plan's business — watermark alignment absorbs the skew).
    """
    num_splits = (splits if splits is not None
                  else cluster.partition_count(topic))
    gid = group_id if group_id is not None else f"source-{topic}"
    groups: dict[int, ConsumerGroup] = {}

    def _member(split: int, n: int) -> Consumer:
        group = groups.get(n)
        if group is None:
            group = ConsumerGroup(cluster, topic, f"{gid}-{n}")
            for i in range(n):
                group.join(f"split-{i:05d}")
            groups[n] = group
        return group.member(f"split-{split:05d}")

    def split_factory(split: int, n: int) -> Iterable[Element]:
        member = _member(split, n)
        span = (tracer.start_span(f"log_source:{topic}[{split}]",
                                  attrs={"topic": topic, "split": split})
                if tracer is not None else None)
        # Rewind so the factory is re-runnable (restores re-read splits).
        for p in member.partitions:
            member.seek(p, cluster.base_offset(topic, p))
        rows = []
        while True:
            batch = member.poll(max_records=4096)
            if not batch:
                break
            rows.extend(batch)
        if time_ordered:
            rows.sort(key=lambda r: (r.timestamp, r.partition, r.offset))
        if span is not None:
            span.set_attr("records", len(rows))
            span.end()
        run = [Element(value=row.value, timestamp=row.timestamp,
                       key=row.key) for row in rows]
        if columnar and run:
            # One batch per split; the parallel executor normalizes to
            # its canonical per-element split buffer either way.
            return [RecordBatch.from_elements(run)]
        return run

    return split_factory, num_splits


def log_sink(cluster: LogCluster, topic: str) -> Callable[[Element], None]:
    """A callable that appends sink elements to ``topic``."""
    producer = Producer(cluster)

    def write(element: Element) -> None:
        key = element.key if isinstance(element.key, str) else (
            None if element.key is None else str(element.key))
        producer.send(topic, element.value, key=key,
                      timestamp=element.timestamp)

    return write
