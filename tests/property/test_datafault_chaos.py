"""Data-fault chaos: DLQ exactly-once, integrity fallback, budgets.

The invariant this suite sweeps: with per-operator error policies
declared, the *committed* sink plus the *committed* dead-letter queue
under a schedule of data faults (poisoned UDF calls, corrupted values
and timestamps) must not move when operator crashes, coordinator
crashes and checkpoint rot are layered on top — and a rerun of the
same seeded schedule must be bit-identical.  Data-fault counters are
part of the checkpoint cut, so replay re-poisons exactly the records
it poisoned before.

Comparisons go through ``repr`` because corrupted records legitimately
carry NaN (``nan != nan`` would fail identical lists).

Everything here is ``datafault``-marked and runs via ``make datafault``
(the gate in ``tools/check_robustness.py --datafault`` runs this suite
first); tier-1 coverage of the same machinery lives in
``tests/unit/test_error_policies.py`` and
``tests/unit/test_checkpoint_integrity.py``.
"""

import pytest

from repro.chaos import (
    SITE_CHECKPOINT,
    SITE_DATA,
    SITE_OPERATOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_free_sinks,
    reference_events,
    reference_job,
    run_coordinated,
    run_with_recovery,
)
from repro.streaming import DEAD_LETTER, DLQ_SINK, Element, JobBuilder, RestartBudget
from repro.util.errors import RestartsExhausted

pytestmark = pytest.mark.datafault

MODES = ((False, False), (True, False), (True, True))

#: operators carrying a DEAD_LETTER policy — the only valid targets for
#: *persistent* data faults (an unguarded persistent fault refires on
#: every replay and is the restart-budget scenario, tested separately)
GUARDED = ("double", "drop_tiny")


def guarded_job(seed, n=200):
    job = reference_job(reference_events(seed=seed, n=n))
    for op in GUARDED:
        job.error_policies[op] = DEAD_LETTER
    return job


def rrepr(sink_values):
    return {name: [repr(v) for v in values]
            for name, values in sink_values.items()}


def random_data_plan(seed, *, crashes=0, coordinator_crashes=0,
                     checkpoint_corruptions=0, name="datafault"):
    """A seeded mix of data faults on guarded operators plus optional
    infrastructure faults on the whole reference plan."""
    data = FaultPlan.random(
        seed, horizon=150, operators=GUARDED, crashes=0,
        torn_appends=0, unavailable_windows=0, duplicate_deliveries=0,
        task_timeouts=0, data_faults=3, name=f"{name}-data")
    infra = FaultPlan.random(
        seed + 1, horizon=150,
        operators=("double", "window_sum", "by_key"),
        crashes=crashes, torn_appends=0, unavailable_windows=0,
        duplicate_deliveries=0, task_timeouts=0,
        coordinator_crashes=coordinator_crashes,
        checkpoint_corruptions=checkpoint_corruptions,
        name=f"{name}-infra")
    return data, FaultPlan(specs=data.specs + infra.specs, seed=seed,
                           name=name)


class TestDlqInvariantSupervised:
    """Single-threaded supervisor: data faults x crashes, all modes."""

    @pytest.mark.parametrize("seed", range(4))
    def test_crashes_do_not_move_sink_or_dlq(self, seed):
        data, layered = random_data_plan(seed + 4300, crashes=2)
        for batch_mode, chaining in MODES:
            def once(plan):
                report = run_with_recovery(
                    guarded_job(seed % 3), FaultInjector(plan),
                    batch_mode=batch_mode, chaining=chaining)
                return rrepr(report.sink_values), report
            golden, _ = once(data)
            chaosed, report = once(layered)
            rerun, _ = once(layered)
            assert report.crashes >= 1, layered.name
            assert chaosed == golden, (seed, batch_mode, chaining)
            assert rerun == chaosed, (seed, batch_mode, chaining)

    def test_modes_agree_on_committed_dlq(self):
        data, _ = random_data_plan(4400)
        runs = [rrepr(run_with_recovery(
                    guarded_job(1), FaultInjector(data),
                    batch_mode=bm, chaining=ch).sink_values)
                for bm, ch in MODES]
        assert runs[1] == runs[0] and runs[2] == runs[0]


class TestDlqInvariantCoordinated:
    """Parallel execution: per-clone fault windows, 2PC DLQ epochs."""

    @pytest.mark.parametrize("parallelism", [1, 2, 4])
    def test_layered_faults_at_parallelism(self, parallelism):
        data, layered = random_data_plan(
            4500 + parallelism, crashes=1, coordinator_crashes=1)

        def once(plan):
            report = run_coordinated(
                guarded_job(2), FaultInjector(plan),
                parallelism=parallelism, interval_cycles=2)
            return rrepr(report.sink_values), report

        golden, _ = once(data)
        chaosed, report = once(layered)
        rerun, _ = once(layered)
        assert report.crashes + report.coordinator_crashes >= 1
        assert chaosed == golden, parallelism
        assert rerun == chaosed, parallelism

    @pytest.mark.parametrize("seed", range(3))
    def test_random_composition_with_checkpoint_rot(self, seed):
        # the full stack at once: data faults + crash + coordinator
        # crash + storage rot on committed checkpoints
        data, layered = random_data_plan(
            4600 + seed, crashes=1, coordinator_crashes=1,
            checkpoint_corruptions=1, name=f"composed-{seed}")
        golden = rrepr(run_coordinated(
            guarded_job(seed), FaultInjector(data),
            parallelism=2, interval_cycles=1,
            source_batch=16).sink_values)
        report = run_coordinated(
            guarded_job(seed), FaultInjector(layered),
            parallelism=2, interval_cycles=1, source_batch=16)
        assert rrepr(report.sink_values) == golden, seed


class TestDlqAccounting:
    """Pass-through pipeline: sink + DLQ partition the input exactly."""

    @pytest.mark.parametrize("seed", range(3))
    def test_partition_invariant(self, seed):
        def build():
            events = [Element({"k": i % 4, "v": float(i)},
                              timestamp=float(i) * 0.25)
                      for i in range(300)]
            builder = JobBuilder("accounting")
            (builder.source("events", events)
                    .map(lambda v: v, name="ident")
                    .on_error(DEAD_LETTER)
                    .sink("out"))
            return builder.build()

        golden = fault_free_sinks(build)
        # only udf_exception partitions: it dead-letters the *intact*
        # record, while corrupt_value destroys the original before the
        # policy ever sees it
        plan = FaultPlan(specs=(
            FaultSpec("udf_exception", SITE_DATA, at=17 + seed * 31,
                      count=4, target="ident"),
            FaultSpec("udf_exception", SITE_DATA, at=100 + seed * 20,
                      count=2, target="ident"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=140,
                      target="ident"),
        ), seed=seed, name=f"accounting-{seed}")
        report = run_with_recovery(build(), FaultInjector(plan))
        sink = report.sink_values["out"]
        dlq = report.sink_values[DLQ_SINK]
        assert len(dlq) == 6
        union = sorted([repr(v) for v in sink]
                       + [repr(d.value) for d in dlq])
        assert union == sorted(repr(v) for v in golden["out"])
        assert len(sink) + len(dlq) == len(golden["out"])

    def test_corrupt_timestamp_drops_late_not_dead(self):
        # a backwards timestamp leaves the value intact: the map
        # succeeds, the window late-drops the record — accounting by
        # omission, not by dead letter
        plan = FaultPlan(specs=(
            FaultSpec("corrupt_timestamp", SITE_DATA, at=120, count=2,
                      param="backwards", target="double"),
        ), seed=9, name="late-ts")
        report = run_with_recovery(guarded_job(1), FaultInjector(plan))
        golden = fault_free_sinks(lambda: guarded_job(1))
        assert DLQ_SINK not in report.sink_values \
            or len(report.sink_values[DLQ_SINK]) == 0
        assert len(report.sink_values["out"]) <= len(golden["out"])


class TestCheckpointIntegrityUnderChaos:
    @pytest.mark.parametrize("mode", ["payload", "manifest"])
    def test_rotten_newest_falls_back_exactly_once(self, mode):
        from repro.streaming.coordinator import CheckpointStore

        golden = run_coordinated(guarded_job(3), None, parallelism=2,
                                 interval_cycles=1, source_batch=16)
        plan = FaultPlan(specs=(
            FaultSpec("checkpoint_corruption", SITE_CHECKPOINT, at=2,
                      count=1000, param=mode),
            FaultSpec("operator_crash", SITE_OPERATOR, at=110,
                      target="window_sum"),
        ), seed=3, name=f"rot-{mode}")
        store = CheckpointStore(keep=100)
        report = run_coordinated(guarded_job(3), FaultInjector(plan),
                                 parallelism=2, interval_cycles=1,
                                 source_batch=16, store=store)
        assert rrepr(report.sink_values) == rrepr(golden.sink_values)
        assert report.integrity_failures >= 1
        assert store.quarantined


class TestRestartBudget:
    def _poison(self, seed):
        plan = FaultPlan(specs=(
            FaultSpec("udf_exception", SITE_DATA, at=40, count=1,
                      target="double"),
        ), seed=seed, name="poison")
        # no error policy: the persistent fault refires on every replay
        return reference_job(reference_events(seed=seed, n=200)), plan

    def test_flapping_detected(self):
        job, plan = self._poison(5)
        with pytest.raises(RestartsExhausted) as info:
            run_with_recovery(job, FaultInjector(plan),
                              restart_budget=RestartBudget(
                                  max_restarts=50, flap_threshold=3,
                                  seed=5))
        assert info.value.reason == "flapping"

    def test_hard_budget_exhausted(self):
        job, plan = self._poison(5)
        with pytest.raises(RestartsExhausted) as info:
            run_with_recovery(job, FaultInjector(plan),
                              restart_budget=RestartBudget(
                                  max_restarts=3, flap_threshold=0,
                                  seed=5))
        assert info.value.reason == "budget"
        assert info.value.restarts == 3

    def test_coordinated_flapping_detected(self):
        job, plan = self._poison(6)
        with pytest.raises(RestartsExhausted) as info:
            run_coordinated(job, FaultInjector(plan), parallelism=2,
                            interval_cycles=2,
                            restart_budget=RestartBudget(
                                max_restarts=50, flap_threshold=3,
                                seed=6))
        assert info.value.reason == "flapping"

    def test_budget_does_not_fire_on_transient_faults(self):
        # a guarded job dead-letters the poison: the budget sees only
        # the layered crash, recovers once, and the run completes
        data, layered = random_data_plan(4700, crashes=1)
        report = run_with_recovery(
            guarded_job(0), FaultInjector(layered),
            restart_budget=RestartBudget(max_restarts=10,
                                         flap_threshold=3, seed=7))
        golden = rrepr(run_with_recovery(
            guarded_job(0), FaultInjector(data)).sink_values)
        assert rrepr(report.sink_values) == golden
