"""Unit tests: scene graph, occlusion, layout, compositor."""

import numpy as np
import pytest

from repro.render import (
    Annotation,
    BoxOccluder,
    Compositor,
    FrameBudget,
    OcclusionWorld,
    SceneGraph,
    SceneNode,
    clutter_metrics,
    declutter_layout,
    naive_layout,
)
from repro.util.errors import RenderError
from repro.util.geometry import Rect
from repro.vision import CameraIntrinsics, look_at

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)
SCREEN = Rect(0, 0, 320, 240)


def _annotation(aid, x, y, z, priority=1.0, **kw):
    return Annotation(annotation_id=aid, anchor=np.array([x, y, z]),
                      text=aid, priority=priority, **kw)


class TestSceneGraph:
    def test_add_get_remove(self):
        scene = SceneGraph()
        scene.add(_annotation("a", 0, 0, 0))
        assert scene.get("a").text == "a"
        scene.remove("a")
        assert len(scene) == 0

    def test_duplicate_id_rejected(self):
        scene = SceneGraph()
        scene.add(_annotation("a", 0, 0, 0))
        with pytest.raises(RenderError):
            scene.add(_annotation("a", 1, 1, 1))

    def test_unknown_id_rejected(self):
        with pytest.raises(RenderError):
            SceneGraph().get("nope")

    def test_node_transform_applies_to_anchor(self):
        scene = SceneGraph()
        node = SceneNode(name="group", translation=np.array([10.0, 0, 0]))
        node.annotations.append(_annotation("a", 1, 2, 3))
        scene.add_node(node)
        pairs = scene.all_world_annotations()
        assert np.allclose(pairs[0][1], [11.0, 2.0, 3.0])

    def test_nested_transforms_compose(self):
        scene = SceneGraph()
        parent = SceneNode(name="p", translation=np.array([10.0, 0, 0]))
        child = SceneNode(name="c", translation=np.array([0.0, 5.0, 0]))
        child.annotations.append(_annotation("a", 0, 0, 0))
        parent.children.append(child)
        scene.add_node(parent)
        pairs = scene.root.world_annotations()
        _a, anchor = next(iter(pairs))
        assert np.allclose(anchor, [10.0, 5.0, 0.0])


class TestOcclusion:
    def test_box_blocks_segment(self):
        box = BoxOccluder("wall", (0, -1, -1), (1, 1, 1))
        world = OcclusionWorld([box])
        verdict = world.check(np.array([-2.0, 0, 0]), np.array([3.0, 0, 0]))
        assert not verdict.visible
        assert verdict.occluder == "wall"

    def test_clear_line_of_sight(self):
        box = BoxOccluder("wall", (0, -1, -1), (1, 1, 1))
        world = OcclusionWorld([box])
        verdict = world.check(np.array([-2.0, 5, 0]), np.array([3.0, 5, 0]))
        assert verdict.visible

    def test_anchor_on_face_not_self_occluded(self):
        box = BoxOccluder("shelf", (0, 0, 0), (1, 1, 1))
        world = OcclusionWorld([box])
        # Anchor on the near face, camera straight in front of it.
        verdict = world.check(np.array([-2.0, 0.5, 0.5]),
                              np.array([0.0, 0.5, 0.5]))
        assert verdict.visible

    def test_anchor_inside_box_occluded(self):
        box = BoxOccluder("shelf", (0, 0, 0), (1, 1, 1))
        world = OcclusionWorld([box])
        verdict = world.check(np.array([-2.0, 0.5, 0.5]),
                              np.array([0.5, 0.5, 0.5]))
        assert not verdict.visible

    def test_empty_extent_rejected(self):
        with pytest.raises(RenderError):
            BoxOccluder("bad", (0, 0, 0), (0, 1, 1))


class TestLayout:
    def _cluster(self, n, spread=5.0):
        return [(f"l{i}", 160.0 + spread * i, 120.0, 60.0, 20.0, float(n - i))
                for i in range(n)]

    def test_naive_overlaps_cluster(self):
        labels = naive_layout(self._cluster(8))
        metrics = clutter_metrics(labels, SCREEN)
        assert metrics.overlapping >= 6
        assert metrics.overlap_ratio > 0.0

    def test_declutter_removes_overlap(self):
        labels = declutter_layout(self._cluster(8), SCREEN)
        metrics = clutter_metrics(labels, SCREEN)
        assert metrics.overlapping == 0

    def test_declutter_beats_naive_on_useful_ratio(self):
        items = self._cluster(12, spread=2.0)
        naive = clutter_metrics(naive_layout(items), SCREEN)
        smart = clutter_metrics(declutter_layout(items, SCREEN), SCREEN)
        assert smart.useful_ratio > naive.useful_ratio

    def test_priority_wins_anchor_position(self):
        labels = declutter_layout(self._cluster(3, spread=1.0), SCREEN)
        top = next(l for l in labels if l.annotation_id == "l0")
        assert top.leader_length == 0.0  # highest priority keeps anchor

    def test_max_labels_drops_lowest_priority(self):
        labels = declutter_layout(self._cluster(5), SCREEN, max_labels=2)
        dropped = {l.annotation_id for l in labels if l.dropped}
        assert dropped == {"l2", "l3", "l4"}

    def test_offscreen_anchor_dropped_when_no_candidate_fits(self):
        items = [("off", -500.0, -500.0, 60.0, 20.0, 1.0)]
        labels = declutter_layout(items, SCREEN)
        assert labels[0].dropped

    def test_empty_layout_metrics(self):
        metrics = clutter_metrics([], SCREEN)
        assert metrics.useful_ratio == 1.0
        assert metrics.total == 0


class TestCompositor:
    def _scene(self, n=5, z=5.0):
        scene = SceneGraph()
        for i in range(n):
            scene.add(_annotation(f"a{i}", (i - n // 2) * 0.5, 0.0, z,
                                  priority=float(i)))
        return scene

    def _pose(self):
        return look_at(eye=[0.0, 0.0, 0.0], target=[0.0, 0.0, 5.0])

    def test_composes_visible_annotations(self):
        compositor = Compositor(INTR)
        frame = compositor.compose(self._scene(), self._pose())
        assert frame.drawn >= 3
        assert frame.culled_offscreen == 0

    def test_behind_camera_culled(self):
        scene = self._scene(n=3, z=-5.0)
        compositor = Compositor(INTR)
        frame = compositor.compose(scene, self._pose())
        assert frame.items == []
        assert frame.culled_offscreen == 3

    def test_hide_policy_drops_occluded(self):
        scene = self._scene(n=1, z=5.0)
        wall = OcclusionWorld([BoxOccluder("wall", (-2, -2, 2), (2, 2, 3))])
        compositor = Compositor(INTR, occlusion=wall,
                                occlusion_policy="hide")
        frame = compositor.compose(scene, self._pose())
        assert frame.culled_occluded == 1
        assert frame.items == []

    def test_xray_policy_keeps_occluded_with_style(self):
        scene = self._scene(n=1, z=5.0)
        wall = OcclusionWorld([BoxOccluder("wall", (-2, -2, 2), (2, 2, 3))])
        compositor = Compositor(INTR, occlusion=wall,
                                occlusion_policy="xray")
        frame = compositor.compose(scene, self._pose())
        assert len(frame.items) == 1
        assert frame.items[0].xray
        assert frame.items[0].occluded

    def test_ignore_policy_skips_occlusion_test(self):
        scene = self._scene(n=1, z=5.0)
        wall = OcclusionWorld([BoxOccluder("wall", (-2, -2, 2), (2, 2, 3))])
        compositor = Compositor(INTR, occlusion=wall,
                                occlusion_policy="ignore")
        frame = compositor.compose(scene, self._pose())
        assert not frame.items[0].occluded

    def test_budget_sheds_lowest_priority(self):
        scene = self._scene(n=10)
        budget = FrameBudget(budget_ms=1.0, cost_per_label_ms=0.25)
        compositor = Compositor(INTR, budget=budget)
        frame = compositor.compose(scene, self._pose())
        # a0 and a9 project offscreen; of the 8 visible, 4 fit in 1 ms.
        assert frame.culled_offscreen == 2
        assert frame.shed_by_budget == 4
        kept = {i.annotation_id for i in frame.items}
        assert kept == {"a8", "a7", "a6", "a5"}  # highest priorities

    def test_depth_recorded(self):
        compositor = Compositor(INTR)
        frame = compositor.compose(self._scene(n=1), self._pose())
        assert frame.items[0].depth_m == pytest.approx(5.0)

    def test_unknown_policy_rejected(self):
        with pytest.raises(RenderError):
            Compositor(INTR, occlusion_policy="fancy")
