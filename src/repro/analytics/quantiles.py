"""Streaming quantile estimation (P² algorithm, Jain & Chlamtac 1985).

Constant memory per tracked quantile; used for latency percentiles in
the timeliness experiments without retaining full samples.
"""

from __future__ import annotations

from ..util.errors import ConfigError

__all__ = ["P2Quantile"]


class P2Quantile:
    """Single-quantile P² estimator."""

    def __init__(self, q: float) -> None:
        if not 0.0 < q < 1.0:
            raise ConfigError("q must be in (0, 1)")
        self.q = q
        self._initial: list[float] = []
        # marker heights, positions, desired positions, increments
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]
        self.count = 0

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        if len(self._initial) < 5:
            self._initial.append(value)
            if len(self._initial) == 5:
                self._initial.sort()
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [1.0, 1.0 + 2.0 * self.q, 1.0 + 4.0 * self.q,
                                 3.0 + 2.0 * self.q, 5.0]
            return

        # Find cell k containing the new observation.
        if value < self._heights[0]:
            self._heights[0] = value
            k = 0
        elif value >= self._heights[4]:
            self._heights[4] = value
            k = 3
        else:
            k = 0
            while k < 3 and value >= self._heights[k + 1]:
                k += 1

        for i in range(k + 1, 5):
            self._positions[i] += 1.0
        for i in range(5):
            self._desired[i] += self._increments[i]

        # Adjust interior markers with parabolic (fallback linear) moves.
        for i in range(1, 4):
            d = self._desired[i] - self._positions[i]
            left_gap = self._positions[i] - self._positions[i - 1]
            right_gap = self._positions[i + 1] - self._positions[i]
            if (d >= 1.0 and right_gap > 1.0) or (d <= -1.0 and left_gap > 1.0):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if self._heights[i - 1] < candidate < self._heights[i + 1]:
                    self._heights[i] = candidate
                else:
                    self._heights[i] = self._linear(i, step)
                self._positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        p = self._positions
        h = self._heights
        return h[i] + step / (p[i + 1] - p[i - 1]) * (
            (p[i] - p[i - 1] + step) * (h[i + 1] - h[i]) / (p[i + 1] - p[i])
            + (p[i + 1] - p[i] - step) * (h[i] - h[i - 1]) / (p[i] - p[i - 1])
        )

    def _linear(self, i: int, step: float) -> float:
        j = i + int(step)
        return self._heights[i] + step * (
            (self._heights[j] - self._heights[i])
            / (self._positions[j] - self._positions[i])
        )

    def value(self) -> float:
        """Current quantile estimate."""
        if self.count == 0:
            return float("nan")
        if len(self._initial) < 5:
            ordered = sorted(self._initial)
            index = min(len(ordered) - 1,
                        max(0, round(self.q * (len(ordered) - 1))))
            return ordered[index]
        return self._heights[2]
