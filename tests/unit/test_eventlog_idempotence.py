"""Unit tests: idempotent producer semantics."""

import pytest

from repro.eventlog import Consumer, LogCluster, Producer, TopicConfig
from repro.util.errors import LogError


def _cluster(partitions=2):
    cluster = LogCluster(3)
    cluster.create_topic(TopicConfig("t", partitions=partitions,
                                     replication=2))
    return cluster


class TestIdempotentProducer:
    def test_retry_does_not_duplicate(self):
        cluster = _cluster()
        producer = Producer(cluster, idempotent=True)
        partition, offset = producer.send("t", {"v": 1}, key="k")
        retry_partition, retry_offset = producer.resend_last()
        assert (retry_partition, retry_offset) == (partition, offset)
        assert cluster.end_offset("t", partition) == 1
        assert producer.duplicates_rejected == 1

    def test_sequences_continue_after_retry(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1)
        producer.resend_last()
        producer.send("t", 2)
        consumer = Consumer(cluster, "t")
        assert [r.value for r in consumer.poll()] == [1, 2]

    def test_retry_survives_failover(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1)
        cluster.fail_broker(cluster.partition_state("t", 0).leader)
        # The ambiguous-failure retry lands on the new leader and is
        # still deduplicated (acks=all means the record replicated).
        producer.resend_last()
        assert cluster.end_offset("t", 0) == 1

    def test_two_producers_do_not_collide(self):
        cluster = _cluster(partitions=1)
        a = Producer(cluster, idempotent=True)
        b = Producer(cluster, idempotent=True)
        a.send("t", "from-a")
        b.send("t", "from-b")
        a.resend_last()
        b.resend_last()
        assert cluster.end_offset("t", 0) == 2

    def test_sequence_headers_attached(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1)
        producer.send("t", 2)
        rows = Consumer(cluster, "t").poll()
        assert rows[0].record.headers["seq"] == "0"
        assert rows[1].record.headers["seq"] == "1"
        assert rows[0].record.headers["pid"] == \
            str(producer.producer_id)

    def test_sequence_gap_rejected(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1)
        from repro.eventlog import Record
        with pytest.raises(LogError):
            cluster.append_idempotent("t", 0, Record(value=9),
                                      producer.producer_id, sequence=5)

    def test_stale_sequence_rejected(self):
        cluster = _cluster(partitions=1)
        producer = Producer(cluster, idempotent=True)
        producer.send("t", 1)
        producer.send("t", 2)
        from repro.eventlog import Record
        with pytest.raises(LogError):
            cluster.append_idempotent("t", 0, Record(value=9),
                                      producer.producer_id, sequence=0)

    def test_non_idempotent_resend_rejected(self):
        cluster = _cluster()
        producer = Producer(cluster)
        producer.send("t", 1)
        with pytest.raises(ValueError):
            producer.resend_last()

    def test_plain_producer_still_duplicates(self):
        """Contrast: without idempotence a retry double-appends."""
        cluster = _cluster(partitions=1)
        producer = Producer(cluster)
        producer.send("t", {"v": 1}, partition=0)
        producer.send("t", {"v": 1}, partition=0)  # "retry"
        assert cluster.end_offset("t", 0) == 2
