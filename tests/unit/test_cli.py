"""Unit tests: the ``python -m repro`` info CLI."""

from repro.__main__ import SUBSYSTEMS, main, _smoke


class TestCli:
    def test_main_reports_healthy(self, capsys):
        assert main(["--no-smoke"]) == 0
        out = capsys.readouterr().out
        assert "repro 1.0.0" in out
        for module_name, _desc in SUBSYSTEMS:
            assert module_name in out
        assert "FAILED" not in out

    def test_smoke_runs_the_loop(self):
        line = _smoke()
        assert "windowed" in line
        assert "rendered" in line

    def test_main_with_smoke(self, capsys):
        assert main([]) == 0
        assert "smoke:" in capsys.readouterr().out
