"""Unit tests: batched execution, operator chaining, vectorized kernels.

The contract under test: batched (and chained) execution is
bit-identical to per-item execution — same sink contents, same operator
state, same processed/emitted counters, same overflow accounting.
"""

import numpy as np
import pytest

from repro.streaming import (
    ChainedOperator,
    Element,
    Executor,
    FilterOperator,
    JobBuilder,
    MapOperator,
    TumblingWindows,
    Watermark,
    WatermarkGenerator,
)
from repro.util.errors import StreamError
from repro.util.metrics import Summary


def _els(n, key_mod=3):
    return [Element(value={"k": i % key_mod, "v": float(i)},
                    timestamp=float(i)) for i in range(n)]


MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}


def run_all_modes(make_builder, **executor_kwargs):
    """Build the same job per mode (fresh operator state) and run it."""
    out = {}
    for mode, flags in MODES.items():
        executor = Executor(make_builder().build(), **flags,
                            **executor_kwargs)
        sinks = executor.run()
        out[mode] = (executor, sinks)
    return out


class TestChainPlan:
    def _linear(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(10))
                .map(lambda v: v["v"])
                .filter(lambda v: v >= 2.0)
                .map(lambda v: v * 2)
                .sink("out"))
        return builder

    def test_linear_run_fuses_into_one_node(self):
        executor = Executor(self._linear().build())
        chains = executor.chained_nodes()
        assert len(chains) == 1
        (members,) = chains.values()
        assert members == ["map_0", "filter_0", "map_1"]
        # One channel into the chain instead of three hops.
        assert len(executor._channels) == 1

    def test_chaining_disabled_keeps_channels(self):
        executor = Executor(self._linear().build(), chaining=False)
        assert executor.chained_nodes() == {}
        assert len(executor._channels) == 3

    def test_per_item_mode_never_chains(self):
        executor = Executor(self._linear().build(), batch_mode=False)
        assert executor.chained_nodes() == {}

    def test_keyed_state_breaks_chain(self):
        builder = JobBuilder("j")
        (builder.source("s", _els(10))
                .map(lambda v: v)
                .key_by(lambda v: v["k"])
                .reduce(lambda a, b: {"k": a["k"], "v": a["v"] + b["v"]})
                .map(lambda v: v["v"])
                .sink("out"))
        executor = Executor(builder.build())
        chains = executor.chained_nodes()
        # map+key_by fuse; reduce stays alone; the tail map has no
        # chainable neighbour.
        assert list(chains.values()) == [["map_0", "key_by_0"]]
        assert "reduce_0" in executor._exec_ops
        assert "map_1" in executor._exec_ops

    def test_fanout_breaks_chain(self):
        builder = JobBuilder("j")
        handle = builder.source("s", _els(10)).map(lambda v: v["v"], name="m")
        handle.map(lambda v: v + 1, name="a").sink("out_a")
        handle.map(lambda v: v - 1, name="b").sink("out_b")
        executor = Executor(builder.build())
        # m has two downstreams -> no fusion anywhere.
        assert executor.chained_nodes() == {}
        sinks = executor.run()
        assert len(sinks["out_a"]) == 10
        assert len(sinks["out_b"]) == 10

    def test_join_never_chains(self):
        builder = JobBuilder("j")
        left = builder.source("l", _els(5)).key_by(lambda v: v["k"])
        right = builder.source("r", _els(5)).key_by(lambda v: v["k"])
        left.join(right, -1.0, 1.0).sink("out")
        executor = Executor(builder.build())
        # The side-tagged join edges are unfusible, and each key_by has
        # no chainable neighbour left — nothing fuses at all.
        assert executor.chained_nodes() == {}
        assert ("join_0", "left") in executor._channels
        assert ("join_0", "right") in executor._channels


class TestChainedOperator:
    def test_needs_two_operators(self):
        with pytest.raises(StreamError):
            ChainedOperator([MapOperator("m", lambda v: v)])

    def test_handle_and_batch_agree(self):
        def make():
            return ChainedOperator([
                MapOperator("m", lambda v: v * 2),
                FilterOperator("f", lambda v: v > 2),
            ])
        items = [Element(float(i), float(i)) for i in range(5)]
        items.insert(2, Watermark(1.0))
        a, b = make(), make()
        per_item = [o for item in items for o in a.handle(item)]
        batched = b.process_batch(items)
        assert per_item == batched
        assert a.operators[0].processed == b.operators[0].processed
        assert a.operators[1].emitted == b.operators[1].emitted

    def test_flush_cascades_through_members(self):
        wm_gen = WatermarkGenerator("w", max_lateness=0.0)
        chain = ChainedOperator([MapOperator("m", lambda v: v), wm_gen])
        chain.process_batch([Element(1.0, 5.0)])
        out = chain.flush()
        assert out == [Watermark(float("inf"))]

    def test_snapshot_restore_roundtrip(self):
        wm_gen = WatermarkGenerator("w", max_lateness=1.0)
        chain = ChainedOperator([MapOperator("m", lambda v: v), wm_gen])
        chain.process_batch([Element(1.0, 5.0)])
        snap = chain.snapshot()
        assert snap["m"] is None
        fresh_wm = WatermarkGenerator("w", max_lateness=1.0)
        fresh = ChainedOperator([MapOperator("m", lambda v: v), fresh_wm])
        fresh.restore(snap)
        assert fresh_wm.snapshot() == wm_gen.snapshot()


class TestModeEquivalence:
    def test_windowed_pipeline_identical(self):
        def make_builder():
            builder = JobBuilder("j")
            (builder.source("s", _els(60))
                    .map(lambda v: {"k": v["k"], "v": v["v"] * 2})
                    .with_watermarks(1.0, emit_every=7)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"])
                    .sink("out"))
            return builder
        runs = run_all_modes(make_builder)
        base_sink = runs["per_item"][1]["out"].elements
        for mode in ("batched", "chained"):
            assert runs[mode][1]["out"].elements == base_sink

    def test_counters_identical_across_modes(self):
        def make_builder():
            builder = JobBuilder("j")
            (builder.source("s", _els(40))
                    .map(lambda v: v["v"])
                    .filter(lambda v: v % 3 > 0)
                    .flat_map(lambda v: [v, -v])
                    .sink("out"))
            return builder
        runs = run_all_modes(make_builder)
        per_item = runs["per_item"][0]
        for mode in ("batched", "chained"):
            executor = runs[mode][0]
            for name, op in executor.job.operators.items():
                ref = per_item.job.operators[name]
                assert (op.processed, op.emitted) == \
                       (ref.processed, ref.emitted), (mode, name)

    def test_overflow_drop_accounting_identical(self):
        def make_builder():
            builder = JobBuilder("j")
            (builder.source("s", _els(100))
                    .map(lambda v: v)
                    .sink("out"))
            return builder
        runs = run_all_modes(make_builder, channel_capacity=10,
                             drop_on_overflow=True)
        # Chaining changes the channel structure, but per-item and
        # batched (unchained) must account drops identically.
        a = runs["per_item"][0]
        b = runs["batched"][0]
        assert a.dropped_overflow == b.dropped_overflow > 0
        assert runs["per_item"][1]["out"].elements == \
               runs["batched"][1]["out"].elements

    def test_backpressure_accounting_identical(self):
        def make_builder():
            builder = JobBuilder("j")
            (builder.source("s", _els(100))
                    .map(lambda v: v)
                    .sink("out"))
            return builder
        counts = {}
        for mode in ("per_item", "batched"):
            executor = Executor(make_builder().build(), channel_capacity=10,
                                **MODES[mode])
            executor.run(source_batch=100)
            counts[mode] = executor.backpressure_events
            assert len(executor.sinks["out"]) == 100
        assert counts["per_item"] == counts["batched"] > 0

    def test_vectorized_operators_match_scalar(self):
        values = [float(i) for i in range(30)]

        def make_builder(vectorized):
            builder = JobBuilder("j")
            source = [Element(v, float(i)) for i, v in enumerate(values)]
            if vectorized:
                (builder.source("s", source)
                        .map(lambda v: v * 3.0 + 1.0, vectorized=True)
                        .filter(lambda v: v > 10.0, vectorized=True)
                        .key_by(lambda v: v % 5.0, vectorized=True)
                        .reduce(np.add, vectorized=True)
                        .sink("out"))
            else:
                (builder.source("s", source)
                        .map(lambda v: v * 3.0 + 1.0)
                        .filter(lambda v: v > 10.0)
                        .key_by(lambda v: v % 5.0)
                        .reduce(lambda a, b: a + b)
                        .sink("out"))
            return builder

        scalar = Executor(make_builder(False).build(),
                          batch_mode=False).run()["out"]
        for mode in MODES.values():
            got = Executor(make_builder(True).build(), **mode).run()["out"]
            assert [float(v) for v in got.values] == \
                   [float(v) for v in scalar.values]
            assert [float(e.key) for e in got.elements] == \
                   [float(e.key) for e in scalar.elements]

    def test_vectorized_reduce_requires_ufunc(self):
        with pytest.raises(StreamError):
            JobBuilder("j").source("s", _els(1)).reduce(
                lambda a, b: a + b, vectorized=True)


class TestSummaryCache:
    def test_cache_invalidated_on_observe(self):
        summary = Summary()
        summary.observe(1.0)
        assert summary.mean == 1.0
        summary.observe(3.0)
        assert summary.mean == 2.0
        assert summary.percentile(100.0) == 3.0

    def test_reset_clears_everything(self):
        summary = Summary()
        for v in (1.0, 2.0, 3.0):
            summary.observe(v)
        summary.reset()
        assert summary.count == 0
        assert np.isnan(summary.mean)
        assert summary.total == 0.0
        summary.observe(7.0)
        assert summary.mean == 7.0
