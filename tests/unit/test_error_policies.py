"""Per-operator error policies: declaration, guards, DLQ routing.

Tier-1 coverage for :mod:`repro.streaming.errors` — policy validation,
the per-item and batch guards, dead-letter provenance, chained
enforcement, and the restart budget's escalation arithmetic.  The
chaos-composition invariants live in the ``datafault``-marked suite.
"""

from __future__ import annotations

import pytest

from repro.streaming import (
    DEAD_LETTER,
    DLQ_SINK,
    FAIL,
    RETRY,
    SKIP,
    DeadLetter,
    Element,
    ErrorPolicy,
    Executor,
    JobBuilder,
    ParallelExecutor,
    RestartBudget,
)
from repro.streaming.errors import guard_batch, guard_item
from repro.streaming.operators import MapOperator
from repro.util.errors import (
    ConfigError,
    JobGraphError,
    OperatorCrash,
    RestartsExhausted,
)


def events(n=20):
    return [Element({"i": i, "v": float(i)}, timestamp=float(i))
            for i in range(n)]


def boom_on(bad):
    def fn(v):
        if v["i"] in bad:
            raise ValueError(f"poisoned {v['i']}")
        return {"i": v["i"], "v": v["v"] * 2.0}
    return fn


def build(policy, bad=(3, 7), n=20):
    builder = JobBuilder("policies")
    (builder.source("events", events(n))
            .map(boom_on(bad), name="double")
            .on_error(policy)
            .sink("out"))
    return builder.build()


# -- policy objects and graph declaration ------------------------------------


def test_policy_validation():
    with pytest.raises(ConfigError):
        ErrorPolicy("explode")
    with pytest.raises(ConfigError):
        ErrorPolicy("retry")  # needs attempts >= 1
    with pytest.raises(ConfigError):
        ErrorPolicy("skip", attempts=2)
    with pytest.raises(ConfigError):
        RETRY(2, escalate="retry")
    assert RETRY(2, escalate="dead_letter").can_dead_letter
    assert DEAD_LETTER.can_dead_letter
    assert not SKIP.can_dead_letter and not FAIL.can_dead_letter


def test_on_error_declares_policy():
    job = build(SKIP)
    assert job.error_policies == {"double": SKIP}
    assert not job.needs_dead_letters
    assert build(DEAD_LETTER).needs_dead_letters


def test_on_error_rejects_unknown_operator():
    builder = JobBuilder("bad")
    builder.source("events", events()).map(lambda v: v, name="m").sink("out")
    builder.on_error("nope", SKIP)
    with pytest.raises(JobGraphError):
        builder.build()


def test_dlq_sink_name_reserved():
    builder = JobBuilder("bad")
    with pytest.raises(JobGraphError):
        builder.source("events", events()).map(lambda v: v).sink(DLQ_SINK)


# -- executor enforcement, all modes -----------------------------------------


MODES = [(False, False), (True, False), (True, True)]


@pytest.mark.parametrize("batch_mode,chaining", MODES)
def test_fail_is_default(batch_mode, chaining):
    builder = JobBuilder("default")
    (builder.source("events", events())
            .map(boom_on({3}), name="double")
            .sink("out"))
    with pytest.raises(ValueError):
        Executor(builder.build(), batch_mode=batch_mode,
                 chaining=chaining).run()


@pytest.mark.parametrize("batch_mode,chaining", MODES)
def test_skip_drops_only_poisoned(batch_mode, chaining):
    sinks = Executor(build(SKIP), batch_mode=batch_mode,
                     chaining=chaining).run()
    assert [v["i"] for v in sinks["out"].values] \
        == [i for i in range(20) if i not in (3, 7)]


@pytest.mark.parametrize("batch_mode,chaining", MODES)
def test_dead_letter_routes_to_dlq(batch_mode, chaining):
    sinks = Executor(build(DEAD_LETTER), batch_mode=batch_mode,
                     chaining=chaining).run()
    assert [v["i"] for v in sinks["out"].values] \
        == [i for i in range(20) if i not in (3, 7)]
    letters = sinks[DLQ_SINK].values
    assert [dl.value["i"] for dl in letters] == [3, 7]
    for dl in letters:
        assert isinstance(dl, DeadLetter)
        assert dl.operator == "double"
        assert dl.error_type == "ValueError"
        assert dl.fault == "error"


@pytest.mark.parametrize("batch_mode,chaining", MODES)
def test_retry_escalates_after_attempts(batch_mode, chaining):
    calls = {}

    def flaky(v):
        calls[v["i"]] = calls.get(v["i"], 0) + 1
        if v["i"] == 5:
            raise ValueError("always")
        return v

    builder = JobBuilder("retry")
    (builder.source("events", events(10))
            .map(flaky, name="m")
            .on_error(RETRY(2, escalate="dead_letter"))
            .sink("out"))
    sinks = Executor(builder.build(), batch_mode=batch_mode,
                     chaining=chaining).run()
    # Per-item: first try + 2 retries.  Batch mode adds one more call:
    # the failed vectorized pass, rolled back before per-item replay.
    assert calls[5] == (4 if batch_mode else 3)
    [letter] = sinks[DLQ_SINK].values
    assert letter.value["i"] == 5 and letter.attempts == 2


@pytest.mark.parametrize("parallelism", [1, 2, 4])
def test_parallel_executor_enforces_policies(parallelism):
    sinks = ParallelExecutor(build(DEAD_LETTER), parallelism).run()
    assert sorted(v["i"] for v in sinks["out"].values) \
        == [i for i in range(20) if i not in (3, 7)]
    assert sorted(dl.value["i"] for dl in sinks[DLQ_SINK].values) == [3, 7]


def test_modes_agree_on_dlq_contents():
    runs = [Executor(build(DEAD_LETTER), batch_mode=bm, chaining=ch).run()
            for bm, ch in MODES]
    baseline = [(dl.value["i"], dl.operator, dl.error_type)
                for dl in runs[0][DLQ_SINK].values]
    for sinks in runs[1:]:
        assert [(dl.value["i"], dl.operator, dl.error_type)
                for dl in sinks[DLQ_SINK].values] == baseline


def test_no_dlq_sink_without_dead_letter_policy():
    assert DLQ_SINK not in Executor(build(SKIP)).run()
    assert DLQ_SINK in Executor(build(DEAD_LETTER)).run()


# -- the guards directly -----------------------------------------------------


def test_guard_item_skip_and_dead_letter():
    op = MapOperator("m", boom_on({1}))
    dead = []
    ok = guard_item(op, Element({"i": 0, "v": 0.0}, 0.0), SKIP, dead)
    assert len(ok) == 1 and not dead
    out = guard_item(op, Element({"i": 1, "v": 1.0}, 1.0), SKIP, dead)
    assert out == [] and not dead
    out = guard_item(op, Element({"i": 1, "v": 1.0}, 1.0), DEAD_LETTER, dead)
    assert out == [] and len(dead) == 1
    assert dead[0].value.value["i"] == 1


def test_guard_batch_rolls_back_state_on_replay():
    class Counting(MapOperator):
        def __init__(self):
            super().__init__("c", boom_on({2}))
            self.seen = 0

        def process(self, element):
            self.seen += 1
            return super().process(element)

        def snapshot(self):
            return self.seen

        def restore(self, snapshot):
            self.seen = snapshot or 0

    op = Counting()
    dead = []
    items = [Element({"i": i, "v": 0.0}, float(i)) for i in range(4)]
    out = guard_batch(op, items, DEAD_LETTER, op.process_batch, dead)
    # The failed vectorized pass was rolled back before per-item replay,
    # and the poisoned record's own partial state was rolled back too:
    # only the three surviving records leave a mark.
    assert op.seen == 3
    assert [e.value["i"] for e in out] == [0, 1, 3]
    assert [dl.value.value["i"] for dl in dead] == [2]


def test_guards_never_swallow_infrastructure_faults():
    def dies(v):
        raise OperatorCrash("injected", op_name="m")

    op = MapOperator("m", dies)
    with pytest.raises(OperatorCrash):
        guard_item(op, Element({"i": 0}, 0.0), SKIP, [])
    with pytest.raises(OperatorCrash):
        guard_batch(op, [Element({"i": 0}, 0.0)], SKIP,
                    op.process_batch, [])


# -- restart budget ----------------------------------------------------------


def test_restart_budget_exhaustion():
    budget = RestartBudget(max_restarts=2, base_delay_s=1.0, jitter=0.0)
    assert budget.on_failure(ValueError("x")) == 1.0
    assert budget.on_failure(ValueError("x")) == 2.0
    with pytest.raises(RestartsExhausted) as info:
        budget.on_failure(ValueError("x"))
    assert info.value.reason == "budget"
    assert info.value.restarts == 2


def test_restart_budget_flapping():
    budget = RestartBudget(max_restarts=100, flap_threshold=3)
    budget.on_failure(ValueError("x"), made_progress=False)
    budget.on_failure(ValueError("x"), made_progress=True)  # resets streak
    budget.on_failure(ValueError("x"), made_progress=False)
    budget.on_failure(ValueError("x"), made_progress=False)
    with pytest.raises(RestartsExhausted) as info:
        budget.on_failure(ValueError("x"), made_progress=False)
    assert info.value.reason == "flapping"


def test_restart_budget_backoff_is_seeded_and_capped():
    def total(seed):
        budget = RestartBudget(max_restarts=8, base_delay_s=0.5,
                               max_delay_s=2.0, seed=seed)
        for _ in range(8):
            budget.on_failure(ValueError("x"))
        return budget.total_backoff_s

    assert total(1) == total(1)
    assert total(1) != total(2)
    budget = RestartBudget(max_restarts=8, base_delay_s=0.5,
                           max_delay_s=2.0, jitter=0.0)
    delays = [budget.on_failure(ValueError("x")) for _ in range(8)]
    assert max(delays) == 2.0
