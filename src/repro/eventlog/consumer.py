"""Consumers and consumer groups.

A :class:`Consumer` polls assigned partitions with per-partition position
tracking.  A :class:`ConsumerGroup` owns committed offsets and assigns
partitions to members with range assignment, rebalancing on join/leave —
the mechanism behind the horizontal-scaling ablation (exp A2).
"""

from __future__ import annotations

from typing import Any, Iterator

from ..util.clock import SimClock
from ..util.errors import BrokerDown, LogError, OffsetOutOfRange
from ..util.ids import split_ranges
from ..util.retry import Retrier, RetryPolicy
from .broker import LogCluster
from .record import ConsumedRecord

__all__ = ["Consumer", "ConsumerGroup"]


class Consumer:
    """Reads one or more partitions of one topic.

    With ``dedup=True`` the consumer keeps a delivered high-watermark per
    partition and silently drops any fetched record at an offset it has
    already delivered — so a broker that re-delivers (duplicate delivery,
    a fetch retried past an ambiguous failure) still yields each offset
    exactly once downstream.  Positions only move forward.
    """

    def __init__(self, cluster: LogCluster, topic: str,
                 partitions: list[int] | None = None,
                 start: str = "earliest", dedup: bool = False,
                 tracer: Any = None) -> None:
        self.cluster = cluster
        self.topic = topic
        #: optional :class:`repro.obs.trace.Tracer` (duck-typed).  When
        #: set, each delivered record gets a "consume" span parented on
        #: the producer's span via the record's ``traceparent`` header —
        #: the cross-broker-hop causal link.
        self.tracer = tracer
        if partitions is None:
            partitions = list(range(cluster.partition_count(topic)))
        self.partitions = sorted(partitions)
        self.dedup = dedup
        self._positions: dict[int, int] = {}
        # Highest offset + 1 already handed to the caller, per partition.
        self._delivered: dict[int, int] = {}
        for p in self.partitions:
            if start == "earliest":
                self._positions[p] = cluster.base_offset(topic, p)
            elif start == "latest":
                self._positions[p] = cluster.end_offset(topic, p)
            else:
                raise LogError(f"unknown start mode {start!r}")
            self._delivered[p] = self._positions[p]
        self.consumed = 0
        self.duplicates_dropped = 0

    def position(self, partition: int) -> int:
        try:
            return self._positions[partition]
        except KeyError:
            raise LogError(
                f"partition {partition} not assigned to this consumer"
            ) from None

    def seek(self, partition: int, offset: int) -> None:
        self.position(partition)  # validate assignment
        base = self.cluster.base_offset(self.topic, partition)
        end = self.cluster.end_offset(self.topic, partition)
        if not base <= offset <= end:
            raise OffsetOutOfRange(
                f"{self.topic}[{partition}]: seek to {offset} outside "
                f"[{base}, {end}]"
            )
        self._positions[partition] = offset
        # An explicit seek is a deliberate rewind: re-delivery from the
        # new position is wanted, so the dedup watermark follows it.
        self._delivered[partition] = offset

    def seek_to_timestamp(self, timestamp: float) -> None:
        """Position every assigned partition at the first retained record
        with ``record.timestamp >= timestamp`` (end offset when none).

        Records within a partition are appended in non-decreasing
        timestamp order by convention, so a binary scan per partition is
        exact under that convention.
        """
        for p in self.partitions:
            base = self.cluster.base_offset(self.topic, p)
            end = self.cluster.end_offset(self.topic, p)
            lo, hi = base, end
            while lo < hi:
                mid = (lo + hi) // 2
                rows = self.cluster.read(self.topic, p, mid, max_records=1)
                if not rows:
                    # Only compacted holes from mid to the end; the
                    # answer (if any) lies below mid.
                    hi = mid
                    continue
                offset, record = rows[0]
                if record.timestamp < timestamp:
                    lo = offset + 1
                else:
                    hi = mid  # holes in [mid, offset) are skipped anyway
            self._positions[p] = lo
            self._delivered[p] = lo

    def lag(self, partition: int) -> int:
        """Records between the consumer position and the end offset."""
        return (self.cluster.end_offset(self.topic, partition)
                - self.position(partition))

    def total_lag(self) -> int:
        return sum(self.lag(p) for p in self.partitions)

    def _poll_once(self, max_records: int) -> tuple[list[ConsumedRecord], bool]:
        """One fetch pass; returns (records delivered, fetched anything)."""
        out: list[ConsumedRecord] = []
        fetched_any = False
        remaining = max_records
        for p in self.partitions:
            if remaining <= 0:
                break
            position = self._positions[p]
            base = self.cluster.base_offset(self.topic, p)
            if position < base:
                # Retention ran past us; jump forward (data loss surfaced
                # via the returned gap, mirroring auto.offset.reset).
                position = base
            rows = self.cluster.read(self.topic, p, position, remaining)
            if rows:
                fetched_any = True
            delivered = self._delivered.get(p, position)
            tracer = self.tracer
            for offset, record in rows:
                if self.dedup and offset < delivered:
                    self.duplicates_dropped += 1
                    continue
                out.append(ConsumedRecord(self.topic, p, offset, record))
                if tracer is not None:
                    # Parent on the producer's span when the record
                    # carries a traceparent header; otherwise fall back
                    # to the active span (an untraced producer).
                    span = tracer.start_span(
                        "consume",
                        parent=tracer.parse_traceparent(
                            record.headers.get("traceparent")),
                        attrs={"topic": self.topic, "partition": p,
                               "offset": offset})
                    span.end()
            if rows:
                # Positions only move forward: a fetch that re-delivered
                # older offsets (duplicate delivery) must not rewind us.
                self._positions[p] = max(position, rows[-1][0] + 1)
                self._delivered[p] = max(delivered, rows[-1][0] + 1)
            else:
                self._positions[p] = position
            remaining -= len(rows)
        self.consumed += len(out)
        return out, fetched_any

    def poll(self, max_records: int = 512) -> list[ConsumedRecord]:
        """Round-robin fetch across assigned partitions.

        When dedup filters an entire fetched batch (everything was
        re-delivered), the poll transparently re-fetches — bounded — so
        callers that treat an empty poll as end-of-partition don't stop
        early with live data still ahead.
        """
        span = None
        if self.tracer is not None:
            span = self.tracer.start_span(
                "consume:poll", attrs={"topic": self.topic})
        out, fetched_any = self._poll_once(max_records)
        guard = 0
        while self.dedup and not out and fetched_any and guard < 64:
            guard += 1
            out, fetched_any = self._poll_once(max_records)
        if span is not None:
            span.set_attr("records", len(out))
            span.end()
        return out

    def poll_with_retry(self, max_records: int = 512,
                        policy: RetryPolicy | None = None,
                        clock: SimClock | None = None) -> list[ConsumedRecord]:
        """``poll`` with capped-backoff retries on :class:`BrokerDown` —
        rides out partition-unavailable windows instead of surfacing them."""
        retrier = Retrier(policy or RetryPolicy(), clock=clock)
        return retrier.call(lambda: self.poll(max_records),
                            retry_on=(BrokerDown,))

    def iter_batches(self, max_records: int = 512,
                     ) -> Iterator[list[ConsumedRecord]]:
        """Yield non-empty poll batches until the assigned partitions are
        drained — the batch-granular feed for streaming sources, so the
        executor's batched source pulls ride on batched log reads instead
        of a hidden record-at-a-time loop."""
        while True:
            batch = self.poll(max_records)
            if not batch:
                return
            yield batch


class ConsumerGroup:
    """Coordinates members, assignment and committed offsets for a topic."""

    def __init__(self, cluster: LogCluster, topic: str, group_id: str) -> None:
        self.cluster = cluster
        self.topic = topic
        self.group_id = group_id
        self._members: dict[str, Consumer] = {}
        self._committed: dict[int, int] = {}
        self.rebalances = 0

    # -- membership -------------------------------------------------------

    def join(self, member_id: str) -> Consumer:
        if member_id in self._members:
            raise LogError(f"member {member_id!r} already in group")
        self._members[member_id] = None  # type: ignore[assignment]
        self._rebalance()
        return self._members[member_id]

    def leave(self, member_id: str) -> None:
        if member_id not in self._members:
            raise LogError(f"member {member_id!r} not in group")
        del self._members[member_id]
        if self._members:
            self._rebalance()

    def _rebalance(self) -> None:
        """Range assignment: contiguous partition slices per member.

        Uses the same ceil-division range formula as streaming key
        groups and source splits (:func:`repro.util.ids.split_ranges`),
        so partition->member, split->subtask and key-group->subtask
        assignment all agree — a parallel source subtask reading via a
        consumer group owns exactly the partitions its split range says.
        """
        self.rebalances += 1
        members = sorted(self._members)
        n_parts = self.cluster.partition_count(self.topic)
        ranges = split_ranges(n_parts, len(members))
        for member_id, assigned_range in zip(members, ranges):
            assigned = list(assigned_range)
            consumer = Consumer(self.cluster, self.topic, assigned,
                                start="earliest")
            for p in assigned:
                if p in self._committed:
                    base = self.cluster.base_offset(self.topic, p)
                    end = self.cluster.end_offset(self.topic, p)
                    consumer.seek(p, min(max(self._committed[p], base), end))
            self._members[member_id] = consumer

    def member(self, member_id: str) -> Consumer:
        try:
            consumer = self._members[member_id]
        except KeyError:
            raise LogError(f"member {member_id!r} not in group") from None
        return consumer

    def members(self) -> list[str]:
        return sorted(self._members)

    # -- offsets ------------------------------------------------------------

    def commit(self, member_id: str) -> None:
        """Commit the member's current positions for its partitions."""
        consumer = self.member(member_id)
        for p in consumer.partitions:
            self._committed[p] = consumer.position(p)

    def committed(self, partition: int) -> int | None:
        return self._committed.get(partition)

    def total_lag(self) -> int:
        return sum(self.member(m).total_lag() for m in self._members)

    def poll_all(self, max_records_per_member: int = 512) -> list[ConsumedRecord]:
        """Poll every member once (deterministic member order)."""
        out: list[ConsumedRecord] = []
        for member_id in sorted(self._members):
            out.extend(self.member(member_id).poll(max_records_per_member))
        return out
