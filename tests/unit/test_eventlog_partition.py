"""Unit tests: partition offsets, retention, compaction; record sizing."""

import pytest

from repro.eventlog import Partition, Record, estimate_size
from repro.util.errors import OffsetOutOfRange


def _record(i, key=None, ts=0.0):
    return Record(value={"i": i}, key=key, timestamp=ts)


class TestRecordSize:
    def test_primitives(self):
        assert estimate_size(None) == 1
        assert estimate_size(True) == 1
        assert estimate_size(7) == 8
        assert estimate_size(3.14) == 8
        assert estimate_size("abc") == 3
        assert estimate_size(b"abcd") == 4

    def test_containers(self):
        assert estimate_size([1, 2]) == 18
        assert estimate_size({"a": 1}) == 11

    def test_record_size_includes_key_and_headers(self):
        bare = Record(value="v").size_bytes
        keyed = Record(value="v", key="kk").size_bytes
        headered = Record(value="v", headers={"h": "x"}).size_bytes
        assert keyed == bare + 2
        assert headered == bare + 2


class TestPartitionAppendRead:
    def test_append_returns_sequential_offsets(self):
        p = Partition("t", 0)
        assert [p.append(_record(i)) for i in range(3)] == [0, 1, 2]
        assert p.end_offset == 3
        assert p.base_offset == 0

    def test_read_from_offset(self):
        p = Partition("t", 0)
        for i in range(5):
            p.append(_record(i))
        rows = p.read(2)
        assert [offset for offset, _r in rows] == [2, 3, 4]

    def test_read_at_end_is_empty(self):
        p = Partition("t", 0)
        p.append(_record(0))
        assert p.read(1) == []

    def test_read_past_end_raises(self):
        p = Partition("t", 0)
        with pytest.raises(OffsetOutOfRange):
            p.read(1)

    def test_read_respects_max_records(self):
        p = Partition("t", 0)
        for i in range(10):
            p.append(_record(i))
        assert len(p.read(0, max_records=4)) == 4

    def test_get_single(self):
        p = Partition("t", 0)
        p.append(_record(0))
        p.append(_record(1))
        assert p.get(1).value == {"i": 1}

    def test_size_bytes_tracks_appends(self):
        p = Partition("t", 0)
        r = _record(0)
        p.append(r)
        assert p.size_bytes == r.size_bytes


class TestRetention:
    def test_truncate_before(self):
        p = Partition("t", 0)
        for i in range(5):
            p.append(_record(i))
        dropped = p.truncate_before(3)
        assert dropped == 3
        assert p.base_offset == 3
        assert [o for o, _r in p.read(3)] == [3, 4]

    def test_truncate_noop_when_before_base(self):
        p = Partition("t", 0)
        p.append(_record(0))
        assert p.truncate_before(0) == 0

    def test_read_before_base_raises(self):
        p = Partition("t", 0)
        for i in range(5):
            p.append(_record(i))
        p.truncate_before(3)
        with pytest.raises(OffsetOutOfRange):
            p.read(1)

    def test_time_retention(self):
        p = Partition("t", 0)
        for i in range(5):
            p.append(_record(i, ts=float(i)))
        dropped = p.enforce_retention(min_timestamp=3.0)
        assert dropped == 3
        assert p.base_offset == 3

    def test_size_retention(self):
        p = Partition("t", 0)
        for i in range(10):
            p.append(_record(i))
        per_record = _record(0).size_bytes
        p.enforce_retention(max_bytes=3 * per_record)
        assert len(p) <= 3
        assert p.size_bytes <= 3 * per_record

    def test_offsets_preserved_after_retention(self):
        p = Partition("t", 0)
        for i in range(5):
            p.append(_record(i))
        p.truncate_before(2)
        assert p.append(_record(5)) == 5


class TestCompaction:
    def test_keeps_latest_per_key(self):
        p = Partition("t", 0)
        p.append(_record(0, key="a"))
        p.append(_record(1, key="b"))
        p.append(_record(2, key="a"))
        removed = p.compact()
        assert removed == 1
        values = [r.value["i"] for _o, r in p.read(0)]
        assert values == [1, 2]

    def test_keyless_records_survive(self):
        p = Partition("t", 0)
        p.append(_record(0))
        p.append(_record(1, key="a"))
        p.append(_record(2, key="a"))
        p.compact()
        assert [r.value["i"] for _o, r in p.read(0)] == [0, 2]

    def test_offsets_stable_across_compaction(self):
        p = Partition("t", 0)
        p.append(_record(0, key="a"))
        p.append(_record(1, key="a"))
        p.compact()
        assert [o for o, _r in p.read(0)] == [1]
        assert p.end_offset == 2

    def test_clone_is_independent(self):
        p = Partition("t", 0)
        p.append(_record(0))
        twin = p.clone()
        p.append(_record(1))
        assert twin.end_offset == 1
        assert p.end_offset == 2
