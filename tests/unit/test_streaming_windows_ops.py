"""Unit tests: window aggregation operator and interval join."""

import pytest

from repro.streaming import (
    Element,
    IntervalJoinOperator,
    SessionWindows,
    TumblingWindows,
    Watermark,
    WindowAggregateOperator,
)
from repro.util.errors import StreamError


def _el(value, ts, key="k"):
    return Element(value=value, timestamp=ts, key=key)


def _results(items):
    return [i.value for i in items if isinstance(i, Element)]


class TestWindowAggregate:
    def test_fires_on_watermark(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "sum")
        op.handle(_el(1.0, 1.0))
        op.handle(_el(2.0, 5.0))
        assert _results(op.handle(Watermark(9.0))) == []
        fired = _results(op.handle(Watermark(10.0)))
        assert len(fired) == 1
        assert fired[0].value == 3.0
        assert fired[0].count == 2
        assert fired[0].window.start == 0.0

    def test_keys_are_independent(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        op.handle(_el(1, 1.0, key="a"))
        op.handle(_el(1, 2.0, key="b"))
        op.handle(_el(1, 3.0, key="a"))
        fired = _results(op.handle(Watermark(10.0)))
        counts = {r.key: r.value for r in fired}
        assert counts == {"a": 2, "b": 1}

    def test_mean_aggregate(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "mean",
                                     value_fn=lambda v: v["x"])
        op.handle(_el({"x": 2.0}, 1.0))
        op.handle(_el({"x": 4.0}, 2.0))
        fired = _results(op.handle(Watermark(10.0)))
        assert fired[0].value == 3.0

    def test_min_max_list(self):
        for agg, expected in (("min", 1.0), ("max", 5.0), ("list", [1.0, 5.0])):
            op = WindowAggregateOperator("w", TumblingWindows(10.0), agg)
            op.handle(_el(1.0, 1.0))
            op.handle(_el(5.0, 2.0))
            assert _results(op.handle(Watermark(10.0)))[0].value == expected

    def test_unknown_aggregate_rejected(self):
        with pytest.raises(StreamError):
            WindowAggregateOperator("w", TumblingWindows(10.0), "median")

    def test_unkeyed_input_rejected(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0))
        with pytest.raises(StreamError):
            op.handle(Element(value=1, timestamp=0.0))

    def test_late_element_dropped_and_counted(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        op.handle(_el(1, 5.0))
        op.handle(Watermark(20.0))
        out = op.handle(_el(1, 5.0))  # late for the [0,10) window
        assert out == []
        assert op.dropped_late == 1

    def test_allowed_lateness_accepts_late(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count",
                                     allowed_lateness=15.0)
        op.handle(_el(1, 5.0))
        op.handle(Watermark(12.0))  # window not fired yet (lateness 15)
        op.handle(_el(1, 6.0))  # still accepted
        fired = _results(op.handle(Watermark(25.0)))
        assert fired[0].value == 2

    def test_result_timestamp_is_window_end(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        op.handle(_el(1, 5.0))
        out = [i for i in op.handle(Watermark(10.0))
               if isinstance(i, Element)]
        assert out[0].timestamp == 10.0

    def test_flush_fires_remaining(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "count")
        op.handle(_el(1, 5.0))
        fired = _results(op.flush())
        assert len(fired) == 1

    def test_session_merging(self):
        op = WindowAggregateOperator("w", SessionWindows(gap=5.0), "count")
        op.handle(_el(1, 0.0))
        op.handle(_el(1, 3.0))  # merges with first (gap < 5)
        op.handle(_el(1, 20.0))  # separate session
        fired = _results(op.handle(Watermark(100.0)))
        assert sorted(r.value for r in fired) == [1, 2]
        merged = next(r for r in fired if r.value == 2)
        assert merged.window.start == 0.0
        assert merged.window.end == 8.0

    def test_snapshot_restore_roundtrip(self):
        op = WindowAggregateOperator("w", TumblingWindows(10.0), "sum")
        op.handle(_el(1.0, 1.0))
        snap = op.snapshot()
        op.handle(_el(100.0, 2.0))
        op.restore(snap)
        fired = _results(op.handle(Watermark(10.0)))
        assert fired[0].value == 1.0


class TestIntervalJoin:
    def _join(self, lower=-5.0, upper=5.0):
        return IntervalJoinOperator("j", lower, upper)

    def test_matches_within_interval(self):
        op = self._join()
        op.process_side("left", _el("L", 10.0))
        out = op.process_side("right", _el("R", 12.0))
        assert len(out) == 1
        joined = out[0].value
        assert (joined.left, joined.right) == ("L", "R")

    def test_no_match_outside_interval(self):
        op = self._join()
        op.process_side("left", _el("L", 10.0))
        assert op.process_side("right", _el("R", 20.0)) == []

    def test_key_isolation(self):
        op = self._join()
        op.process_side("left", _el("L", 10.0, key="a"))
        assert op.process_side("right", _el("R", 10.0, key="b")) == []

    def test_asymmetric_interval(self):
        op = self._join(lower=0.0, upper=2.0)  # right must follow left
        op.process_side("left", _el("L", 10.0))
        assert op.process_side("right", _el("R", 9.0)) == []
        assert len(op.process_side("right", _el("R", 11.0))) == 1

    def test_projection(self):
        op = IntervalJoinOperator("j", -5, 5,
                                  project=lambda l, r: f"{l}+{r}")
        op.process_side("left", _el("a", 0.0))
        out = op.process_side("right", _el("b", 0.0))
        assert out[0].value == "a+b"

    def test_watermark_forwards_minimum(self):
        op = self._join()
        assert op.on_watermark_side("left", Watermark(10.0)) == []
        out = op.on_watermark_side("right", Watermark(7.0))
        assert out == [Watermark(7.0)]

    def test_watermark_prunes_buffers(self):
        op = self._join(lower=-1.0, upper=1.0)
        op.process_side("left", _el("L", 10.0))
        assert op.buffered() == 1
        op.on_watermark_side("left", Watermark(50.0))
        op.on_watermark_side("right", Watermark(50.0))
        assert op.buffered() == 0

    def test_untagged_input_rejected(self):
        op = self._join()
        with pytest.raises(StreamError):
            op.process(_el("x", 0.0))
        with pytest.raises(StreamError):
            op.on_watermark(Watermark(0.0))

    def test_empty_interval_rejected(self):
        with pytest.raises(StreamError):
            IntervalJoinOperator("j", 5.0, -5.0)

    def test_snapshot_restore(self):
        op = self._join()
        op.process_side("left", _el("L", 10.0))
        snap = op.snapshot()
        op.process_side("right", _el("R", 10.0))
        op.restore(snap)
        assert op.buffered() == 1
        assert op.matches == 0
