"""Human mobility traces: truncated Lévy flights.

Gonzalez, Hidalgo & Barabasi (Nature 2008) — the paper's reference [9] —
found human trajectories follow truncated power-law jump lengths with
high regularity (frequent returns to preferred places).  We generate
traces with exactly those two properties: Pareto jump lengths truncated
at ``max_jump_m``, and a per-user set of preferred anchor points
returned to with probability ``return_prob``.  This heavy-tailed,
repetitive structure is what makes mobility re-identifiable (experiment
T5) and what drives realistic POI encounter patterns (F7).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError

__all__ = ["MobilityConfig", "Trace", "generate_trace", "generate_population"]


@dataclass(frozen=True)
class MobilityConfig:
    """Trace generation parameters."""

    area_m: float = 5_000.0  # square side; walks reflect at the borders
    steps: int = 200
    dt_s: float = 60.0
    levy_alpha: float = 1.6  # Pareto tail exponent of jump lengths
    min_jump_m: float = 5.0
    max_jump_m: float = 1_000.0
    num_anchors: int = 4  # preferred places per user
    return_prob: float = 0.3

    def __post_init__(self) -> None:
        if self.area_m <= 0 or self.steps < 1 or self.dt_s <= 0:
            raise ConfigError("area, steps and dt must be positive")
        if self.levy_alpha <= 0:
            raise ConfigError("levy_alpha must be positive")
        if not 0 < self.min_jump_m < self.max_jump_m:
            raise ConfigError("need 0 < min_jump < max_jump")
        if self.num_anchors < 1:
            raise ConfigError("num_anchors must be >= 1")
        if not 0 <= self.return_prob <= 1:
            raise ConfigError("return_prob must be in [0, 1]")


@dataclass(frozen=True)
class Trace:
    """One user's trajectory (arrays of equal length)."""

    user: str
    ts: np.ndarray
    xs: np.ndarray
    ys: np.ndarray

    def __len__(self) -> int:
        return len(self.ts)

    @property
    def displacement_m(self) -> np.ndarray:
        """Per-step jump lengths."""
        return np.hypot(np.diff(self.xs), np.diff(self.ys))


def _truncated_pareto(rng: np.random.Generator, alpha: float, lo: float,
                      hi: float) -> float:
    """Inverse-CDF sample of a Pareto(alpha) truncated to [lo, hi]."""
    u = rng.random()
    lo_a = lo ** -alpha
    hi_a = hi ** -alpha
    return float((lo_a - u * (lo_a - hi_a)) ** (-1.0 / alpha))


def generate_trace(user: str, rng: np.random.Generator,
                   config: MobilityConfig = MobilityConfig()) -> Trace:
    """One truncated-Lévy trace with preferred-place returns."""
    anchors = rng.uniform(0, config.area_m, size=(config.num_anchors, 2))
    position = anchors[0].copy()
    xs = np.empty(config.steps)
    ys = np.empty(config.steps)
    ts = np.arange(config.steps, dtype=float) * config.dt_s
    for i in range(config.steps):
        xs[i], ys[i] = position
        if rng.random() < config.return_prob:
            # Return flight toward a preferred place (arrive exactly —
            # dt is a minute; we model places, not footsteps).
            target = anchors[rng.integers(0, config.num_anchors)]
            position = target + rng.normal(0, config.min_jump_m, size=2)
        else:
            length = _truncated_pareto(rng, config.levy_alpha,
                                       config.min_jump_m, config.max_jump_m)
            angle = rng.uniform(0, 2 * np.pi)
            position = position + length * np.array([np.cos(angle),
                                                     np.sin(angle)])
        # Reflect at the area borders.
        for axis in range(2):
            if position[axis] < 0:
                position[axis] = -position[axis]
            if position[axis] > config.area_m:
                position[axis] = 2 * config.area_m - position[axis]
            position[axis] = float(np.clip(position[axis], 0, config.area_m))
    return Trace(user=user, ts=ts, xs=xs, ys=ys)


def generate_population(num_users: int, rng: np.random.Generator,
                        config: MobilityConfig = MobilityConfig(),
                        ) -> list[Trace]:
    """Independent traces for ``num_users`` users (user-0000, ...)."""
    if num_users < 1:
        raise ConfigError("num_users must be >= 1")
    return [generate_trace(f"user-{i:04d}", rng, config)
            for i in range(num_users)]
