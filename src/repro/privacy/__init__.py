"""Privacy substrate: DP mechanisms with budget accounting, location
privacy (cloaking, geo-indistinguishability), re-identification attack."""

from .exponential import exponential_mechanism, private_top_k
from .location import CloakedRegion, GridCloak, PlanarLaplace
from .mechanisms import (
    BudgetAccountant,
    GaussianMechanism,
    GeometricMechanism,
    LaplaceMechanism,
)
from .reidentify import AttackResult, TraceDatabase, discretize_trace

__all__ = [
    "exponential_mechanism",
    "private_top_k",
    "CloakedRegion",
    "GridCloak",
    "PlanarLaplace",
    "BudgetAccountant",
    "GaussianMechanism",
    "GeometricMechanism",
    "LaplaceMechanism",
    "AttackResult",
    "TraceDatabase",
    "discretize_trace",
]
