"""Unit tests: context store, ARML markup, interpretation engine."""

import numpy as np
import pytest

from repro.context import (
    ArmlDocument,
    ArmlFeature,
    BindingRule,
    ContextStore,
    InterpretationEngine,
    SemanticEntity,
    UserContext,
    parse_arml,
    serialize_arml,
)
from repro.render.scene import Annotation
from repro.util.errors import ContextError, InterpretationError, MarkupError


def _entity(eid="e1", etype="product", pos=(1.0, 2.0, 3.0), name="Thing"):
    return SemanticEntity(entity_id=eid, entity_type=etype,
                          position=np.array(pos), name=name)


class TestContextStore:
    def test_add_and_get(self):
        store = ContextStore()
        store.add_entity(_entity())
        assert store.entity("e1").name == "Thing"

    def test_duplicate_rejected(self):
        store = ContextStore()
        store.add_entity(_entity())
        with pytest.raises(ContextError):
            store.add_entity(_entity())

    def test_entities_by_type(self):
        store = ContextStore()
        store.add_entity(_entity("e1", "product"))
        store.add_entity(_entity("e2", "poi"))
        assert [e.entity_id for e in store.entities("poi")] == ["e2"]

    def test_nearby_sorted_by_distance(self):
        store = ContextStore()
        store.add_entity(_entity("near", pos=(1.0, 0, 0)))
        store.add_entity(_entity("far", pos=(50.0, 0, 0)))
        store.add_entity(_entity("out", pos=(500.0, 0, 0)))
        store.update_user(UserContext(user_id="u",
                                      position=np.zeros(3)))
        nearby = store.nearby("u", radius_m=100.0)
        assert [e.entity_id for e in nearby] == ["near", "far"]

    def test_unknown_user_rejected(self):
        with pytest.raises(ContextError):
            ContextStore().user("ghost")

    def test_distance(self):
        store = ContextStore()
        store.add_entity(_entity("e1", pos=(3.0, 4.0, 0.0)))
        store.update_user(UserContext(user_id="u", position=np.zeros(3)))
        assert store.distance("u", "e1") == pytest.approx(5.0)


class TestArml:
    def _doc(self):
        doc = ArmlDocument()
        doc.add(ArmlFeature(feature_id="cafe-1", name="Blue Bottle",
                            anchor=np.array([12.0, 3.5, 0.0]),
                            label_text="Blue Bottle Cafe", priority=2.0,
                            kind="poi", meta={"category": "cafe"}))
        doc.add(ArmlFeature(feature_id="cafe-2",
                            anchor=np.array([1.0, 1.0, 1.0])))
        return doc

    def test_roundtrip(self):
        doc = self._doc()
        text = serialize_arml(doc)
        parsed = parse_arml(text)
        assert len(parsed) == 2
        feature = parsed.get("cafe-1")
        assert feature.name == "Blue Bottle"
        assert np.allclose(feature.anchor, [12.0, 3.5, 0.0])
        assert feature.priority == 2.0
        assert feature.meta == {"category": "cafe"}

    def test_duplicate_feature_rejected(self):
        doc = self._doc()
        with pytest.raises(MarkupError):
            doc.add(ArmlFeature(feature_id="cafe-1",
                                anchor=np.zeros(3)))

    def test_malformed_xml_rejected(self):
        with pytest.raises(MarkupError):
            parse_arml("<arml><feature id='x'>")

    def test_wrong_root_rejected(self):
        with pytest.raises(MarkupError):
            parse_arml("<kml></kml>")

    def test_missing_anchor_rejected(self):
        with pytest.raises(MarkupError):
            parse_arml('<arml><feature id="x"/></arml>')

    def test_missing_id_rejected(self):
        with pytest.raises(MarkupError):
            parse_arml('<arml><feature><anchor x="1" y="1"/></feature>'
                       "</arml>")

    def test_bad_coordinates_rejected(self):
        with pytest.raises(MarkupError):
            parse_arml('<arml><feature id="x">'
                       '<anchor x="abc" y="1"/></feature></arml>')

    def test_unknown_feature_lookup_rejected(self):
        with pytest.raises(MarkupError):
            self._doc().get("nope")


class TestInterpretationEngine:
    def _engine(self):
        store = ContextStore()
        store.add_entity(_entity("p1", "product", (1, 2, 3), "Coffee"))
        store.add_entity(_entity("p2", "product", (4, 5, 6), "Tea"))
        engine = InterpretationEngine(store)
        engine.register_default("recommendation")
        return engine

    def test_bound_result_becomes_annotation(self):
        engine = self._engine()
        out = engine.interpret([{"tag": "recommendation", "subject": "p1",
                                 "value": "9.5"}])
        assert out.bound == 1
        assert out.coverage == 1.0
        annotation = out.annotations[0]
        assert annotation.annotation_id == "recommendation:p1"
        assert np.allclose(annotation.anchor, [1, 2, 3])
        assert "Coffee" in annotation.text

    def test_untagged_counted(self):
        engine = self._engine()
        out = engine.interpret([{"subject": "p1", "value": 1}])
        assert out.unbound_untagged == 1
        assert out.coverage == 0.0

    def test_unknown_rule_counted(self):
        engine = self._engine()
        out = engine.interpret([{"tag": "mystery", "subject": "p1"}])
        assert out.unbound_no_rule == 1

    def test_unknown_subject_counted(self):
        engine = self._engine()
        out = engine.interpret([{"tag": "recommendation",
                                 "subject": "ghost"}])
        assert out.unbound_unknown_subject == 1

    def test_mixed_batch_coverage(self):
        engine = self._engine()
        out = engine.interpret([
            {"tag": "recommendation", "subject": "p1"},
            {"tag": "recommendation", "subject": "p2"},
            {"subject": "p1"},
            {"tag": "recommendation", "subject": "ghost"},
        ])
        assert out.bound == 2
        assert out.coverage == 0.5

    def test_duplicate_rule_rejected(self):
        engine = self._engine()
        with pytest.raises(InterpretationError):
            engine.register_default("recommendation")

    def test_custom_rule(self):
        store = ContextStore()
        store.add_entity(_entity("p1"))
        engine = InterpretationEngine(store)

        def build(entity, result):
            return Annotation(annotation_id=f"hi:{entity.entity_id}",
                              anchor=entity.position, text="custom",
                              kind="custom")

        engine.register(BindingRule(tag="greet", build=build))
        out = engine.interpret([{"tag": "greet", "subject": "p1"}])
        assert out.annotations[0].kind == "custom"

    def test_to_arml_export(self):
        engine = self._engine()
        out = engine.interpret([{"tag": "recommendation", "subject": "p1",
                                 "value": 1}])
        doc = engine.to_arml(out)
        assert len(doc) == 1
        text = serialize_arml(doc)
        assert parse_arml(text).get("recommendation:p1")
