"""P7: elastic autoscaling — SLO compliance and replay cost vs fixed plans.

The paper's city-scale AR scenarios see diurnal load plus flash crowds
(Sec 4); this bench drives the elastic control plane
(:mod:`repro.streaming.autoscale`) over exactly that trace
(:func:`repro.datagen.workload.diurnal_flash_events`) and compares three
deployments of the same keyed-window job:

- **fixed-p1** — sized for the diurnal base: drowns in the flash crowd
  and blows the latency SLO;
- **autoscaled** — utilization-target policy, rescaling live through
  stop-with-savepoint: meets the SLO, then scales back down;
- **autoscaled-capped + shed** — max parallelism held below flash
  needs, latency-SLO shed tier active: keeps admitted-record latency
  bounded by deterministically shedding at the source.

Everything runs on SimClock, so every number here is deterministic:
latency is sim-time commit lag versus event time, intake capacity is
``source_parallelism * source_batch`` items per simulated second.  A
chaos column re-runs the autoscaled configuration with a crash at every
rescale phase and asserts sink output stays exactly equal — the bench
is also the end-to-end demo for ``tools/check_elasticity.py``, which
gates SLO compliance, rescale liveness under chaos, and bounded replay.

Results merge into ``BENCH_streaming.json`` under the ``"autoscale"``
key.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from repro.chaos import (
    RESCALE_PHASES,
    SITE_RESCALE,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    canonical_sinks,
    reference_job,
)
from repro.datagen import LoadProfile, diurnal_flash_events
from repro.streaming import (
    ScalingSupervisor,
    SchedulePolicy,
    ShedPolicy,
    UtilizationTargetPolicy,
)

import benchlib
from tableprint import print_table

SEED = 3
SPLITS = 8
SOURCE_BATCH = 32
SLO_S = 15.0
PROFILE = LoadProfile(duration_s=120.0, base_rate=8.0, peak_rate=24.0,
                      period_s=120.0, flash_start_s=60.0,
                      flash_duration_s=20.0, flash_rate=120.0, keys=8)


def _events():
    return diurnal_flash_events(PROFILE, seed=SEED)


def _build(events):
    return reference_job(list(events), splits=SPLITS)


def _supervise(events, policy, *, shed_policy=None, injector=None,
               max_p=SPLITS):
    supervisor = ScalingSupervisor(
        _build(events), policy, injector=injector, parallelism=1,
        source_batch=SOURCE_BATCH, slo_s=SLO_S, shed_policy=shed_policy)
    return supervisor.run(), supervisor


def _summarize(label, report, supervisor):
    return {
        "label": label,
        "results": sum(len(v) for v in report.sink_values.values()),
        "slo_compliance": report.slo_compliance,
        "latency_p99_s": report.latency_p99(),
        "rescales": len(report.rescales),
        "max_width": max(report.max_width, 1),
        "final_width": max(supervisor.current.values()),
        "replayed": report.replayed_total,
        "shed": report.shed_total,
        "checkpoints": report.checkpoints,
    }


def run_experiment() -> dict:
    events = _events()
    total = len(events)

    fixed_report, fixed_sup = _supervise(events, SchedulePolicy({}))
    auto_report, auto_sup = _supervise(
        events, UtilizationTargetPolicy(max_parallelism=SPLITS))
    capped_report, capped_sup = _supervise(
        events, UtilizationTargetPolicy(max_parallelism=2),
        shed_policy=ShedPolicy(trigger_wait_s=8.0, release_wait_s=2.0,
                               keep=1, mod=2))

    # the autoscaled run must dominate the fixed baseline on the SLO
    assert auto_report.slo_compliance > fixed_report.slo_compliance
    assert auto_report.rescales, "load trace never triggered a rescale"
    # exactly-once sanity: same committed content, fixed vs autoscaled
    assert canonical_sinks(auto_report.sink_values) \
        == canonical_sinks(fixed_report.sink_values)

    # chaos column: a crash at every rescale phase, output must not fork
    golden = canonical_sinks(auto_report.sink_values)
    chaos_rescales = 0
    chaos_crashes = 0
    for phase in RESCALE_PHASES:
        plan = FaultPlan(specs=(
            FaultSpec("rescale_crash", SITE_RESCALE, at=0, target=phase),
        ), name=f"bench-{phase}")
        report, _sup = _supervise(
            events, UtilizationTargetPolicy(max_parallelism=SPLITS),
            injector=FaultInjector(plan))
        assert canonical_sinks(report.sink_values) == golden, (
            f"crash at rescale phase {phase!r} forked committed output")
        assert report.rescales, f"rescale never completed after {phase}"
        chaos_rescales += len(report.rescales)
        chaos_crashes += report.rescale_crashes

    rows = [
        _summarize("fixed-p1", fixed_report, fixed_sup),
        _summarize("autoscaled", auto_report, auto_sup),
        _summarize("capped+shed", capped_report, capped_sup),
    ]
    return {
        "config": {"events": total, "splits": SPLITS,
                   "source_batch": SOURCE_BATCH, "slo_s": SLO_S,
                   "flash_rate": PROFILE.flash_rate,
                   "base_rate": PROFILE.base_rate, "seed": SEED},
        "autoscale": {
            "deployments": rows,
            "slo_fixed": rows[0]["slo_compliance"],
            "slo_autoscaled": rows[1]["slo_compliance"],
            "slo_capped_shed": rows[2]["slo_compliance"],
            "p99_fixed_s": rows[0]["latency_p99_s"],
            "p99_autoscaled_s": rows[1]["latency_p99_s"],
            "replay_autoscaled": rows[1]["replayed"],
            "shed_capped": rows[2]["shed"],
            "chaos_phases": len(RESCALE_PHASES),
            "chaos_rescales_completed": chaos_rescales,
            "chaos_rescale_crashes": chaos_crashes,
        },
    }


def report(results: dict) -> None:
    rows = results["autoscale"]["deployments"]
    print_table(
        f"P7  elastic autoscaling (diurnal + flash crowd, "
        f"{results['config']['events']} events, "
        f"SLO {results['config']['slo_s']}s)",
        ["deployment", "SLO compliance", "p99 latency s", "rescales",
         "max width", "replayed", "shed"],
        [[r["label"], r["slo_compliance"], r["latency_p99_s"],
          str(r["rescales"]), str(r["max_width"]), str(r["replayed"]),
          str(r["shed"])] for r in rows],
        note="chaos column: crash at each of the "
             f"{results['autoscale']['chaos_phases']} rescale phases "
             "left committed output bit-equal (asserted); gate: "
             "tools/check_elasticity.py")


def bench_p7_autoscale(benchmark):
    """pytest-benchmark entry: same trace, same invariants."""
    results = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    report(results)
    auto = results["autoscale"]
    assert auto["slo_autoscaled"] > auto["slo_fixed"]


def main() -> None:
    args = benchlib.bench_parser(__doc__).parse_args()
    results = run_experiment()
    report(results)
    benchlib.merge_section(args.out, "autoscale", results)


if __name__ == "__main__":
    main()
