"""Property tests: parallel execution ≡ single-instance execution.

The logical -> physical compiler promises that parallelism is a pure
deployment knob: with a key-aligned source (same key -> same split),
sinks at parallelism N are bit-identical to the single-instance run for
every execution mode — only cross-key emission order is unguaranteed,
so comparisons canonicalize by sorting reprs (exact float bits, order
normalized).  Rescaling strengthens it: a checkpoint taken at
parallelism A restored at parallelism B must land on the same sinks as
a run that was never interrupted.

Unkeyed sources round-robin across splits, which reorders same-key
float accumulation; there equality holds only up to float rounding —
the documented weaker contract, pinned by its own test.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.streaming import (
    Element,
    Executor,
    JobBuilder,
    ParallelExecutor,
    TumblingWindows,
)

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}
PARALLELISMS = (1, 2, 4)
N_SPLITS = 4

keyed_rows = st.lists(
    st.tuples(st.integers(min_value=0, max_value=7),               # key
              st.floats(min_value=-50.0, max_value=50.0,           # value
                        allow_nan=False)),
    min_size=1, max_size=60)


def _keyed_elements(rows, jitter=0.0):
    # Timestamps advance monotonically (plus bounded jitter well under
    # the 5.0 lateness) so no element is late in any plan — lateness
    # semantics are pinned separately by the chaos/rescale suites.
    return [Element(value=float(v), timestamp=i * 0.7 + (jitter * (i % 3)),
                    key=k) for i, (k, v) in enumerate(rows)]


def _canon(sink_values):
    return sorted(repr(v) for v in sink_values)


def _assert_parallel_matches(make_job, source_batch=16):
    expected = _canon(Executor(make_job()).run()["out"].values)
    for mode, flags in MODES.items():
        for p in PARALLELISMS:
            executor = ParallelExecutor(make_job(), p, **flags)
            executor.run(source_batch=source_batch)
            got = _canon(executor.sinks["out"].values)
            assert got == expected, (
                f"parallelism {p} ({mode}) diverged from single instance")


class TestKeyAlignedEquivalence:
    @given(keyed_rows, st.integers(min_value=1, max_value=32))
    @settings(max_examples=15, deadline=None)
    def test_windowed_sum(self, rows, source_batch):
        elements = _keyed_elements(rows)

        def make_job():
            builder = JobBuilder("eq-window")
            (builder.source("s", elements, splits=N_SPLITS)
                    .with_watermarks(5.0, emit_every=4)
                    .map(lambda v: v * 2.0, name="scale")
                    .window(TumblingWindows(10.0), "sum", name="win")
                    .sink("out"))
            return builder.build()
        _assert_parallel_matches(make_job, source_batch)

    @given(keyed_rows, st.integers(min_value=1, max_value=32))
    @settings(max_examples=15, deadline=None)
    def test_keyed_reduce(self, rows, source_batch):
        elements = _keyed_elements(rows)

        def make_job():
            builder = JobBuilder("eq-reduce")
            (builder.source("s", elements, splits=N_SPLITS)
                    .filter(lambda v: v > -40.0, name="keep")
                    .reduce(lambda a, b: a + b, name="running")
                    .sink("out"))
            return builder.build()
        _assert_parallel_matches(make_job, source_batch)

    @given(keyed_rows, keyed_rows)
    @settings(max_examples=10, deadline=None)
    def test_interval_join(self, left_rows, right_rows):
        left = _keyed_elements(left_rows)
        right = _keyed_elements(right_rows)

        def make_job():
            builder = JobBuilder("eq-join")
            l = (builder.source("l", left, splits=N_SPLITS)
                        .with_watermarks(5.0, emit_every=4))
            r = (builder.source("r", right, splits=N_SPLITS)
                        .with_watermarks(5.0, emit_every=4))
            l.join(r, -5.0, 5.0,
                   project=lambda a, b: (a, b)).sink("out")
            return builder.build()
        _assert_parallel_matches(make_job)


class TestRescaling:
    def _make_job(self, rows):
        elements = _keyed_elements(rows)
        builder = JobBuilder("rescale")
        # splits pinned so every parallelism shares the rescaling unit
        (builder.source("s", elements, splits=N_SPLITS)
                .with_watermarks(5.0, emit_every=4)
                .map(lambda v: v * 1.5, name="scale")
                .window(TumblingWindows(10.0), "sum", name="win")
                .sink("out"))
        return builder.build()

    @given(keyed_rows)
    @settings(max_examples=10, deadline=None)
    def test_rescale_matches_uninterrupted(self, rows):
        expected = _canon(Executor(self._make_job(rows)).run()["out"].values)
        for old_p, new_p in ((2, 4), (4, 2), (1, 4), (4, 1)):
            donor = ParallelExecutor(self._make_job(rows), old_p)
            donor.run(source_batch=8, max_cycles=2)
            snapshot = donor.checkpoint()
            survivor = ParallelExecutor(self._make_job(rows), new_p)
            survivor.restore(snapshot)
            survivor.run(source_batch=8)
            got = _canon(survivor.sinks["out"].values)
            assert got == expected, (
                f"rescale {old_p}->{new_p} diverged from uninterrupted run")

    def test_same_parallelism_restore_is_exact(self):
        # At unchanged parallelism routing state restores too, so the
        # replay is exact in raw emission order, not just canonically.
        rows = [(i % 5, float(i)) for i in range(50)]
        reference = ParallelExecutor(self._make_job(rows), 4)
        reference.run(source_batch=8)
        expected = [repr(v) for v in reference.sinks["out"].values]
        executor = ParallelExecutor(self._make_job(rows), 4)
        executor.run(source_batch=8, max_cycles=2)
        snapshot = executor.checkpoint()
        executor.run(source_batch=8)       # run ahead, then "crash"
        executor.restore(snapshot)
        executor.run(source_batch=8)
        assert [repr(v) for v in executor.sinks["out"].values] == expected


class TestUnkeyedRoundRobin:
    @given(keyed_rows)
    @settings(max_examples=10, deadline=None)
    def test_equal_up_to_float_rounding(self, rows):
        # Unkeyed elements round-robin across splits; key_by downstream
        # re-keys them, but same-key accumulation order now depends on
        # the split interleave — sums agree only up to last-ulp noise.
        elements = [Element(value={"k": k, "v": float(v)},
                            timestamp=i * 0.7)
                    for i, (k, v) in enumerate(rows)]

        def make_job():
            builder = JobBuilder("rr")
            (builder.source("s", elements, splits=N_SPLITS)
                    .with_watermarks(5.0, emit_every=4)
                    .key_by(lambda v: v["k"])
                    .window(TumblingWindows(10.0), "sum",
                            value_fn=lambda v: v["v"], name="win")
                    .sink("out"))
            return builder.build()

        def rounded(values):
            return sorted((r.key, r.window.start, round(float(r.value), 6),
                           r.count) for r in values)

        expected = rounded(Executor(make_job()).run()["out"].values)
        for p in PARALLELISMS:
            executor = ParallelExecutor(make_job(), p)
            executor.run(source_batch=16)
            assert rounded(executor.sinks["out"].values) == expected, (
                f"parallelism {p} diverged beyond float rounding")
