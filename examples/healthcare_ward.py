"""Healthcare scenario (paper Section 3.3, Figure 8).

A ward of monitored patients: wearable vitals stream through the
pipeline into per-patient anomaly detectors; a deterioration episode
raises a bedside AR alarm with detection lead time; the doctor pulls an
EHR overlay at the bed and then runs a remote consult whose latency
budget is checked against several links.

Run:  python examples/healthcare_ward.py
"""

from repro import ARBigDataPipeline, PipelineConfig
from repro.apps import HealthcareApp
from repro.datagen import Episode, generate_patients, vitals_stream
from repro.util.rng import make_rng


def main() -> None:
    rng = make_rng(37)
    pipeline = ARBigDataPipeline(PipelineConfig(seed=37))
    patients = generate_patients(rng, n=6, episode_rate=0.0,
                                 horizon_s=3600.0)
    # Patient pt-002 will deteriorate: tachycardia from t=1500 s.
    patients[2].episodes.append(Episode(
        vital="heart_rate", onset_s=1500.0, end_s=2700.0,
        magnitude=55.0, ramp_s=120.0))
    app = HealthcareApp(pipeline, patients)

    # -- the ward streams vitals ------------------------------------------
    total_alarms = 0
    for patient in patients:
        samples = vitals_stream(patient, rng, horizon_s=3600.0,
                                period_s=5.0)
        total_alarms += app.ingest_vitals(samples)
    print(f"streamed vitals for {len(patients)} patients "
          f"({4 * 720} samples each); {total_alarms} alarms raised")

    # -- did analytics catch the deterioration, and how fast? --------------
    for outcome in app.detection_outcomes():
        status = (f"detected {outcome.lead_delay_s:.0f}s after onset"
                  if outcome.detected else "MISSED")
        print(f"episode: {outcome.patient_id} {outcome.vital} "
              f"(onset {outcome.onset_s:.0f}s) -> {status}")

    # -- bedside EHR overlay ("virtual viewfinder") -------------------------
    app.publish_ehr_overlay("pt-002")
    session = pipeline.open_session("dr-lee")
    session.sync()
    ids = session.visible_annotation_ids()
    print(f"\nbedside AR content for the doctor: {sorted(ids)[:4]}")

    # -- compound deterioration (CEP) ----------------------------------------
    # Script a second, compound event: tachycardia then hypotension.
    patients[4].episodes.append(Episode(
        vital="heart_rate", onset_s=1000.0, end_s=2600.0,
        magnitude=50.0, ramp_s=60.0))
    patients[4].episodes.append(Episode(
        vital="systolic_bp", onset_s=1400.0, end_s=2600.0,
        magnitude=-40.0, ramp_s=120.0))
    app.ingest_vitals(vitals_stream(patients[4], rng, horizon_s=3600.0,
                                    period_s=5.0))
    matches = app.detect_compound()
    if matches:
        first = min(matches, key=lambda m: m.timestamps[-1])
        print(f"\ncompound pattern (tachy -> hypo within 10 min): "
              f"{first.key} at t={first.timestamps[-1]:.0f}s "
              f"({len(matches)} repeats while it persists)")

    # -- remote consult feasibility -----------------------------------------
    print("\nremote consult (150 ms interactive budget):")
    for link in ("lan", "5g", "wifi", "wan", "lte"):
        stats = app.remote_diagnosis(rng, link=link, frames=200)
        verdict = "OK" if stats.miss_rate < 0.05 else \
            f"misses {stats.miss_rate:.0%}"
        print(f"  {link:5s}: mean rtt {stats.mean_latency_s * 1000:6.1f} "
              f"ms -> {verdict}")

    # -- the virtual operating room ------------------------------------------
    collab = app.collaborative_consult(
        rng, "pt-002", {"onsite": "lan", "specialist": "wan",
                        "resident": "5g"},
        duration_s=900.0, finding_rate_per_s=0.05, sync_period_s=0.5)
    print(f"\nvirtual operating room ({collab.doctors} doctors): "
          f"{collab.findings_published} findings, propagation "
          f"{collab.mean_propagation_s:.2f}s mean / "
          f"{collab.p95_propagation_s:.2f}s p95")


if __name__ == "__main__":
    main()
