"""Semantic entities and the user-context store.

The interpretation challenge (Section 4.2) is that analytics emit
statistics about *identifiers* while AR needs *semantically meaningful,
spatially anchored* content.  A :class:`SemanticEntity` is the bridge:
a typed, positioned thing ("product p17 is a coffee brand on shelf 3 at
(x, y, z)").  The :class:`ContextStore` tracks what surrounds the user
right now, which is the context analytics results get interpreted into.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from ..util.errors import ContextError

__all__ = ["SemanticEntity", "ContextStore", "UserContext"]


@dataclass
class SemanticEntity:
    """A typed, positioned, described thing in the world."""

    entity_id: str
    entity_type: str  # "product", "poi", "patient", "vehicle", ...
    position: np.ndarray  # world (3,)
    name: str = ""
    tags: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entity_id:
            raise ContextError("entity_id must be non-empty")
        self.position = np.asarray(self.position, dtype=float).reshape(3)


@dataclass
class UserContext:
    """The user's current situation."""

    user_id: str
    position: np.ndarray = field(default_factory=lambda: np.zeros(3))
    heading_rad: float = 0.0
    activity: str = "idle"  # "walking", "shopping", "driving", ...
    attributes: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.position = np.asarray(self.position, dtype=float).reshape(3)


class ContextStore:
    """Entities + per-user contexts, with proximity queries."""

    def __init__(self) -> None:
        self._entities: dict[str, SemanticEntity] = {}
        self._users: dict[str, UserContext] = {}

    # -- entities ----------------------------------------------------------

    def add_entity(self, entity: SemanticEntity) -> SemanticEntity:
        if entity.entity_id in self._entities:
            raise ContextError(f"duplicate entity {entity.entity_id!r}")
        self._entities[entity.entity_id] = entity
        return entity

    def entity(self, entity_id: str) -> SemanticEntity:
        try:
            return self._entities[entity_id]
        except KeyError:
            raise ContextError(f"unknown entity {entity_id!r}") from None

    def has_entity(self, entity_id: str) -> bool:
        return entity_id in self._entities

    def entities(self, entity_type: str | None = None) -> list[SemanticEntity]:
        out = list(self._entities.values())
        if entity_type is not None:
            out = [e for e in out if e.entity_type == entity_type]
        return sorted(out, key=lambda e: e.entity_id)

    def __len__(self) -> int:
        return len(self._entities)

    # -- users --------------------------------------------------------------

    def update_user(self, context: UserContext) -> None:
        self._users[context.user_id] = context

    def user(self, user_id: str) -> UserContext:
        try:
            return self._users[user_id]
        except KeyError:
            raise ContextError(f"unknown user {user_id!r}") from None

    # -- queries ------------------------------------------------------------

    def nearby(self, user_id: str, radius_m: float,
               entity_type: str | None = None) -> list[SemanticEntity]:
        """Entities within ``radius_m`` of the user, nearest first."""
        user = self.user(user_id)
        hits = []
        for entity in self.entities(entity_type):
            dist = float(np.linalg.norm(entity.position - user.position))
            if dist <= radius_m:
                hits.append((dist, entity))
        hits.sort(key=lambda pair: (pair[0], pair[1].entity_id))
        return [entity for _d, entity in hits]

    def distance(self, user_id: str, entity_id: str) -> float:
        user = self.user(user_id)
        entity = self.entity(entity_id)
        return float(np.linalg.norm(entity.position - user.position))
