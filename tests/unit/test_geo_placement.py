"""Unit tests: region-affinity placement through the plan compiler —
chain fencing at region boundaries, declared cross-region edges,
inter-region link cost in the modelled makespan."""

import pytest

from repro.chaos import canonical_sinks, fault_free_sinks, reference_job
from repro.simnet import region_topology
from repro.streaming import (
    JobBuilder,
    ParallelExecutor,
    RegionPlacement,
    compile_execution_graph,
    placement_from_topology,
)
from repro.streaming.windows import TumblingWindows
from repro.util.errors import JobGraphError
from repro.util.rng import make_rng


def _events(n: int = 40):
    from repro.streaming.element import Element
    return [Element(value={"k": i % 4, "v": float(i)}, timestamp=float(i))
            for i in range(n)]


def _job(declare: bool = True):
    builder = JobBuilder("geo")
    (builder.source("events", _events())
            .map(lambda v: v, name="prep")
            .key_by(lambda v: v["k"], name="by_key")
            .window(TumblingWindows(10.0), "sum",
                    value_fn=lambda v: v["v"], name="window_sum")
            .sink("out"))
    builder.pin_region("events", "edge-a")
    builder.pin_region("prep", "edge-a")
    builder.pin_region("by_key", "core")
    builder.pin_region("window_sum", "core")
    builder.pin_region("out", "core")
    if declare:
        builder.declare_cross_region("prep", "by_key")
    return builder.build()


class TestRegionPlacement:
    def test_pins_resolved_with_default(self):
        placement = RegionPlacement(regions={"a": "edge"},
                                    default_region="core")
        assert placement.region_of("a") == "edge"
        assert placement.region_of("other") == "core"

    def test_link_cost_symmetric_with_default(self):
        placement = RegionPlacement(
            link_latency_s={frozenset(("a", "b")): 0.004})
        assert placement.link_cost_s("a", "b") == 0.004
        assert placement.link_cost_s("b", "a") == 0.004
        assert placement.link_cost_s("a", "a") == 0.0
        assert placement.link_cost_s("a", "zzz") == \
            placement.default_link_latency_s

    def test_moved_is_immutable_copy(self):
        base = RegionPlacement(regions={"a": "r1"})
        moved = base.moved("a", "r2")
        assert base.region_of("a") == "r1"
        assert moved.region_of("a") == "r2"


class TestCompileWithPlacement:
    def test_chains_never_cross_regions(self):
        job = _job()
        graph = compile_execution_graph(job, 1)
        # prep (edge-a) must not fuse with by_key/window (core)
        for node in graph.nodes.values():
            regions = {graph.node_regions[m] for m in node.members}
            assert len(regions) == 1
        assert graph.node_regions["prep"] == "edge-a"
        assert graph.node_regions["window_sum"] == "core"

    def test_undeclared_cross_region_edge_rejected(self):
        job = _job(declare=False)
        with pytest.raises(JobGraphError, match="never declared"):
            compile_execution_graph(job, 1)

    def test_declared_edge_carries_link_cost(self):
        job = _job()
        placement = RegionPlacement(
            regions=dict(job.regions),
            link_latency_s={frozenset(("edge-a", "core")): 0.05})
        graph = compile_execution_graph(job, 2, placement=placement)
        cross = graph.cross_region_edges()
        assert cross and all(e.link_cost_s == 0.05 for e in cross)
        assert {(e.up, e.down) for e in cross} == {("prep", "by_key")}
        assert "x-region" in graph.describe()

    def test_flat_job_unaffected(self):
        job = reference_job(_events())
        graph = compile_execution_graph(job, 2)
        assert graph.placement is None
        assert graph.node_regions == {}
        assert graph.cross_region_edges() == []

    def test_placement_overrides_job_pins(self):
        job = _job()
        placement = RegionPlacement(regions={**job.regions,
                                             "prep": "core",
                                             "events": "core"})
        graph = compile_execution_graph(job, 1, placement=placement)
        assert graph.node_regions["prep"] == "core"
        assert graph.cross_region_edges() == []

    def test_undeclared_pin_rejected_by_validate(self):
        builder = JobBuilder("bad")
        builder.source("s", _events()).map(lambda v: v,
                                           name="m").sink("out")
        builder.pin_region("ghost", "core")
        with pytest.raises(JobGraphError, match="unknown node"):
            builder.build()

    def test_undeclared_cross_region_declaration_rejected(self):
        builder = JobBuilder("bad")
        builder.source("s", _events()).map(lambda v: v,
                                           name="m").sink("out")
        builder.declare_cross_region("m", "ghost")
        with pytest.raises(JobGraphError, match="does not exist"):
            builder.build()


class TestPlacedExecution:
    def test_placed_run_bit_identical_to_flat(self):
        golden = canonical_sinks(fault_free_sinks(
            lambda: _job(), parallelism=2))
        executor = ParallelExecutor(_job(), 2)
        sinks = executor.run(source_batch=16)
        got = canonical_sinks({n: list(b.values)
                               for n, b in sinks.items()})
        assert got == golden

    def test_cross_region_traffic_accounted(self):
        executor = ParallelExecutor(_job(), 2)
        executor.run(source_batch=16)
        assert executor.cross_region_packets > 0
        assert executor.cross_region_transfer_s > 0.0
        assert executor.modeled_makespan_s >= \
            executor.cross_region_transfer_s / executor.cross_region_packets

    def test_colocated_pays_nothing(self):
        job = _job()
        placement = RegionPlacement(regions={}, default_region="core")
        # placement overrides pins only for nodes it maps; pin everything
        placement = placement.moved_all(
            "core", list(job.sources) + list(job.operators)
            + list(job.sinks))
        executor = ParallelExecutor(job, 2, placement=placement)
        executor.run(source_batch=16)
        assert executor.cross_region_packets == 0
        assert executor.cross_region_transfer_s == 0.0


class TestPlacementFromTopology:
    def test_costs_from_nominal_latency(self):
        topo = region_topology(make_rng(0))
        placement = placement_from_topology(
            topo, {"events": "edge-a", "window_sum": "core"},
            default_region="core")
        best = min(
            topo.nominal_path_latency(a, "core")
            for a in ("edge-a-edge", "edge-a-dev0", "edge-a-dev1"))
        assert placement.link_cost_s("edge-a", "core") == \
            pytest.approx(best)

    def test_unknown_region_rejected(self):
        topo = region_topology(make_rng(0))
        with pytest.raises(JobGraphError):
            placement_from_topology(topo, {"events": "mars"})
