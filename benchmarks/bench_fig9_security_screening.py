"""Experiment F9 (Figure 9: AR-assisted security screening).

Claim under test: "an analyzed personal profile is overlaid on an
agency's field of vision for fast security screening", and "personal
information overlaid on passengers will enable security specialists to
very quickly verify identification and reduce screening traffic".  We
sweep passenger arrival rate and compare manual vs AR-overlay screening
lanes on wait time and throughput, locating the arrival rate at which
manual lanes saturate but AR lanes do not.
"""

import numpy as np

from repro.apps import PublicServicesApp
from repro.core import ARBigDataPipeline, PipelineConfig
from repro.util.rng import make_rng

from tableprint import print_table

ARRIVAL_RATES = [0.1, 0.2, 0.3, 0.5, 0.8]  # passengers per second
PASSENGERS = 250
LANES = 2


def run_experiment():
    rows = []
    for rate in ARRIVAL_RATES:
        rng = make_rng(61)
        app = PublicServicesApp(ARBigDataPipeline(PipelineConfig(seed=61)))
        arrivals = list(np.cumsum(rng.exponential(1.0 / rate,
                                                  size=PASSENGERS)))
        manual = app.run_screening(rng, passengers=PASSENGERS,
                                   arrival_rate_per_s=rate, lanes=LANES,
                                   mode="manual", arrivals=arrivals)
        ar = app.run_screening(rng, passengers=PASSENGERS,
                               arrival_rate_per_s=rate, lanes=LANES,
                               mode="ar", arrivals=arrivals)
        rows.append([rate, manual.mean_wait_s, ar.mean_wait_s,
                     manual.p95_wait_s, ar.p95_wait_s,
                     manual.throughput_per_min, ar.throughput_per_min])
    return rows


def bench_fig9_security_screening(benchmark):
    rows = benchmark.pedantic(run_experiment, rounds=1, iterations=1)
    print_table(
        "F9  Figure 9: screening queues, manual vs AR profile overlay",
        ["arrivals/s", "manual wait s", "ar wait s", "manual p95 s",
         "ar p95 s", "manual tput/min", "ar tput/min"],
        rows,
        note=f"{LANES} lanes, {PASSENGERS} passengers; manual service "
             "~8 s, AR ~2.5 s with 5% manual fallback")
    # AR never waits longer and never moves fewer passengers.
    for row in rows:
        assert row[2] <= row[1] + 1e-9
        assert row[6] >= row[5] - 1e-9
    # Saturation shape: manual lanes (capacity 2/8s = 0.25/s) blow up
    # past 0.25 arrivals/s; AR lanes (capacity ~0.74/s) stay stable
    # until much later.
    mid = rows[2]  # 0.3 arrivals/s
    assert mid[1] > 10 * mid[2], "manual saturated, AR not"
    heavy = rows[-1]  # 0.8 arrivals/s: beyond both capacities
    assert heavy[1] > heavy[2], "AR still degrades more gracefully"
    # Under saturation manual throughput is pinned at service capacity.
    assert rows[-1][5] == __import__("pytest").approx(
        60.0 * LANES / 8.0, rel=0.15)
