"""Public-services application (Section 3.4, Figures 2 and 9).

Three services on the convergence pipeline:

- **Traffic safety** — VANET beacons stream in; per-vehicle threat
  assessment computes time-to-collision with the leader and raises AR
  warnings, including "X-ray" warnings for vehicles hidden behind others.
- **Security screening** (Figure 9) — a queueing model where AR overlays
  of analyzed profiles cut per-passenger verification time; throughput
  and waiting times come from the discrete-event kernel.
- **Civil maintenance** (Figure 2) — excavation progress diff overlays
  and per-role subsurface infrastructure views (electrician vs plumber).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.pipeline import ARBigDataPipeline
from ..datagen.buildings import ExcavationSite
from ..datagen.traffic import Beacon, RingRoadSim
from ..render.scene import Annotation, SceneGraph
from ..simnet.kernel import Simulator
from ..simnet.queueing import ProcessingQueue, QueuedTask
from ..util.errors import PipelineError

__all__ = ["PublicServicesApp", "ThreatAssessment", "ScreeningResult",
           "RoleView"]

BEACONS_TOPIC = "city.vanet"


@dataclass(frozen=True)
class ThreatAssessment:
    """One vehicle's warning state."""

    vehicle_id: str
    leader_id: str
    gap_m: float
    closing_mps: float
    ttc_s: float  # time to collision (inf when opening)

    @property
    def warning(self) -> bool:
        return self.ttc_s < 4.0  # typical forward-collision threshold


@dataclass(frozen=True)
class ScreeningResult:
    """Queueing outcome of one screening configuration."""

    mode: str
    passengers: int
    mean_wait_s: float
    p95_wait_s: float
    throughput_per_min: float
    makespan_s: float


@dataclass(frozen=True)
class RoleView:
    """A per-role filtered infrastructure view (collective intelligence
    of Section 3.4)."""

    role: str
    visible: int
    hidden: int


class PublicServicesApp:
    """City services over the convergence pipeline."""

    def __init__(self, pipeline: ARBigDataPipeline) -> None:
        self.pipeline = pipeline
        pipeline.create_topic(BEACONS_TOPIC, partitions=8)

    # -- traffic safety ------------------------------------------------------

    def ingest_beacons(self, beacons: list[Beacon]) -> int:
        for beacon in beacons:
            self.pipeline.ingest(
                BEACONS_TOPIC,
                {"vehicle": beacon.vehicle_id, "x": beacon.x,
                 "y": beacon.y, "speed": beacon.speed_mps,
                 "heading": beacon.heading_rad},
                key=beacon.vehicle_id, timestamp=beacon.timestamp)
        return len(beacons)

    def assess_threats(self, sim: RingRoadSim) -> list[ThreatAssessment]:
        """Time-to-collision of every vehicle with its leader."""
        states = sim.states()
        n = len(states)
        out = []
        for i, state in enumerate(states):
            lead = states[(i + 1) % n]
            gap = (lead.s_m - state.s_m) % sim.ring
            gap = max(gap - 4.0, 0.01)
            closing = state.speed_mps - lead.speed_mps
            ttc = gap / closing if closing > 1e-6 else float("inf")
            out.append(ThreatAssessment(
                vehicle_id=state.vehicle_id, leader_id=lead.vehicle_id,
                gap_m=float(gap), closing_mps=float(closing),
                ttc_s=float(ttc)))
        return out

    def blind_spot_warnings(self, sim: RingRoadSim,
                            lookahead: int = 3) -> list[str]:
        """Vehicles slowed hard within ``lookahead`` positions ahead —
        invisible behind the intervening cars without VANET "X-ray"."""
        states = sim.states()
        n = len(states)
        warned = []
        for i, state in enumerate(states):
            for j in range(2, lookahead + 1):  # skip the direct leader
                ahead = states[(i + j) % n]
                if ahead.speed_mps < 0.4 * max(state.speed_mps, 0.1):
                    warned.append(state.vehicle_id)
                    break
        return warned

    # -- security screening (Figure 9) -------------------------------------------

    def run_screening(self, rng: np.random.Generator, passengers: int = 200,
                      arrival_rate_per_s: float = 0.5, lanes: int = 2,
                      manual_service_s: float = 8.0,
                      ar_service_s: float = 2.5,
                      ar_exception_rate: float = 0.05,
                      mode: str = "ar",
                      arrivals: list[float] | None = None,
                      ) -> ScreeningResult:
        """Queueing comparison: manual ID checks vs AR-overlaid profiles.

        AR mode: the analyzed profile is already on the agent's view, so
        service is fast except for flagged exceptions that fall back to
        manual inspection.  Pass ``arrivals`` (absolute times) to compare
        modes on an identical passenger sequence.
        """
        if mode not in ("manual", "ar"):
            raise PipelineError(f"unknown screening mode {mode!r}")
        if arrivals is not None and len(arrivals) != passengers:
            raise PipelineError("arrivals must have one time per passenger")
        sim = Simulator()
        queue = ProcessingQueue(sim, cores=lanes, name=f"screen-{mode}")
        t = 0.0
        for i in range(passengers):
            if arrivals is not None:
                t = float(arrivals[i])
            else:
                t += float(rng.exponential(1.0 / arrival_rate_per_s))
            if mode == "manual":
                service = float(rng.gamma(4.0, manual_service_s / 4.0))
            else:
                if rng.random() < ar_exception_rate:
                    service = float(rng.gamma(4.0, manual_service_s / 4.0)) \
                        + ar_service_s
                else:
                    service = float(rng.gamma(2.0, ar_service_s / 2.0))
            sim.schedule_at(t, lambda s=service, k=i: queue.submit(
                QueuedTask(name=f"pax-{k}", service_time=s)))
        sim.run()
        waits = np.array([task.wait_time for task in queue.completed])
        makespan = max(task.finished_at for task in queue.completed)
        return ScreeningResult(
            mode=mode, passengers=passengers,
            mean_wait_s=float(waits.mean()),
            p95_wait_s=float(np.percentile(waits, 95)),
            throughput_per_min=60.0 * passengers / makespan,
            makespan_s=float(makespan))

    # -- civil maintenance (Figure 2) ------------------------------------------------

    def excavation_overlay(self, site: ExcavationSite,
                           tolerance_m: float = 0.3) -> SceneGraph:
        """Annotations over cells that deviate from the design."""
        scene = SceneGraph()
        diff = site.diff()
        for iy in range(site.ny):
            for ix in range(site.nx):
                d = float(diff[iy, ix])
                if abs(d) <= tolerance_m:
                    continue
                kind = "dig" if d > 0 else "overdig"
                scene.add(Annotation(
                    annotation_id=f"exc-{ix}-{iy}",
                    anchor=np.array([ix * site.cell_m, iy * site.cell_m,
                                     -float(site.current[iy, ix])]),
                    text=f"{d:+.1f} m", kind=kind,
                    priority=abs(d),
                    width_px=40.0, height_px=14.0))
        return scene

    def role_views(self, utilities: list[dict]) -> list[RoleView]:
        """Per-role subsurface views: each worker sees their own lines.

        ``utilities`` rows: {"id", "kind" ('electrical'|'water'|'gas'),
        "x", "y", "depth"}; role mapping is kind == role's trade.
        """
        trades = {"electrician": "electrical", "plumber": "water",
                  "gas-fitter": "gas"}
        views = []
        for role, kind in sorted(trades.items()):
            visible = sum(1 for u in utilities if u["kind"] == kind)
            hidden = len(utilities) - visible
            views.append(RoleView(role=role, visible=visible, hidden=hidden))
        return views
