"""Recommendation: the "big data" that drives AR content (Section 3.1).

Two recommenders with one interface, so the F6 experiment can compare
"AR with big data" against "AR without":

- :class:`PopularityRecommender` — the no-big-data baseline: rank items
  by global popularity, the same overlay for every customer.
- :class:`ItemCFRecommender` — item-based collaborative filtering over
  the interaction log (cosine similarity on co-occurrence), personal.

:class:`ContextRanker` re-ranks candidates by the user's *current AR
context* (proximity, gaze, recency) — the interpretation step the paper
says AR must add on top of raw analytics.
"""

from __future__ import annotations

import math
from collections import defaultdict
from dataclasses import dataclass, field

from ..util.errors import ConfigError

__all__ = [
    "Interaction",
    "Recommender",
    "PopularityRecommender",
    "ItemCFRecommender",
    "ContextRanker",
    "precision_at_k",
    "hit_rate",
]


@dataclass(frozen=True)
class Interaction:
    """One user-item event (view, gaze dwell, purchase...)."""

    user: str
    item: str
    weight: float = 1.0
    timestamp: float = 0.0


class Recommender:
    """Common interface: feed interactions, ask for ranked items."""

    def add(self, interaction: Interaction) -> None:
        raise NotImplementedError

    def recommend(self, user: str, k: int = 10,
                  exclude_seen: bool = True) -> list[tuple[str, float]]:
        raise NotImplementedError

    def add_all(self, interactions) -> None:
        for interaction in interactions:
            self.add(interaction)


class PopularityRecommender(Recommender):
    """Global popularity ranking — identical for every user."""

    def __init__(self) -> None:
        self._popularity: dict[str, float] = defaultdict(float)
        self._seen: dict[str, set[str]] = defaultdict(set)

    def add(self, interaction: Interaction) -> None:
        self._popularity[interaction.item] += interaction.weight
        self._seen[interaction.user].add(interaction.item)

    def recommend(self, user: str, k: int = 10,
                  exclude_seen: bool = True) -> list[tuple[str, float]]:
        seen = self._seen.get(user, set()) if exclude_seen else set()
        ranked = sorted(
            ((item, score) for item, score in self._popularity.items()
             if item not in seen),
            key=lambda kv: (-kv[1], kv[0]),
        )
        return ranked[:k]


class ItemCFRecommender(Recommender):
    """Item-based collaborative filtering with cosine similarity.

    Maintains co-occurrence counts incrementally; similarity is computed
    on demand, so the structure supports streaming updates (the paper's
    velocity requirement) without retraining.
    """

    def __init__(self, max_neighbors: int = 50) -> None:
        if max_neighbors < 1:
            raise ConfigError("max_neighbors must be >= 1")
        self.max_neighbors = max_neighbors
        self._user_items: dict[str, dict[str, float]] = defaultdict(dict)
        self._item_users: dict[str, dict[str, float]] = defaultdict(dict)
        self._cooc: dict[str, dict[str, float]] = defaultdict(
            lambda: defaultdict(float))
        self._item_norm_sq: dict[str, float] = defaultdict(float)

    def add(self, interaction: Interaction) -> None:
        user, item, w = interaction.user, interaction.item, interaction.weight
        old = self._user_items[user].get(item, 0.0)
        new = old + w
        # Update co-occurrence with the user's other items incrementally.
        for other_item, other_w in self._user_items[user].items():
            if other_item == item:
                continue
            delta = w * other_w
            self._cooc[item][other_item] += delta
            self._cooc[other_item][item] += delta
        self._item_norm_sq[item] += new ** 2 - old ** 2
        self._user_items[user][item] = new
        self._item_users[item][user] = new

    def similarity(self, a: str, b: str) -> float:
        dot = self._cooc.get(a, {}).get(b, 0.0)
        if dot == 0.0:
            return 0.0
        na = math.sqrt(self._item_norm_sq[a])
        nb = math.sqrt(self._item_norm_sq[b])
        return dot / (na * nb) if na > 0 and nb > 0 else 0.0

    def neighbors(self, item: str) -> list[tuple[str, float]]:
        scored = [(other, self.similarity(item, other))
                  for other in self._cooc.get(item, {})]
        scored = [(i, s) for i, s in scored if s > 0]
        scored.sort(key=lambda kv: (-kv[1], kv[0]))
        return scored[: self.max_neighbors]

    def recommend(self, user: str, k: int = 10,
                  exclude_seen: bool = True) -> list[tuple[str, float]]:
        profile = self._user_items.get(user, {})
        scores: dict[str, float] = defaultdict(float)
        for item, weight in profile.items():
            for neighbor, sim in self.neighbors(item):
                scores[neighbor] += sim * weight
        if exclude_seen:
            for item in profile:
                scores.pop(item, None)
        ranked = sorted(scores.items(), key=lambda kv: (-kv[1], kv[0]))
        return ranked[:k]


@dataclass
class ContextRanker:
    """Re-rank candidates by AR context (Section 4.2's interpretation).

    ``score = base * (1 + proximity_boost + gaze_boost)`` where proximity
    decays with distance and gaze boosts items the user recently dwelled
    on (or their CF neighbors, supplied by the caller).
    """

    proximity_scale: float = 10.0  # metres at which the boost halves
    gaze_boost: float = 1.0
    recency_tau: float = 60.0  # seconds
    _gaze_events: dict[str, list[tuple[str, float]]] = field(
        default_factory=lambda: defaultdict(list))

    def observe_gaze(self, user: str, item: str, timestamp: float) -> None:
        self._gaze_events[user].append((item, timestamp))

    def rank(self, user: str, candidates: list[tuple[str, float]],
             distances: dict[str, float] | None = None,
             now: float = 0.0, k: int | None = None,
             ) -> list[tuple[str, float]]:
        distances = distances or {}
        gaze_weight: dict[str, float] = defaultdict(float)
        for item, ts in self._gaze_events.get(user, ()):
            gaze_weight[item] += math.exp(-max(0.0, now - ts)
                                          / self.recency_tau)
        rescored = []
        for item, base in candidates:
            boost = 0.0
            if item in distances:
                boost += 1.0 / (1.0 + distances[item] / self.proximity_scale)
            boost += self.gaze_boost * gaze_weight.get(item, 0.0)
            rescored.append((item, base * (1.0 + boost)))
        rescored.sort(key=lambda kv: (-kv[1], kv[0]))
        return rescored[:k] if k is not None else rescored


def precision_at_k(recommended: list[str], relevant: set[str], k: int) -> float:
    """Fraction of the top-k that are relevant."""
    if k < 1:
        raise ConfigError("k must be >= 1")
    top = recommended[:k]
    if not top:
        return 0.0
    return sum(1 for item in top if item in relevant) / len(top)


def hit_rate(recommended: list[str], relevant: set[str], k: int) -> float:
    """1.0 if any of the top-k is relevant else 0.0."""
    return 1.0 if any(item in relevant for item in recommended[:k]) else 0.0
