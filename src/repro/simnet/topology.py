"""Cluster topology: named nodes connected by links, with routing.

Built on :mod:`networkx`: nodes carry compute capacity (cycles/s) and a
role (device / edge / cloud / broker), edges carry :class:`LinkSpec`s.
Path latency composes link transfer times along the shortest
(propagation-latency-weighted) route, which is how the offloading and
remote-healthcare experiments price device->edge->cloud hops.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import networkx as nx
import numpy as np

from ..util.errors import ConfigError, NetworkError
from .network import Link, LinkSpec

__all__ = ["NodeSpec", "Topology"]


@dataclass
class NodeSpec:
    """A compute node.

    cpu_hz      effective cycles per second available to tasks
    role        'device' | 'edge' | 'cloud' | 'broker' | arbitrary label
    cores       parallel task slots (queueing model uses this)
    power_w     active power draw, used by the energy model
    region      geographic region this node lives in (failure domain;
                whole-region loss and partitions act on this tag)
    zone        optional sub-region locality tag (an edge zone a mobile
                user can roam between); None for region-wide nodes
    """

    name: str
    cpu_hz: float
    role: str = "device"
    cores: int = 1
    power_w: float = 1.0
    up: bool = field(default=True)
    region: str = "default"
    zone: str | None = None
    #: whether this node relays transit traffic; client endpoints set
    #: False so routes never bounce through somebody's handset
    forwards: bool = True

    def __post_init__(self) -> None:
        if self.cpu_hz <= 0:
            raise ConfigError(f"node {self.name!r}: cpu_hz must be positive")
        if self.cores < 1:
            raise ConfigError(f"node {self.name!r}: cores must be >= 1")

    def compute_time(self, cycles: float) -> float:
        """Seconds to execute ``cycles`` on one core of this node."""
        if cycles < 0:
            raise ConfigError("cycles must be non-negative")
        return cycles / self.cpu_hz


class Topology:
    """Named nodes + links with shortest-path routing and failure state."""

    def __init__(self, rng: np.random.Generator) -> None:
        self._graph = nx.Graph()
        self._rng = rng
        self._links: dict[frozenset[str], Link] = {}
        #: directed (src, dst) pairs whose traffic is blocked — how
        #: asymmetric partitions are expressed over undirected links
        self._blocked: set[tuple[str, str]] = set()

    # -- construction -----------------------------------------------------

    def add_node(self, spec: NodeSpec) -> NodeSpec:
        if spec.name in self._graph:
            raise ConfigError(f"duplicate node {spec.name!r}")
        self._graph.add_node(spec.name, spec=spec)
        return spec

    def add_link(self, a: str, b: str, spec: LinkSpec) -> Link:
        for name in (a, b):
            if name not in self._graph:
                raise ConfigError(f"unknown node {name!r}")
        if a == b:
            raise ConfigError("self-links are not allowed")
        link = Link(spec, self._rng)
        self._graph.add_edge(a, b, spec=spec, weight=spec.latency_s)
        self._links[frozenset((a, b))] = link
        return link

    def replace_link(self, a: str, b: str, spec: LinkSpec) -> Link:
        """Swap the link between ``a`` and ``b`` for one with ``spec``
        (e.g. to degrade the network mid-experiment)."""
        if frozenset((a, b)) not in self._links:
            raise ConfigError(f"no existing link between {a!r} and {b!r}")
        link = Link(spec, self._rng)
        self._graph.edges[a, b]["spec"] = spec
        self._graph.edges[a, b]["weight"] = spec.latency_s
        self._links[frozenset((a, b))] = link
        return link

    # -- lookup -----------------------------------------------------------

    def node(self, name: str) -> NodeSpec:
        try:
            return self._graph.nodes[name]["spec"]
        except KeyError:
            raise NetworkError(f"unknown node {name!r}") from None

    def nodes(self, role: str | None = None,
              region: str | None = None) -> list[NodeSpec]:
        specs = [data["spec"] for _n, data in self._graph.nodes(data=True)]
        if role is not None:
            specs = [s for s in specs if s.role == role]
        if region is not None:
            specs = [s for s in specs if s.region == region]
        return specs

    def regions(self) -> list[str]:
        """Distinct region tags, sorted."""
        return sorted({s.region for s in self.nodes()})

    def region_of(self, name: str) -> str:
        return self.node(name).region

    def link(self, a: str, b: str) -> Link:
        try:
            return self._links[frozenset((a, b))]
        except KeyError:
            raise NetworkError(f"no link between {a!r} and {b!r}") from None

    # -- failures ---------------------------------------------------------

    def fail_node(self, name: str) -> None:
        self.node(name).up = False

    def recover_node(self, name: str) -> None:
        self.node(name).up = True

    def fail_region(self, region: str) -> list[str]:
        """Take every node in ``region`` down (whole-region loss).
        Returns the affected node names."""
        names = self._region_node_names(region)
        for name in names:
            self.fail_node(name)
        return names

    def recover_region(self, region: str) -> list[str]:
        names = self._region_node_names(region)
        for name in names:
            self.recover_node(name)
        return names

    def _region_node_names(self, region: str) -> list[str]:
        names = [s.name for s in self.nodes(region=region)]
        if not names:
            raise NetworkError(f"unknown region {region!r}")
        return names

    # -- directional blocking (partitions) --------------------------------

    def block_direction(self, src: str, dst: str) -> None:
        """Drop all traffic flowing ``src -> dst`` on their link.  The
        reverse direction keeps working — asymmetric partitions."""
        if frozenset((src, dst)) not in self._links:
            raise ConfigError(f"no link between {src!r} and {dst!r}")
        self._blocked.add((src, dst))

    def unblock_direction(self, src: str, dst: str) -> None:
        self._blocked.discard((src, dst))

    def blocked_directions(self) -> set[tuple[str, str]]:
        return set(self._blocked)

    def partition_region(self, region: str,
                         direction: str = "both") -> int:
        """Block links crossing the ``region`` boundary.

        ``direction`` is ``"both"`` (full partition), ``"out"`` (traffic
        leaving the region is dropped; inbound still flows) or ``"in"``
        — the two one-sided modes model asymmetric partitions.  Returns
        the number of directed pairs blocked.
        """
        if direction not in ("both", "out", "in"):
            raise ConfigError(f"bad partition direction {direction!r}")
        members = set(self._region_node_names(region))
        blocked = 0
        for pair in self._links:
            a, b = tuple(pair)
            if (a in members) == (b in members):
                continue  # internal or fully external link
            inside, outside = (a, b) if a in members else (b, a)
            if direction in ("both", "out"):
                self._blocked.add((inside, outside))
                blocked += 1
            if direction in ("both", "in"):
                self._blocked.add((outside, inside))
                blocked += 1
        return blocked

    def heal_region(self, region: str) -> int:
        """Unblock every directed pair touching ``region`` (the inverse
        of :meth:`partition_region`); link state is fully restored."""
        members = set(self._region_node_names(region))
        stale = {(a, b) for a, b in self._blocked
                 if a in members or b in members}
        self._blocked -= stale
        return len(stale)

    def _alive_subgraph(self) -> nx.Graph:
        alive = [n for n, d in self._graph.nodes(data=True) if d["spec"].up]
        return self._graph.subgraph(alive)

    # -- routing ----------------------------------------------------------

    def route(self, src: str, dst: str) -> list[str]:
        """Node names along the minimum-propagation-latency path.

        Non-forwarding nodes (``NodeSpec.forwards=False``, i.e. client
        devices) can be endpoints of a route but not intermediate hops.
        """
        self.node(src), self.node(dst)  # validate both exist
        graph: nx.Graph | nx.DiGraph = self._alive_subgraph()
        if src not in graph or dst not in graph:
            raise NetworkError(f"route {src!r}->{dst!r}: endpoint down")
        transit = [n for n in graph.nodes
                   if n in (src, dst) or self.node(n).forwards]
        graph = graph.subgraph(transit)
        if self._blocked:
            directed = nx.DiGraph()
            directed.add_nodes_from(graph.nodes)
            for a, b, data in graph.edges(data=True):
                if (a, b) not in self._blocked:
                    directed.add_edge(a, b, **data)
                if (b, a) not in self._blocked:
                    directed.add_edge(b, a, **data)
            graph = directed
        try:
            return nx.shortest_path(graph, src, dst, weight="weight")
        except nx.NetworkXNoPath:
            raise NetworkError(f"no path from {src!r} to {dst!r}") from None

    def reachable(self, src: str, dst: str) -> bool:
        """True when a route currently exists (endpoints up, no
        partition in the way)."""
        try:
            self.route(src, dst)
        except NetworkError:
            return False
        return True

    def transfer_time(self, src: str, dst: str, size_bytes: float) -> float:
        """Sampled time to move ``size_bytes`` from src to dst (store-and-
        forward across every hop on the route)."""
        if src == dst:
            return 0.0
        path = self.route(src, dst)
        total = 0.0
        for a, b in zip(path, path[1:]):
            total += self.link(a, b).transfer_time(size_bytes)
        return total

    def rtt(self, src: str, dst: str, request_bytes: float,
            response_bytes: float) -> float:
        """Request/response round trip along the current route."""
        return (self.transfer_time(src, dst, request_bytes)
                + self.transfer_time(dst, src, response_bytes))

    def nominal_path_latency(self, src: str, dst: str) -> float:
        """Deterministic sum of propagation latencies (no payload)."""
        if src == dst:
            return 0.0
        path = self.route(src, dst)
        return sum(self._graph.edges[a, b]["spec"].latency_s
                   for a, b in zip(path, path[1:]))

    def __len__(self) -> int:
        return self._graph.number_of_nodes()
