"""Unit tests: temporally stable label layout (anti-bobbling)."""

import numpy as np

from repro.render import StableLayout, clutter_metrics, declutter_layout
from repro.util.geometry import Rect
from repro.util.rng import make_rng

SCREEN = Rect(0, 0, 640, 480)


def _cluster(rng, n=15, jitter=0.0, base=None):
    """n labels clustered near screen centre, optionally jittered."""
    if base is None:
        base = [(f"l{i:02d}",
                 320.0 + float(rng.uniform(-60, 60)),
                 240.0 + float(rng.uniform(-40, 40)),
                 70.0, 20.0, float(rng.uniform(1, 5)))
                for i in range(n)]
    if jitter == 0.0:
        return base
    return [(aid, x + float(rng.normal(0, jitter)),
             y + float(rng.normal(0, jitter)), w, h, p)
            for aid, x, y, w, h, p in base]


class TestStableLayout:
    def test_first_frame_matches_declutter_quality(self):
        rng = make_rng(0)
        items = _cluster(rng)
        stable = StableLayout(SCREEN)
        placed = stable.layout(items)
        metrics = clutter_metrics(placed, SCREEN)
        assert metrics.overlapping == 0

    def test_static_scene_zero_jitter(self):
        rng = make_rng(1)
        items = _cluster(rng)
        stable = StableLayout(SCREEN)
        first = {l.annotation_id: l.rect for l in stable.layout(items)
                 if not l.dropped}
        for _ in range(5):
            again = {l.annotation_id: l.rect
                     for l in stable.layout(items) if not l.dropped}
            assert again == first
        assert stable.stats.mean_jitter_px == 0.0
        assert stable.stats.moved_fraction == 0.0

    def test_small_anchor_motion_labels_follow_without_reshuffle(self):
        rng = make_rng(2)
        base = _cluster(rng)
        stable = StableLayout(SCREEN)
        stable.layout(base)
        moved = [(aid, x + 3.0, y, w, h, p)
                 for aid, x, y, w, h, p in base]
        placed = stable.layout(moved)
        # Offsets (anchor -> label) are unchanged: zero offset jitter.
        assert stable.stats.mean_jitter_px < 0.5
        metrics = clutter_metrics(placed, SCREEN)
        assert metrics.overlapping == 0

    def test_stable_layout_jitters_less_than_fresh_layout(self):
        rng = make_rng(3)
        base = _cluster(rng, n=18)
        stable = StableLayout(SCREEN)
        stable.layout(base)
        fresh_positions = []
        stable_positions = []
        for frame in range(8):
            frame_rng = make_rng(100 + frame)
            items = _cluster(frame_rng, jitter=2.0, base=base)
            stable_placed = {l.annotation_id: l.rect.center
                             for l in stable.layout(items)
                             if not l.dropped}
            fresh_placed = {l.annotation_id: l.rect.center
                            for l in declutter_layout(items, SCREEN)
                            if not l.dropped}
            stable_positions.append(stable_placed)
            fresh_positions.append(fresh_placed)

        def mean_frame_motion(seq):
            moves = []
            for a, b in zip(seq, seq[1:]):
                for aid in set(a) & set(b):
                    moves.append(np.hypot(b[aid][0] - a[aid][0],
                                          b[aid][1] - a[aid][1]))
            return float(np.mean(moves))

        # Anchor jitter is ~2 px; stable labels move with anchors only,
        # while fresh placement can reshuffle offsets entirely.
        stable_motion = mean_frame_motion(stable_positions)
        fresh_motion = mean_frame_motion(fresh_positions)
        assert stable_motion <= fresh_motion + 0.5

    def test_disappearing_label_frees_its_spot(self):
        rng = make_rng(4)
        base = _cluster(rng, n=6)
        stable = StableLayout(SCREEN)
        stable.layout(base)
        remaining = base[1:]
        placed = stable.layout(remaining)
        assert len(placed) == 5
        # Its offset record is pruned.
        assert base[0][0] not in stable._offsets

    def test_never_overlaps_across_hysteresis_and_fresh(self):
        rng = make_rng(5)
        stable = StableLayout(SCREEN)
        for frame in range(6):
            n = 10 + frame * 3  # growing label population
            items = _cluster(make_rng(200 + frame), n=n)
            placed = [l for l in stable.layout(items) if not l.dropped]
            for i, a in enumerate(placed):
                for b in placed[i + 1:]:
                    assert a.rect.intersection(b.rect) is None
