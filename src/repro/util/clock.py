"""Simulated time.

Every subsystem that needs a notion of "now" receives a :class:`SimClock`
instead of reading the wall clock.  This keeps the whole library
deterministic: tests and benchmarks advance time explicitly, and the
discrete-event kernel in :mod:`repro.simnet` drives the same clock.

Times are floats in **seconds** since simulation start.  Durations are
also seconds; helper constants for milliseconds/microseconds avoid unit
mistakes at call sites.
"""

from __future__ import annotations

from .errors import ClockError

MILLIS = 1e-3
MICROS = 1e-6

__all__ = ["SimClock", "MILLIS", "MICROS"]


class SimClock:
    """A monotonic simulated clock.

    The clock only moves forward.  ``advance`` moves by a delta,
    ``advance_to`` jumps to an absolute time.  Both raise
    :class:`~repro.util.errors.ClockError` on attempts to rewind, which
    almost always indicate a scheduling bug in the caller.
    """

    def __init__(self, start: float = 0.0) -> None:
        if start < 0:
            raise ClockError(f"clock cannot start at negative time {start!r}")
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Move time forward by ``delta`` seconds and return the new now."""
        if delta < 0:
            raise ClockError(f"cannot advance clock by negative delta {delta!r}")
        self._now += delta
        return self._now

    def advance_to(self, when: float) -> float:
        """Jump to absolute time ``when`` (must not be in the past)."""
        if when < self._now:
            raise ClockError(
                f"cannot rewind clock from {self._now!r} to {when!r}"
            )
        self._now = float(when)
        return self._now

    def __repr__(self) -> str:
        return f"SimClock(now={self._now:.6f})"
