"""Computation offloading (CloudRiDAR-style): pipeline models, plan
pricing, placement policies."""

from .battery import DEVICE_CLASSES, Battery, DeviceClass
from .executor import EnergyModel, OffloadPlanner, PlanOutcome
from .policies import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineEnergyAware,
    GreedyLatency,
    OffloadPolicy,
    PolicyDecision,
)
from .tasks import Pipeline, TaskStage, vision_pipeline

__all__ = [
    "Battery",
    "DeviceClass",
    "DEVICE_CLASSES",
    "EnergyModel",
    "OffloadPlanner",
    "PlanOutcome",
    "AlwaysLocal",
    "AlwaysRemote",
    "DeadlineEnergyAware",
    "GreedyLatency",
    "OffloadPolicy",
    "PolicyDecision",
    "Pipeline",
    "TaskStage",
    "vision_pipeline",
]
