"""Computer-vision substrate: camera model, features, geometry, markers,
planar tracking, synthetic scene imaging."""

from .camera import CameraIntrinsics, Pose, look_at
from .flow import FlowResult, HybridTracker, track_points
from .features import (
    BriefDescriptor,
    Keypoint,
    Match,
    detect_corners,
    match_descriptors,
)
from .geometry import (
    RansacResult,
    apply_homography,
    estimate_homography,
    pose_from_homography,
    ransac_homography,
    reprojection_error,
)
from .markers import MarkerSpec, decode_marker, generate_marker
from .synth import PlanarTarget, make_texture, render_plane
from .tracker import PlanarTracker, StageProfile, TrackResult

__all__ = [
    "FlowResult",
    "HybridTracker",
    "track_points",
    "CameraIntrinsics",
    "Pose",
    "look_at",
    "BriefDescriptor",
    "Keypoint",
    "Match",
    "detect_corners",
    "match_descriptors",
    "RansacResult",
    "apply_homography",
    "estimate_homography",
    "pose_from_homography",
    "ransac_homography",
    "reprojection_error",
    "MarkerSpec",
    "decode_marker",
    "generate_marker",
    "PlanarTarget",
    "make_texture",
    "render_plane",
    "PlanarTracker",
    "StageProfile",
    "TrackResult",
]
