"""Consumer-group rebalance under membership churn.

The invariants a rebalance must keep no matter how members come and go:
every partition is owned by exactly one member (full cover, no double
ownership), and committed offsets survive reassignment so no record is
lost and none is delivered to two owners.
"""

import pytest

from repro.eventlog import Consumer, ConsumerGroup, LogCluster, Producer, TopicConfig
from repro.util.errors import LogError

N_PARTITIONS = 7
N_RECORDS = 70


def _cluster(n_partitions=N_PARTITIONS, n_records=N_RECORDS):
    cluster = LogCluster(3)
    cluster.create_topic(TopicConfig("t", partitions=n_partitions,
                                     replication=2))
    producer = Producer(cluster)
    for i in range(n_records):
        producer.send("t", {"i": i}, key=f"k{i}", timestamp=float(i))
    return cluster


def _assignment(group: ConsumerGroup) -> dict[str, list[int]]:
    return {m: group.member(m).partitions for m in group.members()}


def _assert_exact_cover(group: ConsumerGroup) -> None:
    owned = [p for parts in _assignment(group).values() for p in parts]
    assert sorted(owned) == list(range(N_PARTITIONS)), \
        f"partitions not covered exactly once: {_assignment(group)}"


class TestRebalanceCover:
    def test_cover_through_membership_churn(self):
        group = ConsumerGroup(_cluster(), "t", "g")
        group.join("a")
        _assert_exact_cover(group)
        group.join("b")
        _assert_exact_cover(group)
        group.join("c")
        _assert_exact_cover(group)
        group.leave("b")
        _assert_exact_cover(group)
        group.join("d")
        group.join("e")
        _assert_exact_cover(group)
        group.leave("a")
        group.leave("e")
        _assert_exact_cover(group)
        assert group.rebalances == 8

    def test_more_members_than_partitions(self):
        group = ConsumerGroup(_cluster(), "t", "g")
        for m in "abcdefghij":  # 10 members, 7 partitions
            group.join(m)
        _assert_exact_cover(group)
        empty = [m for m, parts in _assignment(group).items() if not parts]
        assert len(empty) == 10 - N_PARTITIONS

    def test_duplicate_join_and_unknown_leave_rejected(self):
        group = ConsumerGroup(_cluster(), "t", "g")
        group.join("a")
        with pytest.raises(LogError):
            group.join("a")
        with pytest.raises(LogError):
            group.leave("ghost")


class TestRebalanceOffsets:
    def test_no_record_lost_or_duplicated_across_churn(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        seen: list[tuple[int, int]] = []  # (partition, offset)

        def drain_some(member_id, n):
            records = group.member(member_id).poll(n)
            seen.extend((r.partition, r.offset) for r in records)
            group.commit(member_id)

        group.join("a")
        drain_some("a", 25)
        group.join("b")  # a's progress must hand over via commits
        drain_some("a", 10)
        drain_some("b", 10)
        group.leave("a")  # b inherits everything a had committed
        drain_some("b", N_RECORDS)
        group.join("c")
        drain_some("b", N_RECORDS)
        drain_some("c", N_RECORDS)

        assert len(seen) == len(set(seen)), "a record was delivered twice"
        expected = {(p, o) for p in range(N_PARTITIONS)
                    for o in range(cluster.end_offset("t", p))}
        assert set(seen) == expected, "a committed record was lost"

    def test_committed_offsets_survive_reassignment(self):
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        group.join("a")
        group.member("a").poll(30)
        group.commit("a")
        committed_before = {p: group.committed(p)
                            for p in range(N_PARTITIONS)
                            if group.committed(p) is not None}
        group.join("b")
        for member in group.members():
            consumer = group.member(member)
            for p in consumer.partitions:
                expected = committed_before.get(
                    p, cluster.base_offset("t", p))
                assert consumer.position(p) == expected

    def test_uncommitted_progress_is_replayed_not_lost(self):
        # Work past the last commit is discarded on rebalance: the new
        # owner restarts from the committed offset (at-least-once).
        cluster = _cluster()
        group = ConsumerGroup(cluster, "t", "g")
        group.join("a")
        group.member("a").poll(20)
        group.commit("a")
        group.member("a").poll(20)  # NOT committed
        group.join("b")
        total = sum(group.member(m).total_lag() for m in group.members())
        committed_total = sum(
            group.committed(p) - cluster.base_offset("t", p)
            for p in range(N_PARTITIONS) if group.committed(p) is not None)
        assert total == N_RECORDS - committed_total
