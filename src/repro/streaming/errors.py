"""Per-operator error policies, dead letters, and restart budgets.

The data plane is a fault domain: AR/big-data ingest is noisy mobile
sensor traffic, and a single malformed record or throwing UDF must not
take down an otherwise healthy job.  This module defines what happens
when an operator fails *on a record*:

- :data:`FAIL` — propagate the exception (the default; exactly the
  pre-policy behaviour, so jobs without declared policies are
  untouched);
- :data:`SKIP` — drop the record and continue;
- :func:`RETRY` — re-invoke the operator on the record up to ``n``
  more times, then escalate to another policy;
- :data:`DEAD_LETTER` — divert the record (with operator, exception and
  fault provenance) to the job's dead-letter queue.

Policies are declared per *logical* operator on the
:class:`~repro.streaming.graph.JobBuilder` and enforced by both
executors and by :class:`~repro.streaming.chain.ChainedOperator` for
fused members, through the two guards here:

- :func:`guard_batch` wraps a batch kernel.  The hot path is a bare
  ``try``: a clean batch pays nothing.  Injected data faults (known
  row offsets from the chaos injector) partition the batch — clean
  slices keep the vectorized kernel, only poisoned rows fall back to
  per-item isolation.  A *genuine* mid-batch exception rolls the
  operator back to a pre-batch snapshot and replays the batch
  per-item, so exactly the poisoned records are isolated.
- :func:`guard_item` wraps one item in per-item execution mode.

Dead-lettered records become :class:`Element`\\ s wrapping a
:class:`DeadLetter` value, delivered to the reserved sink
:data:`DLQ_SINK`.  In coordinated runs that sink is a 2PC
:class:`~repro.streaming.txn_sink.TransactionalSink`, so committed DLQ
contents obey the same exactly-once guarantee as committed output:
under any crash schedule, ``committed sink + committed DLQ`` accounts
for every input record exactly once.

:class:`RestartBudget` is the supervisor-side complement: bounded
restart attempts with seeded backoff on a
:class:`~repro.util.clock.SimClock`, plus flapping detection, so a
permanently-poisoned job escalates to
:class:`~repro.util.errors.RestartsExhausted` instead of crash-looping
forever.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable

from ..util.clock import SimClock
from ..util.errors import (
    BrokerDown,
    ChaosError,
    ConfigError,
    CoordinatorDown,
    DataFaultError,
    OperatorCrash,
    RestartsExhausted,
)
from ..util.rng import make_rng
from .batch import RecordBatch
from .element import Element, StreamItem, Watermark

__all__ = [
    "DEAD_LETTER",
    "DLQ_SINK",
    "FAIL",
    "RETRY",
    "SKIP",
    "DeadLetter",
    "ErrorPolicy",
    "RestartBudget",
    "dead_letter_element",
    "guard_batch",
    "guard_item",
]

#: Reserved name of the dead-letter sink an executor adds when any
#: operator declares a policy that can dead-letter.  User sinks may not
#: take this name.
DLQ_SINK = "__dlq__"

_KINDS = ("fail", "skip", "retry", "dead_letter")
_ESCALATIONS = ("fail", "skip", "dead_letter")

#: Failures the policy machinery must never swallow: injected
#: infrastructure faults and harness errors are the *supervisor's*
#: problem, not a property of the record being processed.
_PASSTHROUGH = (OperatorCrash, CoordinatorDown, BrokerDown, ChaosError,
                KeyboardInterrupt, SystemExit)


@dataclass(frozen=True)
class ErrorPolicy:
    """What an operator does when processing a record raises.

    ``attempts`` is the number of *re*-invocations a ``retry`` policy
    makes after the first failure; once exhausted the ``escalate``
    policy kind applies.  Non-retry kinds ignore both fields.
    """

    kind: str = "fail"
    attempts: int = 0
    escalate: str = "fail"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigError(f"unknown error-policy kind {self.kind!r}; "
                              f"expected one of {_KINDS}")
        if self.escalate not in _ESCALATIONS:
            raise ConfigError(
                f"error policy may escalate to one of {_ESCALATIONS}, "
                f"not {self.escalate!r}")
        if self.kind == "retry" and self.attempts < 1:
            raise ConfigError("RETRY needs attempts >= 1")
        if self.kind != "retry" and self.attempts != 0:
            raise ConfigError(
                f"policy kind {self.kind!r} takes no attempts")

    @property
    def can_dead_letter(self) -> bool:
        """Whether this policy can ever emit to the DLQ."""
        return (self.kind == "dead_letter"
                or (self.kind == "retry"
                    and self.escalate == "dead_letter"))


FAIL = ErrorPolicy("fail")
SKIP = ErrorPolicy("skip")
DEAD_LETTER = ErrorPolicy("dead_letter")


def RETRY(attempts: int, escalate: str = "fail") -> ErrorPolicy:
    """Retry the record ``attempts`` more times, then escalate."""
    return ErrorPolicy("retry", attempts=attempts, escalate=escalate)


@dataclass(frozen=True)
class DeadLetter:
    """One dead-lettered record: the original element plus provenance.

    ``operator`` is the *logical* operator name (subtask suffixes
    stripped) so DLQ contents compare across execution modes and
    parallelisms.  ``error`` is the stringified exception — storing the
    exception object itself would break the bit-identical equality the
    chaos invariants assert on.  ``fault`` names the injected fault
    kind when chaos poisoned the record (``"udf_exception"``,
    ``"corrupt_value"``, ``"corrupt_timestamp"``) and ``"error"`` for
    organic UDF failures.
    """

    value: Any
    timestamp: float
    key: Any
    operator: str
    error_type: str
    error: str
    fault: str = "error"
    attempts: int = 0


def _base_name(name: str) -> str:
    """``"double[1]" -> "double"`` — subtask clone to logical name."""
    if name.endswith("]"):
        cut = name.rfind("[")
        if cut > 0:
            return name[:cut]
    return name


def dead_letter_element(element: Element, op_name: str,
                        exc: BaseException, fault: str = "error",
                        attempts: int = 0) -> Element:
    """Wrap a failed record for delivery to the DLQ sink."""
    letter = DeadLetter(
        value=element.value, timestamp=element.timestamp,
        key=element.key, operator=_base_name(op_name),
        error_type=type(exc).__name__, error=str(exc),
        fault=fault, attempts=attempts)
    return Element(letter, timestamp=element.timestamp, key=element.key)


# -- injected data corruption ------------------------------------------------

#: Oversized payload: a corrupt reading orders of magnitude past any
#: plausible sensor range — UDFs that validate ranges reject it, UDFs
#: that subscript it crash on the type change.
_OVERSIZED = "\xde\xad" * 2048


def corrupt_value(param: str | None) -> Any:
    """The replacement value for a ``corrupt_value`` fault."""
    if param == "nan":
        return float("nan")
    if param == "oversized":
        return _OVERSIZED
    return None  # "wrong_type" (default): value vanishes entirely


def corrupt_timestamp(param: str | None, timestamp: float) -> float:
    """The replacement timestamp for a ``corrupt_timestamp`` fault."""
    if param == "backwards":
        return timestamp - 1.0e6  # ancient: certain late-drop
    return float("nan")  # "garbage" (default)


def apply_corruption(element: Element, kind: str,
                     param: str | None) -> Element:
    """Poison one element in place of the original."""
    if kind == "corrupt_value":
        return element.with_value(corrupt_value(param))
    if kind == "corrupt_timestamp":
        return Element(element.value,
                       corrupt_timestamp(param, element.timestamp),
                       element.key)
    return element  # udf_exception leaves the record intact


# -- enforcement -------------------------------------------------------------


def _capture(op: Any) -> tuple[Any, int, int]:
    return op.snapshot(), op.processed, op.emitted


def _rollback(op: Any, state: tuple[Any, int, int]) -> None:
    snap, processed, emitted = state
    op.restore(snap)
    op.processed = processed
    op.emitted = emitted


def _attempt(op: Any, element: Element,
             handler: Callable[[StreamItem], list[StreamItem]] | None,
             ) -> list[StreamItem]:
    return op.handle(element) if handler is None else handler(element)


def guard_item(op: Any, item: StreamItem, policy: ErrorPolicy,
               dead_letters: list[Element],
               fault: tuple[str, str | None, str] | None = None,
               handler: Callable[[StreamItem], list[StreamItem]] | None
               = None) -> list[StreamItem]:
    """Process one item under ``policy``; the per-item isolation unit.

    ``fault`` is an injected data fault ``(kind, param, detail)`` for
    this record.  ``handler`` overrides ``op.handle`` (joins pass a
    side-aware callable).  Failed attempts roll the operator back to a
    pre-attempt snapshot so a partially-applied ``process`` cannot
    leak state.
    """
    if not isinstance(item, Element):
        # Watermarks/markers carry no data to poison; progress handling
        # failing is an engine bug, not a data fault.
        return _attempt(op, item, handler)
    element = item
    injected = fault is not None
    if injected:
        kind, param, _detail = fault
        element = apply_corruption(element, kind, param)
    if policy.kind == "fail" and not injected:
        return _attempt(op, element, handler)
    state = _capture(op)
    try:
        if injected and kind == "udf_exception":
            raise DataFaultError(fault[2])
        return _attempt(op, element, handler)
    except _PASSTHROUGH:
        raise
    except Exception as exc:
        _rollback(op, state)
        effective = policy.kind
        attempts = 0
        if effective == "retry":
            persistent = injected and kind == "udf_exception"
            while attempts < policy.attempts:
                attempts += 1
                if persistent:
                    continue  # the record itself is poisoned: refire
                state = _capture(op)
                try:
                    return _attempt(op, element, handler)
                except _PASSTHROUGH:
                    raise
                except Exception as again:
                    _rollback(op, state)
                    exc = again
            effective = policy.escalate
        if effective == "skip":
            return []
        if effective == "dead_letter":
            dead_letters.append(dead_letter_element(
                element, op.name, exc,
                fault=fault[0] if injected else "error",
                attempts=attempts))
            return []
        raise


def _poison_segments(items: Iterable[StreamItem],
                     faults: dict[int, tuple[str, str | None, str]],
                     ) -> list[tuple[str, Any]]:
    """Partition a mixed item list at poisoned element offsets.

    Returns ``("run", [items...])`` segments safe for the batch kernel
    interleaved with ``("poison", element, fault)`` single records, in
    stream order — the validity-mask split that keeps clean slices on
    the vectorized path.  Batches are sliced zero-copy at the cuts.
    """
    segments: list[tuple[str, Any]] = []
    run: list[StreamItem] = []
    offset = 0

    def _cut() -> None:
        nonlocal run
        if run:
            segments.append(("run", run))
            run = []

    for item in items:
        if type(item) is RecordBatch:
            n = len(item)
            hits = sorted(k for k in faults if offset <= k < offset + n)
            if not hits:
                run.append(item)
            else:
                pos = 0
                for k in hits:
                    local = k - offset
                    if local > pos:
                        run.append(item.slice(pos, local))
                    _cut()
                    segments.append(
                        ("poison",
                         item.slice(local, local + 1).to_elements()[0],
                         faults[k]))
                    pos = local + 1
                if pos < n:
                    run.append(item.slice(pos, n))
            offset += n
        elif isinstance(item, Element):
            fault = faults.get(offset)
            if fault is None:
                run.append(item)
            else:
                _cut()
                segments.append(("poison", item, fault))
            offset += 1
        else:
            run.append(item)  # watermarks: weight 0 in fault counting
    _cut()
    return segments


def guard_batch(op: Any, items: list[StreamItem], policy: ErrorPolicy,
                process: Callable[[list[StreamItem]], list[StreamItem]],
                dead_letters: list[Element],
                faults: dict[int, tuple[str, str | None, str]] | None
                = None,
                handler: Callable[[StreamItem], list[StreamItem]] | None
                = None) -> list[StreamItem]:
    """Run one operator's batch under its error policy.

    ``faults`` maps element-weighted offsets within ``items`` to
    injected data faults; those rows are processed in per-item
    isolation while every clean slice keeps the batch kernel.  Without
    known faults the batch runs optimistically; a genuine exception
    rolls the operator back to the pre-batch snapshot and replays the
    batch per-item so only the failing records pay the policy.
    """
    if faults:
        out: list[StreamItem] = []
        for segment in _poison_segments(items, faults):
            if segment[0] == "run":
                out.extend(guard_batch(op, segment[1], policy, process,
                                       dead_letters, None, handler))
            else:
                out.extend(guard_item(op, segment[1], policy,
                                      dead_letters, segment[2], handler))
        return out
    if policy.kind == "fail":
        return process(items)
    state = _capture(op)
    try:
        return process(items)
    except _PASSTHROUGH:
        raise
    except Exception:
        _rollback(op, state)
        out = []
        for item in items:
            if type(item) is RecordBatch:
                for element in item.to_elements():
                    out.extend(guard_item(op, element, policy,
                                          dead_letters, None, handler))
            else:
                out.extend(guard_item(op, item, policy, dead_letters,
                                      None, handler))
        return out


# -- bounded restarts --------------------------------------------------------


class RestartBudget:
    """Bounded, backed-off restarts with flapping detection.

    Supervisors (``run_with_recovery`` / ``run_coordinated``) consult
    the budget on every failure: each restart consumes one attempt and
    sleeps a seeded, capped exponential backoff on the simulated clock.
    A restart that follows *no forward progress* (no new checkpoint
    since the previous failure) counts toward the flapping streak;
    ``flap_threshold`` consecutive no-progress restarts escalate to
    :class:`~repro.util.errors.RestartsExhausted` immediately — the
    job is permanently poisoned and further restarts only mask it.
    """

    def __init__(self, max_restarts: int = 16, *,
                 base_delay_s: float = 0.25, multiplier: float = 2.0,
                 max_delay_s: float = 30.0, jitter: float = 0.1,
                 flap_threshold: int = 0, seed: int = 0,
                 clock: SimClock | None = None) -> None:
        if max_restarts < 0:
            raise ConfigError("max_restarts must be >= 0")
        if base_delay_s < 0 or max_delay_s < 0:
            raise ConfigError("delays must be non-negative")
        if multiplier < 1.0:
            raise ConfigError("multiplier must be >= 1")
        if not 0.0 <= jitter < 1.0:
            raise ConfigError("jitter must be in [0, 1)")
        if flap_threshold < 0:
            raise ConfigError("flap_threshold must be >= 0 (0 disables)")
        self.max_restarts = max_restarts
        self.base_delay_s = base_delay_s
        self.multiplier = multiplier
        self.max_delay_s = max_delay_s
        self.jitter = jitter
        self.flap_threshold = flap_threshold
        self.clock = clock
        self._rng = make_rng((int(seed), 0xB0D6E7))
        self.restarts = 0
        self.total_backoff_s = 0.0
        self._flap_streak = 0

    def bind_clock(self, clock: SimClock) -> None:
        """Late-bind the run's clock (supervisors own clock creation)."""
        if self.clock is None:
            self.clock = clock

    def on_failure(self, error: Exception, *,
                   made_progress: bool = True) -> float:
        """Account one failure; returns the backoff slept before the
        restart, or raises ``RestartsExhausted`` refusing it."""
        if made_progress:
            self._flap_streak = 0
        else:
            self._flap_streak += 1
        if self._flap_streak and self.flap_threshold \
                and self._flap_streak >= self.flap_threshold:
            raise RestartsExhausted(
                f"flapping: {self._flap_streak} consecutive restarts "
                f"without a new checkpoint (after {self.restarts} "
                f"restarts, {self.total_backoff_s:.3f}s backoff); "
                f"last error: {error!r}",
                restarts=self.restarts, reason="flapping",
                last_error=error)
        if self.restarts >= self.max_restarts:
            raise RestartsExhausted(
                f"restart budget exhausted: {self.restarts} restarts "
                f"consumed (max {self.max_restarts}, "
                f"{self.total_backoff_s:.3f}s total backoff); "
                f"last error: {error!r}",
                restarts=self.restarts, reason="budget",
                last_error=error)
        delay = min(self.max_delay_s,
                    self.base_delay_s * self.multiplier ** self.restarts)
        if self.jitter:
            delay *= 1.0 + self.jitter * (self._rng.random() * 2.0 - 1.0)
        self.restarts += 1
        self.total_backoff_s += delay
        if self.clock is not None and delay > 0.0:
            self.clock.advance(delay)
        return delay
