"""Chaos recovery on parallel plans: subtask-scoped crashes.

Same invariant as :mod:`test_chaos_recovery`, at parallelism > 1: any
crash schedule — whether it targets a logical operator (any of its
subtasks may fire it) or one pinned subtask like ``window_sum[1]`` —
must recover to sinks identical to the fault-free parallel run.  At
unchanged parallelism the restore is exact (routing state included),
so raw sink order is compared, not a canonicalization.

One fixed-schedule smoke stays unmarked for tier 1; the seeded sweeps
are marked ``chaos``.
"""

import pytest

from repro.chaos import (
    SITE_OPERATOR,
    FaultInjector,
    FaultPlan,
    FaultSpec,
    fault_free_sinks,
    reference_events,
    reference_job,
    reference_operator_names,
    run_with_recovery,
)

PARALLELISM = 4


def _assert_recovers(build, plan, parallelism=PARALLELISM,
                     source_batch=32, **flags):
    golden = fault_free_sinks(build, parallelism=parallelism,
                              source_batch=source_batch, **flags)
    injector = FaultInjector(plan)
    report = run_with_recovery(build(), injector, parallelism=parallelism,
                               source_batch=source_batch, **flags)
    assert report.failures > 0, "the schedule never fired"
    assert report.sink_values == golden, (
        f"parallel recovery diverged (plan={plan.name}, "
        f"parallelism={parallelism})")


class TestParallelCrashSmoke:
    """Unmarked: parallel recovery machinery stays inside tier 1."""

    def test_logical_target_crashes_any_subtask(self):
        events = reference_events(seed=5)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=41,
                      target="double"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=160,
                      target="window_sum"),
        ), name="parallel-smoke")
        _assert_recovers(lambda: reference_job(events), plan)

    def test_pinned_subtask_target(self):
        # "window_sum[1]" names one physical clone; only that subtask
        # can trip the fault.
        events = reference_events(seed=5)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=23,
                      target="window_sum[1]"),
        ), name="pinned-subtask")
        _assert_recovers(lambda: reference_job(events), plan)


@pytest.mark.chaos
class TestParallelCrashSweeps:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_schedules_recover(self, seed):
        events = reference_events(seed=seed % 4)
        # Each subtask sees ~1/parallelism of the stream, so fault
        # offsets must sit well inside a single subtask's progress.
        plan = FaultPlan.random(
            seed + 300, horizon=80,
            operators=reference_operator_names(), crashes=3,
            torn_appends=0, unavailable_windows=0,
            duplicate_deliveries=0, task_timeouts=0,
            name=f"parallel-{seed}")
        _assert_recovers(lambda: reference_job(events), plan)

    @pytest.mark.parametrize("parallelism", [2, 3, 4])
    def test_all_parallelisms_and_modes(self, parallelism):
        events = reference_events(seed=7)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=77,
                      target="window_sum"),
            FaultSpec("operator_crash", SITE_OPERATOR, at=150,
                      target="watermarks"),
        ), name=f"modes-p{parallelism}")
        for batch_mode, chaining in ((False, False), (True, False),
                                     (True, True)):
            _assert_recovers(lambda: reference_job(events), plan,
                             parallelism=parallelism,
                             batch_mode=batch_mode, chaining=chaining)

    @pytest.mark.parametrize("target",
                             ["double[0]", "window_sum[3]", "watermarks[2]"])
    def test_every_pinned_subtask_recovers(self, target):
        events = reference_events(seed=2)
        plan = FaultPlan(specs=(
            FaultSpec("operator_crash", SITE_OPERATOR, at=19,
                      target=target),
        ), name=f"pin-{target}")
        _assert_recovers(lambda: reference_job(events), plan)
