"""Failure injection for topology nodes.

Schedules down/up transitions on the discrete-event kernel so experiments
and tests can exercise recovery paths (event-log leader failover, offload
fallback to local execution, remote-diagnosis link loss).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError
from .kernel import Simulator
from .topology import Topology

__all__ = ["FailureEvent", "FailureInjector", "channel_fault_specs"]


@dataclass(frozen=True)
class FailureEvent:
    node: str
    down_at: float
    up_at: float

    def __post_init__(self) -> None:
        if self.up_at <= self.down_at:
            raise ConfigError("up_at must be after down_at")


def channel_fault_specs(events: list[FailureEvent], *,
                        occurrences_per_second: float = 1.0,
                        kind: str = "channel_partition") -> list:
    """Bridge simnet outages onto the streaming chaos plan.

    Each scheduled :class:`FailureEvent` becomes one channel-fault
    :class:`~repro.chaos.plan.FaultSpec` at the
    ``streaming.channel`` site: the outage interval maps to an
    occurrence window (``occurrences_per_second`` converts simulated
    seconds to channel offers) and the repair time to the hold length,
    so a link that is down for 3 simulated seconds partitions a
    dataflow channel for ~3 delivery cycles.  This is how network-level
    experiments (A5 remote-diagnosis link loss) reuse the coordinated
    checkpoint suite without re-modelling faults twice.
    """
    from ..chaos.plan import SITE_CHANNEL, FaultSpec
    if occurrences_per_second <= 0:
        raise ConfigError("occurrences_per_second must be positive")
    specs = []
    for event in events:
        at = int(event.down_at * occurrences_per_second)
        width = max(1, int((event.up_at - event.down_at)
                           * occurrences_per_second))
        specs.append(FaultSpec(kind, SITE_CHANNEL, at=at, count=width,
                               param=width))
    return sorted(specs, key=lambda s: (s.at, s.count))


class FailureInjector:
    """Applies scripted or random outages to a topology."""

    def __init__(self, sim: Simulator, topology: Topology) -> None:
        self.sim = sim
        self.topology = topology
        self.injected: list[FailureEvent] = []

    def schedule(self, event: FailureEvent) -> None:
        """Schedule one scripted outage."""
        self.topology.node(event.node)  # validate
        self.sim.schedule_at(event.down_at,
                             lambda: self.topology.fail_node(event.node),
                             label=f"fail:{event.node}")
        self.sim.schedule_at(event.up_at,
                             lambda: self.topology.recover_node(event.node),
                             label=f"recover:{event.node}")
        self.injected.append(event)

    def schedule_random(self, node: str, rng: np.random.Generator,
                        horizon: float, mtbf: float, mttr: float) -> int:
        """Poisson outages for ``node`` over [now, now+horizon).

        ``mtbf``/``mttr`` are exponential means for time-between-failures
        and time-to-repair.  Returns the number of outages scheduled.
        """
        if mtbf <= 0 or mttr <= 0 or horizon <= 0:
            raise ConfigError("mtbf, mttr and horizon must be positive")
        t = self.sim.now
        end = t + horizon
        count = 0
        while True:
            t += rng.exponential(mtbf)
            if t >= end:
                break
            repair = rng.exponential(mttr)
            up_at = min(t + repair, end)
            if up_at <= t:
                continue
            self.schedule(FailureEvent(node=node, down_at=t, up_at=up_at))
            t = up_at
            count += 1
        return count
