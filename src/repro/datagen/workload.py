"""Diurnal + flash-crowd load traces for the autoscaling experiments.

The paper's city-scale AR scenarios (Sec 4) see two load regimes at
once: a slow diurnal swell as people move through the day, and sudden
flash crowds when an event pulls thousands of users into one place.  A
fixed-parallelism backend sized for the diurnal base drowns in the
flash; one sized for the flash idles the rest of the day — which is the
argument for the elastic control plane in
:mod:`repro.streaming.autoscale`.

:class:`LoadProfile` describes both regimes analytically;
:func:`diurnal_flash_events` materializes a deterministic event stream
from it — per-second arrival counts from the rounded cumulative rate
integral (so total volume is exact, not a Poisson draw), keyed by the
mobility grid cell each simulated user occupies (truncated-Lévy traces
from :mod:`repro.datagen.mobility`, the paper's reference [9]).  Element
timestamps double as arrival times for the supervisor's simulated-clock
backlog model: the stream *is* the load trace.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..streaming.element import Element
from ..util.errors import ConfigError
from ..util.rng import make_rng
from .mobility import MobilityConfig, generate_population

__all__ = ["LoadProfile", "diurnal_flash_events"]


@dataclass(frozen=True)
class LoadProfile:
    """Analytic arrival-rate curve: diurnal sinusoid + flash crowd.

    The base load swings sinusoidally between ``base_rate`` and
    ``peak_rate`` events/s with period ``period_s`` (a compressed
    "day").  During ``[flash_start_s, flash_start_s + flash_duration_s)``
    a flash crowd adds a plateau of ``flash_rate`` events/s on top.
    """

    duration_s: float = 120.0
    base_rate: float = 8.0
    peak_rate: float = 24.0
    period_s: float = 120.0
    flash_start_s: float = 60.0
    flash_duration_s: float = 20.0
    flash_rate: float = 120.0
    keys: int = 8

    def __post_init__(self) -> None:
        if self.duration_s <= 0 or self.period_s <= 0:
            raise ConfigError("duration_s and period_s must be positive")
        if not 0 < self.base_rate <= self.peak_rate:
            raise ConfigError("need 0 < base_rate <= peak_rate")
        if self.flash_duration_s < 0 or self.flash_rate < 0:
            raise ConfigError("flash duration and rate must be >= 0")
        if self.keys < 1:
            raise ConfigError("keys must be >= 1")

    def rate_at(self, t: float) -> float:
        """Instantaneous arrival rate (events/s) at time ``t``."""
        mid = 0.5 * (self.base_rate + self.peak_rate)
        amp = 0.5 * (self.peak_rate - self.base_rate)
        rate = mid - amp * math.cos(2.0 * math.pi * t / self.period_s)
        if self.flash_start_s <= t \
                < self.flash_start_s + self.flash_duration_s:
            rate += self.flash_rate
        return rate

    def counts_per_second(self) -> np.ndarray:
        """Deterministic integer arrivals per whole second.

        Rounding the *cumulative* rate integral (midpoint rule per
        second) and differencing keeps the total exact: no second
        gains or loses events to independent rounding.
        """
        seconds = int(math.ceil(self.duration_s))
        rates = np.array([self.rate_at(s + 0.5) for s in range(seconds)])
        cumulative = np.round(np.cumsum(rates)).astype(np.int64)
        return np.diff(cumulative, prepend=np.int64(0))

    @property
    def total_events(self) -> int:
        return int(self.counts_per_second().sum())


def diurnal_flash_events(profile: LoadProfile = LoadProfile(),
                         seed: int = 0) -> list[Element]:
    """Materialize a :class:`LoadProfile` as a keyed event stream.

    Each event carries the grid cell of a simulated user drawn from a
    truncated-Lévy mobility population — so key skew follows human
    movement, not a uniform draw — and a unique sequence number (sink
    contents stay distinguishable for exactly-once accounting).
    Timestamps spread uniformly within each second and the stream is
    sorted by time, as an ingest log would be.
    """
    rng = make_rng(seed)
    counts = profile.counts_per_second()
    num_users = max(4, 2 * profile.keys)
    steps = max(2, int(math.ceil(profile.duration_s
                                 / MobilityConfig.dt_s)) + 1)
    config = MobilityConfig(steps=steps)
    traces = generate_population(num_users, rng, config)
    grid = int(math.ceil(math.sqrt(profile.keys)))
    cell_m = config.area_m / grid

    def cell_of(user: int, t: float) -> int:
        trace = traces[user]
        step = min(len(trace) - 1, int(t // config.dt_s))
        gx = min(grid - 1, int(trace.xs[step] // cell_m))
        gy = min(grid - 1, int(trace.ys[step] // cell_m))
        return (gy * grid + gx) % profile.keys

    elements: list[Element] = []
    seq = 0
    for second, count in enumerate(counts):
        if count <= 0:
            continue
        offsets = np.sort(rng.uniform(0.0, 1.0, size=int(count)))
        users = rng.integers(0, num_users, size=int(count))
        for offset, user in zip(offsets, users):
            ts = float(second + offset)
            elements.append(Element(
                value={"k": cell_of(int(user), ts), "v": 1.0, "seq": seq},
                timestamp=ts))
            seq += 1
    return elements
