"""Unit tests: pipeline cuts, plan pricing, offload policies."""

import pytest

from repro.offload import (
    AlwaysLocal,
    AlwaysRemote,
    DeadlineEnergyAware,
    EnergyModel,
    GreedyLatency,
    OffloadPlanner,
    Pipeline,
    TaskStage,
    vision_pipeline,
)
from repro.simnet import LinkSpec, NodeSpec, Topology
from repro.util.errors import OffloadError
from repro.util.rng import make_rng
from repro.vision.tracker import StageProfile


def _pipeline():
    return Pipeline("p", (
        TaskStage("acquire", cycles=1e6, output_bytes=80_000,
                  pinned="device"),
        TaskStage("detect", cycles=20e6, output_bytes=10_000),
        TaskStage("match", cycles=30e6, output_bytes=500),
        TaskStage("render", cycles=4e6, output_bytes=80_000,
                  pinned="device"),
    ))


def _topology(access_latency=0.002, access_bw=25e6):
    topology = Topology(make_rng(0))
    topology.add_node(NodeSpec("device", cpu_hz=2e9, role="device"))
    topology.add_node(NodeSpec("edge", cpu_hz=16e9, role="edge"))
    topology.add_node(NodeSpec("cloud", cpu_hz=64e9, role="cloud"))
    topology.add_link("device", "edge",
                      LinkSpec(latency_s=access_latency,
                               bandwidth_bps=access_bw))
    topology.add_link("edge", "cloud",
                      LinkSpec(latency_s=0.05, bandwidth_bps=12.5e6))
    return topology


class TestPipeline:
    def test_valid_cuts_respect_pinning(self):
        pipeline = _pipeline()
        # acquire pinned leading, render pinned trailing:
        # free region is stages [1, 3); cuts 1, 2, 3 are valid.
        assert pipeline.valid_cuts() == [1, 2, 3]

    def test_remote_cycles_per_cut(self):
        pipeline = _pipeline()
        assert pipeline.remote_cycles(1) == 50e6  # detect + match
        assert pipeline.remote_cycles(2) == 30e6  # match only
        assert pipeline.remote_cycles(3) == 0.0  # all local

    def test_upload_bytes_is_boundary_output(self):
        pipeline = _pipeline()
        assert pipeline.upload_bytes(1) == 80_000  # acquire's frame
        assert pipeline.upload_bytes(2) == 10_000  # detect's features
        assert pipeline.upload_bytes(3) == 0.0

    def test_invalid_cut_rejected(self):
        with pytest.raises(OffloadError):
            _pipeline().remote_cycles(0)

    def test_duplicate_stage_names_rejected(self):
        with pytest.raises(OffloadError):
            Pipeline("p", (TaskStage("a", 1, 1), TaskStage("a", 1, 1)))

    def test_vision_pipeline_from_profile(self):
        profile = StageProfile(pixels=320 * 240, features=200, matches=80,
                               ransac_iterations=50)
        pipeline = vision_pipeline(profile)
        assert [s.name for s in pipeline.stages] == [
            "acquire", "detect", "describe", "match", "estimate_pose",
            "render"]
        assert pipeline.total_cycles > 0
        assert pipeline.upload_bytes(1) == pytest.approx(320 * 240)


class TestPlanner:
    def test_local_plan_has_no_network(self):
        planner = OffloadPlanner(_topology(), "device")
        outcome = planner.price(_pipeline(), 3, "device")
        assert outcome.is_local
        assert outcome.latency_s == pytest.approx(55e6 / 2e9)

    def test_remote_plan_includes_transfer(self):
        planner = OffloadPlanner(_topology(), "device")
        outcome = planner.price(_pipeline(), 1, "edge")
        local_s = 5e6 / 2e9
        remote_s = 50e6 / 16e9
        up = 0.002 + 80_000 / 25e6
        down = 0.002 + 128 / 25e6
        assert outcome.latency_s == pytest.approx(
            local_s + remote_s + up + down)

    def test_cloud_pays_both_hops(self):
        planner = OffloadPlanner(_topology(), "device")
        edge = planner.price(_pipeline(), 2, "edge")
        cloud = planner.price(_pipeline(), 2, "cloud")
        assert cloud.network_s > edge.network_s
        assert cloud.remote_compute_s < edge.remote_compute_s

    def test_energy_model(self):
        energy = EnergyModel(active_w=2.0, radio_w=1.0, idle_w=0.5)
        planner = OffloadPlanner(_topology(), "device", energy=energy)
        outcome = planner.price(_pipeline(), 1, "edge")
        expected = (2.0 * outcome.local_compute_s
                    + 1.0 * outcome.network_s
                    + 0.5 * outcome.remote_compute_s)
        assert outcome.energy_j == pytest.approx(expected)

    def test_plan_enumerates_all(self):
        planner = OffloadPlanner(_topology(), "device")
        outcomes = planner.plan(_pipeline())
        # 1 local + 2 tiers x 2 offloading cuts (cut 3 is local-only).
        assert len(outcomes) == 5

    def test_down_tier_excluded(self):
        topology = _topology()
        topology.fail_node("cloud")
        planner = OffloadPlanner(topology, "device")
        outcomes = planner.plan(_pipeline())
        assert all(o.tier_node != "cloud" for o in outcomes)


class TestPolicies:
    def test_always_local(self):
        planner = OffloadPlanner(_topology(), "device")
        decision = AlwaysLocal().decide(planner, _pipeline())
        assert decision.outcome.is_local

    def test_always_remote(self):
        planner = OffloadPlanner(_topology(), "device")
        decision = AlwaysRemote("cloud").decide(planner, _pipeline())
        assert decision.outcome.tier_node == "cloud"
        assert decision.outcome.cut == 1

    def test_greedy_picks_minimum_latency(self):
        planner = OffloadPlanner(_topology(), "device")
        decision = GreedyLatency().decide(planner, _pipeline())
        all_latencies = [o.latency_s for o in planner.plan(_pipeline())]
        assert decision.outcome.latency_s <= min(all_latencies) + 1e-6

    def test_greedy_prefers_local_on_terrible_network(self):
        topology = _topology(access_latency=0.5, access_bw=1e4)
        planner = OffloadPlanner(topology, "device")
        decision = GreedyLatency().decide(planner, _pipeline())
        assert decision.outcome.is_local

    def test_greedy_prefers_offload_on_fast_network_slow_device(self):
        topology = Topology(make_rng(1))
        topology.add_node(NodeSpec("device", cpu_hz=0.2e9, role="device"))
        topology.add_node(NodeSpec("edge", cpu_hz=64e9, role="edge"))
        topology.add_link("device", "edge",
                          LinkSpec(latency_s=1e-4, bandwidth_bps=1e9))
        planner = OffloadPlanner(topology, "device")
        decision = GreedyLatency().decide(planner, _pipeline())
        assert not decision.outcome.is_local

    def test_deadline_policy_meets_when_feasible(self):
        planner = OffloadPlanner(_topology(), "device")
        policy = DeadlineEnergyAware(deadline_s=0.1)
        decision = policy.decide(planner, _pipeline())
        assert decision.met_deadline
        assert decision.outcome.latency_s <= 0.1

    def test_deadline_policy_picks_lowest_energy_among_meeting(self):
        planner = OffloadPlanner(_topology(), "device")
        policy = DeadlineEnergyAware(deadline_s=10.0)  # everything meets
        decision = policy.decide(planner, _pipeline())
        energies = [o.energy_j for o in planner.plan(_pipeline())]
        assert decision.outcome.energy_j <= min(energies) + 1e-9

    def test_deadline_policy_degrades_to_fastest(self):
        planner = OffloadPlanner(_topology(), "device")
        policy = DeadlineEnergyAware(deadline_s=1e-6)  # impossible
        decision = policy.decide(planner, _pipeline())
        assert decision.met_deadline is False
        latencies = [o.latency_s for o in planner.plan(_pipeline())]
        assert decision.outcome.latency_s <= min(latencies) + 1e-6

    def test_bad_deadline_rejected(self):
        with pytest.raises(OffloadError):
            DeadlineEnergyAware(deadline_s=0.0)
