"""The exponential mechanism and private top-k selection.

Noisy numeric release (Laplace) is wrong for *selection* queries ("which
products are most popular?"): noise on every count still leaks through
the argmax.  The exponential mechanism samples outcomes with probability
proportional to exp(eps * score / (2 * sensitivity)), giving eps-DP
selection; private top-k applies it iteratively (peeling), charging
eps/k per pick under sequential composition.
"""

from __future__ import annotations

import numpy as np

from ..util.errors import PrivacyError
from .mechanisms import BudgetAccountant

__all__ = ["exponential_mechanism", "private_top_k"]


def exponential_mechanism(scores: dict[str, float], epsilon: float,
                          rng: np.random.Generator,
                          sensitivity: float = 1.0,
                          accountant: BudgetAccountant | None = None,
                          ) -> str:
    """Sample one key with probability ~ exp(eps * score / (2 * sens))."""
    if not scores:
        raise PrivacyError("no candidates to select from")
    if epsilon <= 0 or sensitivity <= 0:
        raise PrivacyError("epsilon and sensitivity must be positive")
    if accountant is not None:
        accountant.charge(epsilon)
    keys = sorted(scores)
    values = np.array([scores[k] for k in keys], dtype=float)
    # Stabilize: shift by max before exponentiating.
    logits = epsilon * values / (2.0 * sensitivity)
    logits -= logits.max()
    weights = np.exp(logits)
    weights /= weights.sum()
    return keys[int(rng.choice(len(keys), p=weights))]


def private_top_k(scores: dict[str, float], k: int, epsilon: float,
                  rng: np.random.Generator, sensitivity: float = 1.0,
                  accountant: BudgetAccountant | None = None,
                  ) -> list[str]:
    """eps-DP top-k by iterative exponential-mechanism peeling.

    Each of the k picks spends eps/k, so the whole release is eps-DP by
    sequential composition.
    """
    if k < 1:
        raise PrivacyError("k must be >= 1")
    if k > len(scores):
        raise PrivacyError(f"k={k} exceeds candidate count {len(scores)}")
    remaining = dict(scores)
    picks: list[str] = []
    per_pick = epsilon / k
    for _ in range(k):
        choice = exponential_mechanism(remaining, per_pick, rng,
                                       sensitivity=sensitivity,
                                       accountant=accountant)
        picks.append(choice)
        del remaining[choice]
    return picks
