"""Dataflow operators.

Every operator transforms a stream item into zero or more output items
via :meth:`Operator.process` (for elements) and
:meth:`Operator.on_watermark` (for watermarks).  Watermarks flow through
stateless operators untouched; stateful event-time operators (windows,
joins) react to them.

Batched execution: :meth:`Operator.process_batch` moves a whole channel
batch through an operator in one call.  The default defers to the
per-item ``handle`` loop (so any subclass is automatically correct);
the built-in operators override it with fast paths that segment the
batch at watermarks and process element runs with hoisted locals — or,
when constructed with ``vectorized=True``, with one numpy call over the
whole run.  Batch processing is order-preserving and therefore
bit-identical to per-item execution.

Operators expose ``snapshot``/``restore`` so the checkpoint coordinator
can capture the whole job — stateless operators return ``None``.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable

import numpy as np

from ..util.errors import StreamError
from .batch import RecordBatch
from .element import Element, StreamItem, Watermark
from .state import KeyedState

_MISSING = object()  # sentinel: "no accumulator yet" (None is a value)

__all__ = [
    "Operator",
    "MapOperator",
    "FilterOperator",
    "FlatMapOperator",
    "KeyByOperator",
    "ReduceOperator",
    "TimestampAssigner",
    "WatermarkGenerator",
]


def _segmented(op: "Operator", items: Iterable[StreamItem]) -> list[StreamItem]:
    """Run a batch through ``op`` by splitting it into element runs
    separated by watermarks.  Order (and therefore semantics) is exactly
    that of the per-item loop; ``op._run`` maintains its own counters for
    elements, this helper maintains ``emitted`` for watermark outputs
    (fired windows etc.), mirroring :meth:`Operator.handle`.

    Columnar batches: an operator with a columnar kernel
    (``has_columnar_kernel``) consumes a :class:`RecordBatch` whole via
    ``_run_columnar``; otherwise the batch is decoded into the current
    element run and takes the per-item fallback — the rule documented in
    docs/ARCHITECTURE.md ("Columnar batch representation").
    """
    out: list[StreamItem] = []
    run: list[Element] = []
    columnar = op.has_columnar_kernel
    for item in items:
        if type(item) is RecordBatch:
            if columnar:
                if run:
                    op._run(run, out)
                    run = []
                if len(item):
                    op._run_columnar(item, out)
            else:
                item.extend_elements(run)
        elif isinstance(item, Watermark):
            if run:
                op._run(run, out)
                run = []
            wm_out = op.on_watermark(item)
            op.emitted += sum(1 for o in wm_out if isinstance(o, Element))
            out.extend(wm_out)
        else:
            run.append(item)
    if run:
        op._run(run, out)
    return out


class Operator:
    """Base operator.  Subclasses override ``process``/``on_watermark``."""

    #: Whether the executor may fuse this operator into a chain with its
    #: neighbours.  True only for single-input record-at-a-time operators
    #: without keyed state; keyed operators, joins and custom subclasses
    #: stay unfused (see docs/ARCHITECTURE.md, "Batched execution").
    chainable = False

    #: Whether this operator's input edges must be hash-partitioned by
    #: key in a parallel plan.  True for every operator with *keyed*
    #: state (reduce, window, join, CEP): correctness requires all
    #: elements of one key to reach the same subtask.  Operators that
    #: declare ``requires_shuffle = True`` must also implement the
    #: key-grouped snapshot protocol below (see docs/ARCHITECTURE.md,
    #: "Parallel execution", and CONTRIBUTING.md).
    requires_shuffle = False

    #: Whether this operator implements ``_run_columnar`` and may
    #: consume :class:`RecordBatch` columns whole.  Operators without a
    #: kernel are still correct: :func:`_segmented` (and the default
    #: ``process_batch``) decode batches back to Elements — the per-item
    #: fallback.  New operators must declare one or the other explicitly
    #: (see CONTRIBUTING.md).
    has_columnar_kernel = False

    def __init__(self, name: str) -> None:
        self.name = name
        self.processed = 0
        self.emitted = 0

    def handle(self, item: StreamItem) -> list[StreamItem]:
        """Dispatch an item; maintains counters."""
        if isinstance(item, Watermark):
            out = self.on_watermark(item)
        else:
            self.processed += 1
            out = self.process(item)
        self.emitted += sum(1 for o in out if isinstance(o, Element))
        return out

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        """Process a whole batch, preserving per-item order and counters.

        The default is the per-item loop, so any subclass is correct by
        construction; built-in operators override it (via ``_run``) with
        fast paths.
        """
        out: list[StreamItem] = []
        handle = self.handle
        for item in items:
            if type(item) is RecordBatch:
                for element in item.to_elements():
                    out.extend(handle(element))
            else:
                out.extend(handle(item))
        return out

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        """Fast path for a watermark-free run of elements (see
        :func:`_segmented`).  Implementations must append outputs to
        ``out`` and maintain ``processed``/``emitted`` themselves."""
        raise NotImplementedError

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        """Columnar kernel: consume one non-empty :class:`RecordBatch`
        (only called when ``has_columnar_kernel`` is True).  Must append
        outputs (batches and/or items) to ``out``, maintain counters,
        and produce exactly the per-item results."""
        raise NotImplementedError

    def process(self, element: Element) -> list[StreamItem]:
        raise NotImplementedError

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        """Default: forward the watermark unchanged."""
        return [watermark]

    def flush(self) -> list[StreamItem]:
        """Emit whatever is pending at end-of-stream (default: nothing)."""
        return []

    # -- checkpointing ------------------------------------------------------

    def snapshot(self) -> Any:
        return None

    def restore(self, snapshot: Any) -> None:
        if snapshot is not None:
            raise StreamError(
                f"operator {self.name!r} is stateless but got a snapshot"
            )

    # -- parallel checkpointing (key-grouped state) --------------------------
    #
    # Keyed operators (``requires_shuffle = True``) snapshot their keyed
    # state by key group so a parallel checkpoint can be restored at a
    # different parallelism (key-group ranges are reassigned, never
    # split).  Non-keyed scalar remainders (watermarks, counters) travel
    # via ``scalar_snapshot``.  Non-keyed *stateful* operators instead
    # implement ``restore_rescaled`` with a conservative merge.

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        """Keyed state grouped by key group (keyed operators only)."""
        raise StreamError(
            f"operator {self.name!r} has no keyed state to snapshot by "
            "key group"
        )

    def scalar_snapshot(self) -> Any:
        """Non-keyed remainder of a keyed operator's state."""
        raise StreamError(
            f"operator {self.name!r} has no keyed-state scalar snapshot"
        )

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        """Restore one subtask from key-group blobs plus scalar parts.

        ``groups`` holds exactly this subtask's key-group range.  At
        unchanged parallelism ``scalars`` is the single snapshot this
        subtask wrote; on a rescale it is the *full* list from all old
        subtasks and the operator merges conservatively (monotonic
        quantities regress to the safe bound, counters land on the
        ``primary`` subtask so totals are preserved).
        """
        raise StreamError(
            f"operator {self.name!r} does not support key-grouped restore"
        )

    def restore_rescaled(self, snapshots: list[Any]) -> None:
        """Restore one subtask of a *non-keyed* operator from the old
        subtasks' snapshots after a parallelism change.  Stateless
        operators accept trivially; stateful non-keyed operators must
        override with an explicit merge rule (see WatermarkGenerator).
        """
        live = [s for s in snapshots if s is not None]
        if live:
            raise StreamError(
                f"operator {self.name!r} is stateful but non-keyed and "
                "defines no rescale merge; override restore_rescaled"
            )
        self.restore(None)


class MapOperator(Operator):
    """1-to-1 value transform.

    With ``vectorized=True`` the function receives a numpy array of all
    values in a batch run and must return an equally long array-like of
    results (per-item execution then feeds it length-1 arrays, so both
    executor modes produce identical outputs).
    """

    chainable = True
    has_columnar_kernel = True

    def __init__(self, name: str, fn: Callable[[Any], Any],
                 vectorized: bool = False) -> None:
        super().__init__(name)
        self.fn = fn
        self.vectorized = vectorized

    def process(self, element: Element) -> list[StreamItem]:
        if self.vectorized:
            return [element.with_value(self.fn(np.asarray([element.value]))[0])]
        return [element.with_value(self.fn(element.value))]

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        n = len(batch)
        if self.vectorized:
            values = self.fn(batch.values_array())
            if not isinstance(values, np.ndarray):
                values = list(values)
        else:
            fn = self.fn
            values = [fn(v) for v in batch.values_list()]
        out.append(batch.with_values(values, py_values=False))
        self.processed += n
        self.emitted += n

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        n = len(elements)
        if self.vectorized:
            values = self.fn(np.asarray([e.value for e in elements]))
            out.extend(Element(v, e.timestamp, e.key)
                       for e, v in zip(elements, values))
        else:
            fn = self.fn
            out.extend(Element(fn(e.value), e.timestamp, e.key)
                       for e in elements)
        self.processed += n
        self.emitted += n


class FilterOperator(Operator):
    """Keep elements whose value satisfies the predicate.

    With ``vectorized=True`` the predicate receives a numpy array of
    values and must return a boolean mask of the same length.
    """

    chainable = True
    has_columnar_kernel = True

    def __init__(self, name: str, predicate: Callable[[Any], bool],
                 vectorized: bool = False) -> None:
        super().__init__(name)
        self.predicate = predicate
        self.vectorized = vectorized

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        n = len(batch)
        if self.vectorized:
            mask = np.asarray(self.predicate(batch.values_array()))
            mask = mask.astype(bool, copy=False)
        else:
            predicate = self.predicate
            mask = np.fromiter((bool(predicate(v))
                                for v in batch.values_list()),
                               dtype=bool, count=n)
        kept = int(mask.sum())
        if kept == n:
            out.append(batch)
        elif kept:
            out.append(batch.compress(mask))
        self.processed += n
        self.emitted += kept

    def process(self, element: Element) -> list[StreamItem]:
        if self.vectorized:
            keep = bool(self.predicate(np.asarray([element.value]))[0])
        else:
            keep = bool(self.predicate(element.value))
        return [element] if keep else []

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        if self.vectorized:
            mask = np.asarray(
                self.predicate(np.asarray([e.value for e in elements])))
            kept = [e for e, m in zip(elements, mask) if m]
        else:
            predicate = self.predicate
            kept = [e for e in elements if predicate(e.value)]
        out.extend(kept)
        self.processed += len(elements)
        self.emitted += len(kept)


class FlatMapOperator(Operator):
    """1-to-N value transform."""

    chainable = True

    def __init__(self, name: str, fn: Callable[[Any], Iterable[Any]]) -> None:
        super().__init__(name)
        self.fn = fn

    def process(self, element: Element) -> list[StreamItem]:
        return [element.with_value(v) for v in self.fn(element.value)]

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        fn = self.fn
        append = out.append
        emitted = 0
        for e in elements:
            ts, key = e.timestamp, e.key
            for v in fn(e.value):
                append(Element(v, ts, key))
                emitted += 1
        self.processed += len(elements)
        self.emitted += emitted


class KeyByOperator(Operator):
    """Assign a partitioning key extracted from the value.

    With ``vectorized=True`` the key function receives a numpy array of
    values and must return an equally long array-like of keys.
    """

    chainable = True
    has_columnar_kernel = True

    def __init__(self, name: str, key_fn: Callable[[Any], Any],
                 vectorized: bool = False) -> None:
        super().__init__(name)
        self.key_fn = key_fn
        self.vectorized = vectorized

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        n = len(batch)
        keys = None
        if self.vectorized:
            keys = np.asarray(self.key_fn(batch.values_array()))
            nan_keys = (keys.dtype.kind == "f" and bool(np.isnan(keys).any()))
            if keys.dtype.kind != "O" and not nan_keys:
                # Dictionary-encode in one pass; np.unique's scalars are
                # exactly what the per-item vectorized path produces.
                uniq, inverse = np.unique(keys, return_inverse=True)
                out.append(batch.with_keys(
                    inverse.astype(np.int64, copy=False), list(uniq)))
                self.processed += n
                self.emitted += n
                return
            keys = list(keys)  # unorderable or NaN: encode per key object
        key_fn = self.key_fn
        key_index: dict = {}
        kd: list = []
        codes: list[int] = []
        if keys is None:
            keys = (key_fn(v) for v in batch.values_list())
        for k in keys:
            code = key_index.get(k)
            if code is None and k not in key_index:
                code = len(kd)
                key_index[k] = code
                kd.append(k)
            codes.append(code)
        out.append(batch.with_keys(np.asarray(codes, dtype=np.int64), kd))
        self.processed += n
        self.emitted += n

    def process(self, element: Element) -> list[StreamItem]:
        if self.vectorized:
            return [element.with_key(self.key_fn(np.asarray([element.value]))[0])]
        return [element.with_key(self.key_fn(element.value))]

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        n = len(elements)
        if self.vectorized:
            keys = self.key_fn(np.asarray([e.value for e in elements]))
            out.extend(Element(e.value, e.timestamp, k)
                       for e, k in zip(elements, keys))
        else:
            key_fn = self.key_fn
            out.extend(Element(e.value, e.timestamp, key_fn(e.value))
                       for e in elements)
        self.processed += n
        self.emitted += n


class ReduceOperator(Operator):
    """Keyed running reduce: emits the accumulated value per element.

    Requires keyed input (a ``KeyByOperator`` upstream); raises otherwise
    — silently reducing a keyless stream is a classic correctness trap.

    With ``vectorized=True`` the reduce function must be a numpy ufunc
    (e.g. ``np.add``, ``np.maximum``); batches are then reduced with
    ``ufunc.accumulate`` per key, which is sequential and therefore
    bit-identical to the per-item fold.
    """

    requires_shuffle = True
    has_columnar_kernel = True

    def __init__(self, name: str,
                 reduce_fn: Callable[[Any, Any], Any],
                 vectorized: bool = False) -> None:
        super().__init__(name)
        if vectorized and not hasattr(reduce_fn, "accumulate"):
            raise StreamError(
                f"reduce {name!r}: vectorized=True needs a numpy ufunc "
                "(something with .accumulate)"
            )
        self.reduce_fn = reduce_fn
        self.vectorized = vectorized
        self._state = KeyedState()

    def process(self, element: Element) -> list[StreamItem]:
        if element.key is None:
            raise StreamError(
                f"reduce {self.name!r} requires keyed input; add key_by()"
            )
        if element.key in self._state:
            acc = self.reduce_fn(self._state.get(element.key), element.value)
        else:
            acc = element.value
        self._state.put(element.key, acc)
        return [element.with_value(acc)]

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        n = len(elements)
        if any(e.key is None for e in elements):
            raise StreamError(
                f"reduce {self.name!r} requires keyed input; add key_by()"
            )
        if self.vectorized:
            self._run_vectorized(elements, out)
        else:
            state = self._state
            reduce_fn = self.reduce_fn
            for e in elements:
                key = e.key
                if key in state:
                    acc = reduce_fn(state.get(key), e.value)
                else:
                    acc = e.value
                state.put(key, acc)
                out.append(Element(acc, e.timestamp, key))
        self.processed += n
        self.emitted += n

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        codes = batch.key_codes
        if codes is None or any(k is None for k in batch.key_dict):
            # Unkeyed (or partially unkeyed) input must fail with the
            # same error, at the same point, as per-item execution.
            self._run(batch.to_elements(), out)
            return
        n = len(batch)
        state = self._state
        if not self.vectorized:
            reduce_fn = self.reduce_fn
            kd = batch.key_dict
            get_existing = state.get_existing
            put = state.put
            results: list[Any] = []
            append = results.append
            values = batch.values_list()
            for i, c in enumerate(codes.tolist()):
                key = kd[c]
                v = values[i]
                prev = get_existing(key, _MISSING)
                if prev is not _MISSING:
                    v = reduce_fn(prev, v)
                put(key, v)
                append(v)
            out.append(batch.with_values(results, py_values=False))
        else:
            order = np.argsort(codes, kind="stable")
            sorted_codes = codes[order]
            bounds = np.flatnonzero(np.diff(sorted_codes)) + 1
            values_arr = batch.values_array()
            kd = batch.key_dict
            results = None
            updates = []
            for idx in np.split(order, bounds):
                key = kd[int(codes[idx[0]])]
                values = values_arr[idx]
                prev = state.get_existing(key, _MISSING)
                if prev is not _MISSING:
                    values = np.concatenate((np.asarray([prev]), values))
                    acc = self.reduce_fn.accumulate(values)[1:]
                else:
                    acc = self.reduce_fn.accumulate(values)
                updates.append((key, acc[-1]))
                if results is None:
                    results = np.empty(n, dtype=acc.dtype)
                results[idx] = acc
            state.put_many(updates)
            out.append(batch.with_values(results, py_values=False))
        self.processed += n
        self.emitted += n

    def _run_vectorized(self, elements: list[Element],
                        out: list[StreamItem]) -> None:
        state = self._state
        positions: dict[Any, list[int]] = {}
        for i, e in enumerate(elements):
            positions.setdefault(e.key, []).append(i)
        results: list[Any] = [None] * len(elements)
        for key, idx in positions.items():
            values = np.asarray([elements[i].value for i in idx])
            if key in state:
                # Seed the fold with the checkpointed accumulator; the
                # leading slot is dropped from the emitted prefix.
                values = np.concatenate(
                    (np.asarray([state.get(key)]), values))
                acc = self.reduce_fn.accumulate(values)[1:]
            else:
                acc = self.reduce_fn.accumulate(values)
            state.put(key, acc[-1])
            for i, a in zip(idx, acc):
                results[i] = a
        out.extend(Element(results[i], e.timestamp, e.key)
                   for i, e in enumerate(elements))

    def snapshot(self) -> Any:
        return self._state.snapshot()

    def restore(self, snapshot: Any) -> None:
        self._state.restore(snapshot or {})

    def snapshot_key_groups(self, num_key_groups: int) -> dict[int, Any]:
        return self._state.snapshot_by_group(num_key_groups)

    def scalar_snapshot(self) -> Any:
        return None  # all reduce state is keyed

    def restore_parallel(self, groups: dict[int, Any], scalars: list[Any],
                         primary: bool = True) -> None:
        self._state.restore_groups(groups.values())


class TimestampAssigner(Operator):
    """Rewrite element timestamps from a field of the value."""

    chainable = True
    has_columnar_kernel = True

    def __init__(self, name: str, ts_fn: Callable[[Any], float]) -> None:
        super().__init__(name)
        self.ts_fn = ts_fn

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        n = len(batch)
        ts_fn = self.ts_fn
        timestamps = np.fromiter((float(ts_fn(v))
                                  for v in batch.values_list()),
                                 dtype=np.float64, count=n)
        out.append(batch.with_timestamps(timestamps))
        self.processed += n
        self.emitted += n

    def process(self, element: Element) -> list[StreamItem]:
        return [Element(value=element.value, timestamp=float(
            self.ts_fn(element.value)), key=element.key)]

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        ts_fn = self.ts_fn
        out.extend(Element(e.value, float(ts_fn(e.value)), e.key)
                   for e in elements)
        self.processed += len(elements)
        self.emitted += len(elements)


class WatermarkGenerator(Operator):
    """Bounded-out-of-orderness watermarks.

    Tracks the max event timestamp seen and periodically (every
    ``emit_every`` elements) emits ``Watermark(max_ts - max_lateness)``.
    Incoming watermarks are swallowed — this operator is the authority
    downstream of it.

    Chainable: its state is per-record, not keyed, and the checkpoint
    coordinator snapshots members of a chain individually.
    """

    chainable = True
    has_columnar_kernel = True

    def __init__(self, name: str, max_lateness: float,
                 emit_every: int = 1) -> None:
        super().__init__(name)
        if max_lateness < 0:
            raise StreamError("max_lateness must be non-negative")
        if emit_every < 1:
            raise StreamError("emit_every must be >= 1")
        self.max_lateness = max_lateness
        self.emit_every = emit_every
        self._max_ts = float("-inf")
        self._since_emit = 0
        self._last_wm = float("-inf")

    def process(self, element: Element) -> list[StreamItem]:
        self._max_ts = max(self._max_ts, element.timestamp)
        self._since_emit += 1
        out: list[StreamItem] = [element]
        if self._since_emit >= self.emit_every:
            self._since_emit = 0
            wm = self._max_ts - self.max_lateness
            if wm > self._last_wm:
                self._last_wm = wm
                out.append(Watermark(wm))
        return out

    def process_batch(self, items: Iterable[StreamItem]) -> list[StreamItem]:
        return _segmented(self, items)

    def _run(self, elements: list[Element], out: list[StreamItem]) -> None:
        append = out.append
        max_ts = self._max_ts
        since = self._since_emit
        last_wm = self._last_wm
        emit_every = self.emit_every
        lateness = self.max_lateness
        for e in elements:
            ts = e.timestamp
            if ts > max_ts:
                max_ts = ts
            since += 1
            append(e)
            if since >= emit_every:
                since = 0
                wm = max_ts - lateness
                if wm > last_wm:
                    last_wm = wm
                    append(Watermark(wm))
        self._max_ts = max_ts
        self._since_emit = since
        self._last_wm = last_wm
        self.processed += len(elements)
        self.emitted += len(elements)

    def _run_columnar(self, batch: RecordBatch,
                      out: list[StreamItem]) -> None:
        """Vectorized watermark cadence.

        Candidate positions are where the element counter reaches
        ``emit_every``; candidate watermarks (running-max timestamp minus
        lateness) are nondecreasing, so the per-item "greater than the
        last emitted watermark" test reduces to comparing each candidate
        against its predecessor and the incoming ``_last_wm`` — one
        vector compare instead of a per-element loop.  The batch is
        re-emitted as zero-copy slices around the emitted watermarks.
        """
        n = len(batch)
        since = self._since_emit
        emit_every = self.emit_every
        run_max = np.maximum.accumulate(batch.timestamps)
        if self._max_ts != float("-inf"):
            run_max = np.maximum(run_max, self._max_ts)
        first = emit_every - 1 - since
        cand = np.arange(first, n, emit_every, dtype=np.int64)
        if cand.size:
            cand_wm = run_max[cand] - self.max_lateness
            prev = np.empty_like(cand_wm)
            prev[0] = float("-inf")
            prev[1:] = cand_wm[:-1]
            emit = cand_wm > np.maximum(prev, self._last_wm)
            emit_pos = cand[emit].tolist()
            emit_wms = cand_wm[emit].tolist()
        else:
            emit_pos = []
            emit_wms = []
        start = 0
        for pos, wm in zip(emit_pos, emit_wms):
            out.append(batch if start == 0 and pos + 1 == n
                       else batch.slice(start, pos + 1))
            out.append(Watermark(wm))
            start = pos + 1
        if start < n:
            out.append(batch if start == 0 else batch.slice(start, n))
        self._max_ts = float(run_max[-1])
        if emit_wms:
            self._last_wm = emit_wms[-1]
        self._since_emit = (since + n) % emit_every
        self.processed += n
        self.emitted += n

    def on_watermark(self, watermark: Watermark) -> list[StreamItem]:
        return []  # swallow upstream watermarks; we generate our own

    def flush(self) -> list[StreamItem]:
        """End of stream: release everything with a final watermark."""
        if self._max_ts == float("-inf"):
            return []
        return [Watermark(float("inf"))]

    def snapshot(self) -> Any:
        return {"max_ts": self._max_ts, "last_wm": self._last_wm,
                "since": self._since_emit}

    def restore(self, snapshot: Any) -> None:
        snapshot = snapshot or {}
        self._max_ts = snapshot.get("max_ts", float("-inf"))
        self._last_wm = snapshot.get("last_wm", float("-inf"))
        self._since_emit = snapshot.get("since", 0)

    def restore_rescaled(self, snapshots: list[Any]) -> None:
        """Conservative rescale merge: watermark progress regresses to
        the *minimum* over the old subtasks, so the restored run can
        only emit lower-or-equal watermarks than any old subtask would
        have — it may fire windows later, never drop more data.  (The
        equivalence contract in docs/ARCHITECTURE.md therefore requires
        allowed lateness to cover the regression for bit-identical
        rescaled runs.)"""
        live = [s for s in snapshots if s]
        if not live:
            self.restore(None)
            return
        self._max_ts = min(s.get("max_ts", float("-inf")) for s in live)
        self._last_wm = min(s.get("last_wm", float("-inf")) for s in live)
        self._since_emit = 0
