#!/usr/bin/env python
"""Geo gate: exactly-once geo failover + the edge latency advantage.

Runs the ``geo``-marked chaos suite (zone handoff and whole-region
loss must be exactly-once at parallelism 1/2/4, with failover
replaying strictly less than a full restart), then the
``benchmarks/bench_p9_geo.py`` experiment and asserts:

1. **edge beats all-cloud** — overlay-update p99 latency under edge
   placement beats the all-cloud placement by at least the committed
   advantage floor on the million-session diurnal trace;
2. **bounded failover replay** — the live region-loss run restored
   from a covered checkpoint (replay fraction < 1) with a positive,
   finite MTTR, and the mirror had fully caught up;
3. **determinism** — a second failover run reproduces the same MTTR
   and replay volume.

Exit 0 when all hold, 1 otherwise.

Usage:  python tools/check_geo.py [--skip-tests] [--skip-bench]
"""

from __future__ import annotations

import argparse
import sys

from gatelib import Gate, ensure_paths, run_bench, run_suite

ensure_paths()

from bench_p9_geo import (  # noqa: E402
    MIN_EDGE_P99_ADVANTAGE,
    run_failover_experiment,
)


def check_bench(sessions: int | None) -> bool:
    args = () if sessions is None else ("--sessions", str(sessions))
    print("\n== geo bench (edge vs all-cloud + live failover) ==",
          flush=True)
    merged = run_bench("bench_p9_geo.py", *args)
    if merged is None:
        print("  bench crashed")
        return False
    geo = merged["geo"]
    ok = True
    advantage = geo["p99_edge_advantage"]
    good = advantage >= MIN_EDGE_P99_ADVANTAGE
    ok &= good
    print(f"  overlay p99: edge {geo['edge_p99_ms']:.1f} ms vs cloud "
          f"{geo['cloud_p99_ms']:.1f} ms — {advantage:.1f}x "
          f"(floor {MIN_EDGE_P99_ADVANTAGE:.1f}x)  "
          f"{'ok' if good else 'BELOW FLOOR'}")
    bounded = (0 <= geo["failover_replay_fraction"] < 1.0
               and geo["failover_mttr_s"] > 0.0
               and geo["failover_mirror_pumped"]
               == geo["failover_records"])
    ok &= bounded
    print(f"  failover: mttr={geo['failover_mttr_s']:.2f} s "
          f"replayed={geo['failover_replayed']}/"
          f"{geo['failover_full_restart_equiv']} "
          f"mirror_pumped={geo['failover_mirror_pumped']}  "
          f"{'ok' if bounded else 'UNBOUNDED'}")
    return ok


def check_determinism() -> bool:
    print("\n== determinism (live failover, second run) ==", flush=True)
    first = run_failover_experiment()
    second = run_failover_experiment()
    same = first == second
    print(f"  mttr={first['mttr_s']:.2f} s "
          f"replayed={first['replayed']}  "
          f"{'MATCH' if same else 'DIFFER'}")
    return same


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--sessions", type=int, default=None,
                        help="diurnal trace size (default: the bench's "
                             "1M reference)")
    parser.add_argument("--skip-tests", action="store_true",
                        help="skip the geo-marked pytest suite")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the diurnal latency benchmark")
    args = parser.parse_args()

    gate = Gate("check_geo")
    if not args.skip_tests and not run_suite("geo test suite", "geo"):
        return gate.fail("geo suite")
    if not args.skip_bench and not check_bench(args.sessions):
        return gate.fail("edge advantage or failover bound")
    if not check_determinism():
        return gate.fail("failover not reproducible")
    return gate.ok()


if __name__ == "__main__":
    sys.exit(main())
