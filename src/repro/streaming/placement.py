"""Region-affinity placement for physical plans.

A :class:`RegionPlacement` assigns every logical node (source, operator,
sink) of a job to a *region* and prices the links between regions.  The
compiler (:func:`~repro.streaming.execution.compile_execution_graph`)
threads it through lowering:

- operators in different regions never fuse into one chain (a chain is
  a single locality domain);
- every physical edge whose endpoints land in different regions is
  marked ``cross_region`` and carries the inter-region link cost, which
  the executor folds into the modelled makespan per delivered packet;
- a cross-region edge must have been **declared** on the job graph
  (:meth:`~repro.streaming.graph.JobBuilder.declare_cross_region`) —
  placement never silently turns a local edge into a WAN hop
  (see CONTRIBUTING.md).

Placements are data, not topology: build one by hand for tests, or
derive one from a live :class:`~repro.simnet.topology.Topology` with
:func:`placement_from_topology` so link costs come from the same
latency model the offload experiments price.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Mapping

from ..util.errors import JobGraphError, NetworkError

__all__ = ["RegionPlacement", "placement_from_topology"]


@dataclass(frozen=True)
class RegionPlacement:
    """Logical node -> region assignment plus inter-region link costs.

    ``regions`` maps logical node names to region tags; unmapped nodes
    land in ``default_region``.  ``link_latency_s`` prices one-way
    latency between region pairs (order-insensitive); an unpriced pair
    costs ``default_link_latency_s``.
    """

    regions: Mapping[str, str] = field(default_factory=dict)
    default_region: str = "core"
    link_latency_s: Mapping[frozenset[str], float] = \
        field(default_factory=dict)
    default_link_latency_s: float = 0.05  # WAN-ish

    def __post_init__(self) -> None:
        for pair, cost in self.link_latency_s.items():
            if len(pair) != 2:
                raise JobGraphError(
                    f"link cost key {set(pair)!r} must name two regions")
            if cost < 0:
                raise JobGraphError("link latency must be non-negative")
        if self.default_link_latency_s < 0:
            raise JobGraphError("default link latency must be non-negative")

    def region_of(self, node: str) -> str:
        return self.regions.get(node, self.default_region)

    def link_cost_s(self, region_a: str, region_b: str) -> float:
        if region_a == region_b:
            return 0.0
        return float(self.link_latency_s.get(
            frozenset((region_a, region_b)), self.default_link_latency_s))

    def moved(self, node: str, region: str) -> "RegionPlacement":
        """A copy with one node re-pinned — the session-handoff /
        failover primitive (placements are immutable)."""
        regions = dict(self.regions)
        regions[node] = region
        return RegionPlacement(
            regions=regions, default_region=self.default_region,
            link_latency_s=dict(self.link_latency_s),
            default_link_latency_s=self.default_link_latency_s)

    def moved_all(self, region: str,
                  nodes: Any = None) -> "RegionPlacement":
        """A copy with every node (or the given ones) pinned to one
        region — whole-region failover."""
        names = list(self.regions) if nodes is None else list(nodes)
        regions = dict(self.regions)
        for name in names:
            regions[name] = region
        return RegionPlacement(
            regions=regions, default_region=region,
            link_latency_s=dict(self.link_latency_s),
            default_link_latency_s=self.default_link_latency_s)


def placement_from_topology(topology: Any,
                            regions: Mapping[str, str],
                            *, default_region: str | None = None,
                            ) -> RegionPlacement:
    """Derive a placement whose link costs come from a live simnet
    topology: for every pair of assigned regions, the cost is the
    minimum nominal path latency between any two (currently reachable)
    nodes of those regions."""
    wanted = set(regions.values())
    if default_region is not None:
        wanted.add(default_region)
    members: dict[str, list[str]] = {}
    for spec in topology.nodes():
        if spec.region in wanted:
            members.setdefault(spec.region, []).append(spec.name)
    missing = sorted(wanted - set(members))
    if missing:
        raise JobGraphError(
            f"placement regions {missing} have no nodes in the topology")
    link_costs: dict[frozenset[str], float] = {}
    names = sorted(wanted)
    for i, ra in enumerate(names):
        for rb in names[i + 1:]:
            best = None
            for a in members[ra]:
                for b in members[rb]:
                    try:
                        latency = topology.nominal_path_latency(a, b)
                    except NetworkError:
                        # Unreachable right now; anything else (a typo'd
                        # node name, a broken topology) should surface.
                        continue
                    if best is None or latency < best:
                        best = latency
            if best is not None:
                link_costs[frozenset((ra, rb))] = float(best)
    return RegionPlacement(
        regions=dict(regions),
        default_region=(default_region if default_region is not None
                        else names[0]),
        link_latency_s=link_costs)
