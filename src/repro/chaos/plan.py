"""Fault plans: seeded, deterministic schedules of what breaks when.

A :class:`FaultPlan` is a list of :class:`FaultSpec` entries, each
naming an injection *site* (a counted hook the production code passes
through), a *kind* of failure, and the occurrence index ``at`` at which
it fires.  Because every site counts deterministically — items entering
a streaming operator, append attempts on the log cluster, fetches,
offload task attempts — a plan replays the same fault trace on every
invocation, which is what makes crash-recovery testable at all: the
assertion "recovered sinks == fault-free sinks" only means something if
the crash lands in the same place twice.

``FaultPlan.random(seed, ...)`` draws a schedule from a seeded RNG so
property tests can sweep many scenarios while each remains perfectly
reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.errors import ChaosError
from ..util.rng import make_rng

__all__ = ["FaultSpec", "FaultPlan", "FaultEvent",
           "SITE_OPERATOR", "SITE_APPEND", "SITE_FETCH", "SITE_OFFLOAD",
           "SITE_CHANNEL", "SITE_BARRIER", "SITE_COORDINATOR", "SITE_STALL",
           "SITE_RESCALE", "RESCALE_PHASES", "SITE_STORE", "STORE_PHASES",
           "SITE_DATA", "SITE_CHECKPOINT", "DATA_FAULT_KINDS",
           "CORRUPT_VALUE_MODES", "CORRUPT_TS_MODES"]

SITE_OPERATOR = "streaming.operator"
SITE_APPEND = "eventlog.append"
SITE_FETCH = "eventlog.fetch"
SITE_OFFLOAD = "offload.task"
#: one offer of a batch onto a physical channel (network-fault site)
SITE_CHANNEL = "streaming.channel"
#: one subtask snapshot taken on barrier passage
SITE_BARRIER = "streaming.barrier"
#: one checkpoint-finalize attempt by the coordinator
SITE_COORDINATOR = "streaming.coordinator"
#: one macro-cycle liveness check of a subtask
SITE_STALL = "streaming.stall"
#: one phase entry of a live-rescale attempt by the scaling supervisor
SITE_RESCALE = "streaming.rescale"
#: one phase entry of a serving-store epoch apply (StoreSink)
SITE_STORE = "store.apply"
#: one data element entering an operator (data-fault site; counted in
#: *elements*, so columnar batches advance it by their row count)
SITE_DATA = "streaming.data"
#: one checkpoint finalized into the store (storage-rot site)
SITE_CHECKPOINT = "streaming.checkpoint"

#: the rescale state machine's phases, in order; ``rescale_crash``
#: targets one of these (or None for the global phase-entry counter)
RESCALE_PHASES = ("decide", "savepoint", "recompile", "restore")

#: the store apply protocol's phases; ``store_crash`` targets one of
#: these (or None for the global counter): ``stage`` builds the epoch's
#: rows off to the side, ``apply`` installs them, ``compact`` merges
#: sorted runs afterwards
STORE_PHASES = ("stage", "apply", "compact")

#: kind -> sites where it may be scheduled
KIND_SITES = {
    "operator_crash": {SITE_OPERATOR},
    "partition_unavailable": {SITE_APPEND, SITE_FETCH},
    "torn_append": {SITE_APPEND},
    "broker_down": {SITE_APPEND},
    "duplicate_delivery": {SITE_FETCH},
    "task_timeout": {SITE_OFFLOAD},
    "tier_dropout": {SITE_OFFLOAD},
    # network faults on dataflow channels (param = cycles to hold /
    # duplicate depth; see FaultInjector.on_channel_offer)
    "channel_delay": {SITE_CHANNEL},
    "channel_duplicate": {SITE_CHANNEL},
    "channel_reorder": {SITE_CHANNEL},
    "channel_partition": {SITE_CHANNEL},
    # checkpoint-protocol faults
    "barrier_crash": {SITE_BARRIER},
    "coordinator_crash": {SITE_COORDINATOR},
    # fail-silent subtask: skips drain cycles and heartbeats for the
    # window, so only the failure detector can notice
    "subtask_stall": {SITE_STALL},
    # supervisor death at one phase of a live rescale (target = phase)
    "rescale_crash": {SITE_RESCALE},
    # serving-store death at one phase of an epoch apply (target = phase)
    "store_crash": {SITE_STORE},
    # data faults: poison individual records entering an operator
    # (param picks the flavour; see CORRUPT_VALUE_MODES / CORRUPT_TS_MODES)
    "udf_exception": {SITE_DATA},
    "corrupt_value": {SITE_DATA},
    "corrupt_timestamp": {SITE_DATA},
    # storage rot: damage a checkpoint *after* its atomic commit
    # (param = "payload" | "manifest")
    "checkpoint_corruption": {SITE_CHECKPOINT},
}

#: kinds scheduled at the data site (element-counted)
DATA_FAULT_KINDS = ("udf_exception", "corrupt_value", "corrupt_timestamp")
#: corrupt_value flavours (spec.param; None = wrong_type)
CORRUPT_VALUE_MODES = ("nan", "oversized", "wrong_type")
#: corrupt_timestamp flavours (spec.param; None = garbage)
CORRUPT_TS_MODES = ("backwards", "garbage")

#: kinds that fire exactly once and then disarm (vs. window kinds that
#: affect every occurrence in [at, at + count)).
ONE_SHOT_KINDS = {"operator_crash", "torn_append", "barrier_crash",
                  "coordinator_crash", "rescale_crash", "store_crash"}


@dataclass(frozen=True)
class FaultSpec:
    """One scheduled fault.

    kind    what breaks (see :data:`KIND_SITES`)
    site    which counted hook it observes
    at      0-based occurrence index at the site when the fault starts
    count   window width in occurrences (ignored by one-shot kinds)
    target  narrows the hook: an operator (or chain member) name, a
            ``"topic[partition]"`` / ``"topic"`` string, a tier name —
            ``None`` matches the site's global counter
    param   kind-specific knob: broker id for ``broker_down``, rewind
            depth for ``duplicate_delivery``, corruption flavour for
            ``corrupt_value`` / ``corrupt_timestamp`` /
            ``checkpoint_corruption``
    """

    kind: str
    site: str
    at: int
    count: int = 1
    target: str | None = None
    param: int | str | None = None

    def __post_init__(self) -> None:
        if self.kind not in KIND_SITES:
            raise ChaosError(f"unknown fault kind {self.kind!r}")
        if self.site not in KIND_SITES[self.kind]:
            raise ChaosError(
                f"kind {self.kind!r} cannot be scheduled at site "
                f"{self.site!r} (valid: {sorted(KIND_SITES[self.kind])})")
        if self.at < 0:
            raise ChaosError("at must be >= 0")
        if self.count < 1:
            raise ChaosError("count must be >= 1")
        if self.kind == "broker_down" and self.param is None:
            raise ChaosError("broker_down needs param=broker_id")
        if self.kind == "rescale_crash" and \
                self.target is not None and self.target not in RESCALE_PHASES:
            raise ChaosError(
                f"rescale_crash target must be a phase in "
                f"{RESCALE_PHASES} or None, got {self.target!r}")
        if self.kind == "store_crash" and \
                self.target is not None and self.target not in STORE_PHASES:
            raise ChaosError(
                f"store_crash target must be a phase in "
                f"{STORE_PHASES} or None, got {self.target!r}")
        if self.kind == "corrupt_value" and self.param is not None \
                and self.param not in CORRUPT_VALUE_MODES:
            raise ChaosError(
                f"corrupt_value param must be one of "
                f"{CORRUPT_VALUE_MODES} or None, got {self.param!r}")
        if self.kind == "corrupt_timestamp" and self.param is not None \
                and self.param not in CORRUPT_TS_MODES:
            raise ChaosError(
                f"corrupt_timestamp param must be one of "
                f"{CORRUPT_TS_MODES} or None, got {self.param!r}")
        if self.kind == "checkpoint_corruption" and self.param is not None \
                and self.param not in ("payload", "manifest"):
            raise ChaosError(
                f"checkpoint_corruption param must be 'payload', "
                f"'manifest' or None, got {self.param!r}")

    @property
    def end(self) -> int:
        """First occurrence index past the fault window."""
        return self.at + self.count

    def one_shot(self) -> bool:
        return self.kind in ONE_SHOT_KINDS


@dataclass(frozen=True)
class FaultEvent:
    """One fired fault, recorded in the injector's trace."""

    kind: str
    site: str
    identity: str
    occurrence: int
    detail: str = ""

    def as_tuple(self) -> tuple:
        return (self.kind, self.site, self.identity, self.occurrence,
                self.detail)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, seeded schedule of faults."""

    specs: tuple[FaultSpec, ...]
    seed: int = 0
    name: str = "plan"

    def __post_init__(self) -> None:
        object.__setattr__(self, "specs", tuple(self.specs))

    def __len__(self) -> int:
        return len(self.specs)

    def for_site(self, site: str) -> list[FaultSpec]:
        return [s for s in self.specs if s.site == site]

    @classmethod
    def random(cls, seed: int, *, horizon: int,
               operators: tuple[str, ...] | list[str] = (),
               tiers: tuple[str, ...] | list[str] = (),
               brokers: tuple[int, ...] | list[int] = (),
               crashes: int = 2,
               torn_appends: int = 1,
               unavailable_windows: int = 1,
               duplicate_deliveries: int = 1,
               broker_outages: int = 0,
               task_timeouts: int = 1,
               tier_dropouts: int = 0,
               channel_faults: int = 0,
               barrier_crashes: int = 0,
               coordinator_crashes: int = 0,
               stalls: int = 0,
               rescale_crashes: int = 0,
               store_crashes: int = 0,
               data_faults: int = 0,
               checkpoint_corruptions: int = 0,
               name: str = "random") -> "FaultPlan":
        """Draw a deterministic schedule from ``seed``.

        ``horizon`` bounds every ``at`` index — pick roughly the number
        of events flowing through the system so faults actually land.
        Categories without a target pool (no ``operators`` for crashes,
        no ``brokers`` for outages, ...) are silently skipped, so one
        generator serves single-layer and whole-system tests alike.
        """
        if horizon < 1:
            raise ChaosError("horizon must be >= 1")
        rng = make_rng((int(seed), 0xC4A05))
        specs: list[FaultSpec] = []

        def _at() -> int:
            return int(rng.integers(0, horizon))

        def _window() -> int:
            return int(rng.integers(1, max(2, horizon // 4)))

        if operators:
            for _ in range(crashes):
                target = str(operators[int(rng.integers(len(operators)))])
                specs.append(FaultSpec("operator_crash", SITE_OPERATOR,
                                       at=_at(), target=target))
        for _ in range(torn_appends):
            specs.append(FaultSpec("torn_append", SITE_APPEND, at=_at()))
        for _ in range(unavailable_windows):
            site = SITE_APPEND if rng.random() < 0.5 else SITE_FETCH
            specs.append(FaultSpec("partition_unavailable", site,
                                   at=_at(), count=_window()))
        for _ in range(duplicate_deliveries):
            specs.append(FaultSpec("duplicate_delivery", SITE_FETCH,
                                   at=_at(),
                                   param=int(rng.integers(1, 4))))
        if brokers:
            for _ in range(broker_outages):
                broker = int(brokers[int(rng.integers(len(brokers)))])
                specs.append(FaultSpec("broker_down", SITE_APPEND, at=_at(),
                                       count=_window(), param=broker))
        for _ in range(task_timeouts):
            target = (str(tiers[int(rng.integers(len(tiers)))])
                      if tiers else None)
            specs.append(FaultSpec("task_timeout", SITE_OFFLOAD, at=_at(),
                                   count=int(rng.integers(1, 3)),
                                   target=target))
        if tiers:
            for _ in range(tier_dropouts):
                target = str(tiers[int(rng.integers(len(tiers)))])
                specs.append(FaultSpec("tier_dropout", SITE_OFFLOAD,
                                       at=_at(), target=target))
        _channel_kinds = ("channel_delay", "channel_duplicate",
                         "channel_reorder", "channel_partition")
        for _ in range(channel_faults):
            kind = _channel_kinds[int(rng.integers(len(_channel_kinds)))]
            specs.append(FaultSpec(kind, SITE_CHANNEL, at=_at(),
                                   count=int(rng.integers(1, 3)),
                                   param=int(rng.integers(1, 4))))
        if operators:
            for _ in range(barrier_crashes):
                target = str(operators[int(rng.integers(len(operators)))])
                specs.append(FaultSpec("barrier_crash", SITE_BARRIER,
                                       at=_at(), target=target))
        for _ in range(coordinator_crashes):
            specs.append(FaultSpec("coordinator_crash", SITE_COORDINATOR,
                                   at=_at()))
        for _ in range(rescale_crashes):
            phase = RESCALE_PHASES[int(rng.integers(len(RESCALE_PHASES)))]
            # rescale attempts are rare events: keep `at` small so the
            # crash lands on an attempt that actually happens
            specs.append(FaultSpec("rescale_crash", SITE_RESCALE,
                                   at=int(rng.integers(0, 3)),
                                   target=phase))
        for _ in range(store_crashes):
            phase = STORE_PHASES[int(rng.integers(len(STORE_PHASES)))]
            # an epoch apply happens once per finalized checkpoint —
            # keep `at` small so the crash lands on a real apply
            specs.append(FaultSpec("store_crash", SITE_STORE,
                                   at=int(rng.integers(0, 4)),
                                   target=phase))
        if operators:
            for _ in range(stalls):
                target = str(operators[int(rng.integers(len(operators)))])
                specs.append(FaultSpec("subtask_stall", SITE_STALL,
                                       at=_at(),
                                       count=int(rng.integers(2, 6)),
                                       target=target))
        if operators:
            for _ in range(data_faults):
                kind = DATA_FAULT_KINDS[
                    int(rng.integers(len(DATA_FAULT_KINDS)))]
                if kind == "corrupt_value":
                    param: str | None = CORRUPT_VALUE_MODES[
                        int(rng.integers(len(CORRUPT_VALUE_MODES)))]
                elif kind == "corrupt_timestamp":
                    param = CORRUPT_TS_MODES[
                        int(rng.integers(len(CORRUPT_TS_MODES)))]
                else:
                    param = None
                target = str(operators[int(rng.integers(len(operators)))])
                specs.append(FaultSpec(kind, SITE_DATA, at=_at(),
                                       count=int(rng.integers(1, 4)),
                                       target=target, param=param))
        for _ in range(checkpoint_corruptions):
            mode = "payload" if rng.random() < 0.5 else "manifest"
            # checkpoints finalize a handful of times per run — keep
            # `at` small so the rot lands on one that actually commits
            specs.append(FaultSpec("checkpoint_corruption",
                                   SITE_CHECKPOINT,
                                   at=int(rng.integers(0, 4)),
                                   param=mode))
        specs.sort(key=lambda s: (s.site, s.at, s.kind, s.target or ""))
        return cls(specs=tuple(specs), seed=int(seed), name=name)
