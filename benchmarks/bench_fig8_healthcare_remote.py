"""Experiment F8 (Figure 8 and Section 3.3: healthcare).

Claims under test: streaming EHR/vitals analytics give "an immediate
field diagnosis" — we measure detection rate and detection delay for
scripted clinical episodes across monitoring rates; and the remote
operating-room vision needs the link to hold an interactive latency
budget — we sweep link quality for the EHR-augmented remote consult.
"""

import numpy as np

from repro.apps import HealthcareApp
from repro.core import ARBigDataPipeline, PipelineConfig
from repro.datagen import Episode, generate_patients, vitals_stream
from repro.util.rng import make_rng

from tableprint import print_table

PERIODS = [60.0, 20.0, 5.0]  # sampling period of the wearables
LINKS = ["lan", "5g", "wifi", "wan", "lte"]


def run_detection():
    rows = []
    for period in PERIODS:
        rng = make_rng(51)
        patients = generate_patients(rng, n=10, episode_rate=0.0,
                                     horizon_s=3600.0)
        # Script one strong episode per patient for exact ground truth.
        for i, patient in enumerate(patients):
            vital = ["heart_rate", "spo2", "systolic_bp",
                     "temperature"][i % 4]
            magnitude = {"heart_rate": 55.0, "spo2": -9.0,
                         "systolic_bp": 55.0, "temperature": 2.2}[vital]
            patient.episodes.append(Episode(
                vital=vital, onset_s=1200.0 + 120.0 * i,
                end_s=2400.0 + 120.0 * i, magnitude=magnitude,
                ramp_s=120.0))
        app = HealthcareApp(ARBigDataPipeline(PipelineConfig(seed=51)),
                            patients)
        for patient in patients:
            app.ingest_vitals(vitals_stream(patient, rng,
                                            horizon_s=3600.0,
                                            period_s=period))
        outcomes = app.detection_outcomes()
        detected = [o for o in outcomes if o.detected]
        delays = [o.lead_delay_s for o in detected]
        rows.append([period, len(outcomes), len(detected),
                     len(detected) / len(outcomes),
                     float(np.mean(delays)) if delays else float("nan"),
                     float(np.max(delays)) if delays else float("nan")])
    return rows


def run_remote():
    rng = make_rng(52)
    patients = generate_patients(rng, n=1, episode_rate=0.0)
    app = HealthcareApp(ARBigDataPipeline(PipelineConfig(seed=52)),
                        patients)
    rows = []
    for link in LINKS:
        stats = app.remote_diagnosis(rng, link=link, frames=300,
                                     deadline_s=0.150)
        rows.append([link, stats.mean_latency_s * 1000,
                     stats.miss_rate])
    return rows


def bench_fig8_episode_detection(benchmark):
    rows = benchmark.pedantic(run_detection, rounds=1, iterations=1)
    print_table(
        "F8a Sec 3.3: clinical episode detection vs monitoring rate",
        ["sample period s", "episodes", "detected", "rate",
         "mean delay s", "max delay s"],
        rows,
        note="faster wearable sampling catches every scripted episode "
             "and cuts time-to-alarm")
    rates = [r[3] for r in rows]
    delays = [r[4] for r in rows]
    assert rates[-1] == 1.0  # at 5 s sampling nothing is missed
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    # Detection delay shrinks as sampling speeds up.
    assert delays[-1] < delays[0]
    assert delays[-1] < 240.0  # alarms within the ramp, not after it


def run_collaborative():
    rng = make_rng(53)
    patients = generate_patients(rng, n=1, episode_rate=0.0)
    app = HealthcareApp(ARBigDataPipeline(PipelineConfig(seed=53)),
                        patients)
    rows = []
    for label, links, period in (
            ("2 on-site", {"a": "lan", "b": "lan"}, 0.5),
            ("2 sites (wan)", {"onsite": "lan", "remote": "wan"}, 0.5),
            ("3 sites mixed", {"a": "lan", "b": "5g", "c": "wan"}, 0.5),
            ("3 sites slow sync", {"a": "lan", "b": "5g", "c": "wan"},
             2.0)):
        stats = app.collaborative_consult(
            rng, "pt-000", links, duration_s=1200.0,
            finding_rate_per_s=0.05, sync_period_s=period)
        rows.append([label, stats.doctors, period,
                     stats.findings_published,
                     stats.mean_propagation_s,
                     stats.p95_propagation_s])
    return rows


def bench_fig8_collaborative_or(benchmark):
    rows = benchmark.pedantic(run_collaborative, rounds=1, iterations=1)
    print_table(
        "F8c Sec 3.3 (future work): virtual operating room — finding "
        "propagation across sites",
        ["configuration", "doctors", "sync period s", "findings",
         "mean propagation s", "p95 propagation s"],
        rows,
        note="a finding counts as propagated when every peer's view "
             "shows it; the sync cadence dominates, links add on top")
    by_label = {r[0]: r for r in rows}
    # Cross-site propagation stays interactive (< 2 s) at a 0.5 s sync.
    assert by_label["3 sites mixed"][4] < 2.0
    # Slower sync dominates the propagation delay.
    assert by_label["3 sites slow sync"][4] > \
        by_label["3 sites mixed"][4] * 2
    # Remote links cost more than an all-LAN room.
    assert by_label["2 sites (wan)"][4] >= by_label["2 on-site"][4]


def bench_fig8_remote_diagnosis(benchmark):
    rows = benchmark.pedantic(run_remote, rounds=1, iterations=1)
    print_table(
        "F8b Figure 8: remote consult latency vs link (150 ms budget)",
        ["link", "mean rtt ms", "deadline miss rate"],
        rows,
        note="the remote operating room is feasible on lan/5g/wifi; "
             "lte jitter breaks the interactive budget")
    by_link = {r[0]: r for r in rows}
    assert by_link["lan"][2] == 0.0
    assert by_link["5g"][2] < 0.05
    assert by_link["wifi"][2] < 0.05
    assert by_link["lte"][2] > by_link["5g"][2]
    # Mean latency orders by link quality.
    assert by_link["lan"][1] < by_link["5g"][1] < by_link["lte"][1]
