"""``python -m repro`` — library info and self-check.

Prints the subsystem inventory with import health and a one-shot smoke
of the end-to-end loop, so a fresh checkout can verify itself without
running the full test suite.
"""

from __future__ import annotations

import argparse
import importlib
import sys

SUBSYSTEMS = [
    ("repro.core", "the AR x Big-Data convergence pipeline"),
    ("repro.eventlog", "Kafka-like partitioned replicated log"),
    ("repro.streaming", "Flink-like event-time dataflow engine"),
    ("repro.analytics", "sketches, recommenders, anomaly detection"),
    ("repro.vision", "pure-numpy AR tracking stack"),
    ("repro.sensors", "GPS/IMU, fusion, spatial index, POIs"),
    ("repro.render", "occlusion, declutter, frame-budget compositor"),
    ("repro.offload", "CloudRiDAR-style offloading + battery models"),
    ("repro.privacy", "DP mechanisms, location privacy, attacks"),
    ("repro.simnet", "deterministic discrete-event simulation"),
    ("repro.context", "semantic entities, ARML, interpretation"),
    ("repro.datagen", "seeded workload generators"),
    ("repro.store", "tiered serving store: hot + analytical tiers"),
    ("repro.apps", "retail/tourism/healthcare/public/education"),
]


def _smoke() -> str:
    """One pass around the loop; returns a short result line."""
    import numpy as np

    from repro import ARBigDataPipeline, PipelineConfig
    from repro.context import SemanticEntity
    from repro.vision import look_at

    pipeline = ARBigDataPipeline(PipelineConfig(seed=0))
    pipeline.create_topic("smoke")
    for i in range(50):
        pipeline.ingest("smoke", {"s": f"x{i % 2}", "v": float(i)},
                        key=f"x{i % 2}", timestamp=float(i))
    results = pipeline.windowed_aggregate(
        "smoke", key_fn=lambda v: v["s"], value_fn=lambda v: v["v"],
        window_s=25.0, aggregate="count")
    pipeline.add_entity(SemanticEntity(
        entity_id="x0", entity_type="thing",
        position=np.array([0.0, 0.0, 5.0]), name="x0"))
    pipeline.add_entity(SemanticEntity(
        entity_id="x1", entity_type="thing",
        position=np.array([0.5, 0.0, 5.0]), name="x1"))
    pipeline.interpreter.register_default("count")
    bound = pipeline.interpret_and_publish([
        {"tag": "count", "subject": r.key, "value": r.value}
        for r in results])
    session = pipeline.open_session("smoke-user")
    session.sync()
    frame = session.render(look_at(eye=[0, 0, 0], target=[0, 0, 5.0]))
    total = sum(r.value for r in results)
    return (f"{total} records windowed, {bound.bound} bound, "
            f"{frame.drawn} annotations rendered")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'When Augmented Reality Meets Big "
                    "Data' (ICDCS 2017)")
    parser.add_argument("--no-smoke", action="store_true",
                        help="skip the end-to-end smoke check")
    args = parser.parse_args(argv)

    import repro
    print(f"repro {repro.__version__}")
    print()
    failures = 0
    for module_name, description in SUBSYSTEMS:
        try:
            module = importlib.import_module(module_name)
            exported = len(getattr(module, "__all__", []))
            status = f"ok  ({exported:3d} exports)"
        except Exception as exc:  # pragma: no cover - import disasters
            status = f"FAILED: {exc}"
            failures += 1
        print(f"  {module_name:18s} {status}  - {description}")
    if not args.no_smoke:
        print()
        try:
            print(f"smoke: {_smoke()}")
        except Exception as exc:  # pragma: no cover
            print(f"smoke FAILED: {exc}")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
