"""Window assigners: tumbling, sliding, session.

A :class:`Window` is a half-open event-time interval [start, end).
Assigners map an element timestamp to the window(s) it belongs to.
Session windows are assigned per-key by merging gaps, handled by the
window operator (assignment alone can't merge), so the session assigner
here produces a provisional single-point window that the operator merges.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import ConfigError

__all__ = [
    "Window",
    "WindowAssigner",
    "TumblingWindows",
    "SlidingWindows",
    "SessionWindows",
]


@dataclass(frozen=True, order=True)
class Window:
    """Half-open event-time interval [start, end)."""

    start: float
    end: float

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ConfigError(f"empty window [{self.start}, {self.end})")

    @property
    def length(self) -> float:
        return self.end - self.start

    def contains(self, timestamp: float) -> bool:
        return self.start <= timestamp < self.end

    def intersects(self, other: "Window") -> bool:
        return self.start < other.end and other.start < self.end

    def merged(self, other: "Window") -> "Window":
        return Window(min(self.start, other.start), max(self.end, other.end))


class WindowAssigner:
    """Maps a timestamp to the windows containing it."""

    #: session assigners need operator-side merging
    merging = False

    def assign(self, timestamp: float) -> list[Window]:
        raise NotImplementedError


class TumblingWindows(WindowAssigner):
    """Fixed, non-overlapping windows of ``size`` seconds."""

    def __init__(self, size: float, offset: float = 0.0) -> None:
        if size <= 0:
            raise ConfigError("window size must be positive")
        self.size = size
        self.offset = offset
        self._last: tuple[float, list[Window]] | None = None

    def assign(self, timestamp: float) -> list[Window]:
        start = ((timestamp - self.offset) // self.size) * self.size + self.offset
        # Consecutive timestamps overwhelmingly land in the same bucket;
        # reuse the last Window instead of re-constructing it (callers
        # never mutate the returned list).
        last = self._last
        if last is not None and last[0] == start:
            return last[1]
        windows = [Window(start, start + self.size)]
        self._last = (start, windows)
        return windows

    def assign_starts(self, timestamps):
        """Vectorized window starts for a float64 timestamp array.

        IEEE-754 float64 arithmetic is identical element-wise to the
        scalar expression in :meth:`assign`, so grouped (columnar)
        window assignment lands every element in the same bucket as
        per-item assignment.
        """
        return ((timestamps - self.offset) // self.size) * self.size \
            + self.offset


class SlidingWindows(WindowAssigner):
    """Windows of ``size`` seconds sliding every ``slide`` seconds."""

    def __init__(self, size: float, slide: float) -> None:
        if size <= 0 or slide <= 0:
            raise ConfigError("size and slide must be positive")
        if slide > size:
            raise ConfigError("slide larger than size leaves gaps; use "
                              "tumbling windows instead")
        self.size = size
        self.slide = slide

    def assign(self, timestamp: float) -> list[Window]:
        # Index-based construction avoids accumulating subtraction error;
        # the final containment filter makes boundary behaviour exact.
        last_k = int(timestamp // self.slide)
        first_k = int((timestamp - self.size) // self.slide)
        windows = []
        for k in range(first_k, last_k + 2):
            window = Window(k * self.slide, k * self.slide + self.size)
            if window.contains(timestamp):
                windows.append(window)
        return windows


class SessionWindows(WindowAssigner):
    """Gap-based sessions: elements closer than ``gap`` merge."""

    merging = True

    def __init__(self, gap: float) -> None:
        if gap <= 0:
            raise ConfigError("session gap must be positive")
        self.gap = gap

    def assign(self, timestamp: float) -> list[Window]:
        # Provisional window; the operator merges overlapping sessions.
        return [Window(timestamp, timestamp + self.gap)]
