"""Barrier alignment: the per-subtask half of coordinated checkpoints.

A :class:`~repro.streaming.element.CheckpointBarrier` flows in-band
through every channel.  A multi-channel subtask must not snapshot until
the barrier has arrived on *all* of its inputs, and must not process
post-barrier items from channels that already delivered it — otherwise
the snapshot would mix pre- and post-barrier effects and replay would
double-count.  :class:`BarrierAligner` tracks that state machine for one
subtask:

- **aligned** (default): a channel that delivers barrier *n* is
  *blocked* — its queued items stay buffered in the channel — until the
  barrier arrives everywhere; then the subtask snapshots and the
  channels unblock.  Nothing in flight needs to be part of the snapshot
  (the classic Chandy–Lamport cut: pre-barrier items are in state,
  post-barrier items will be replayed from the sources).
- **unaligned escape hatch**: if alignment has been pending for more
  than ``unaligned_after`` drain cycles (slow/partitioned channel), the
  aligner gives up blocking: the snapshot is taken immediately, blocked
  channels unblock (their buffered items are post-barrier and process
  normally), and every item subsequently drained from a *lagging*
  channel — pre-barrier in-flight data the snapshot would otherwise
  lose — is **spilled** into the checkpoint's in-flight state as it is
  processed, until that channel's straggler barrier arrives and is
  swallowed.  A restore re-enqueues the spilled items (Flink's
  unaligned-checkpoint channel state).

Barrier duplication (an at-least-once channel re-delivering a marker —
see the chaos channel faults) is absorbed: a barrier id at or below the
last completed one is dropped.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..util.errors import CheckpointError

__all__ = ["AlignmentResult", "BarrierAligner"]

#: outcomes of feeding one barrier to the aligner
IGNORED = "ignored"        # duplicate / stale marker: drop it
BLOCKED = "blocked"        # channel now blocked, still waiting for others
COMPLETE = "complete"      # all channels aligned: snapshot now
SPILL = "spill"            # unaligned completion: snapshot + spill in-flight
STRAGGLER = "straggler"    # late barrier after an unaligned snapshot: the
                           # channel's spill is complete


@dataclass
class AlignmentResult:
    """What the subtask must do after one barrier arrival / cycle tick."""

    action: str
    checkpoint_id: int
    #: channels whose queued pre-barrier items must be spilled into the
    #: snapshot (unaligned completion only): the channels that had NOT
    #: yet delivered the barrier.
    spill_channels: tuple[Hashable, ...] = ()


@dataclass
class BarrierAligner:
    """Alignment state for one subtask across its input channels."""

    channels: tuple[Hashable, ...]
    #: give up blocking after this many drain cycles of partial
    #: alignment; ``None`` means align forever (pure aligned mode).
    unaligned_after: int | None = None

    current_id: int | None = None
    arrived: set = field(default_factory=set)
    pending_cycles: int = 0
    completed_id: int = -1
    #: how many cycles the most recent completed alignment waited
    last_alignment_cycles: int = 0
    #: set while an unaligned snapshot for ``current_id`` has been taken
    #: but stragglers' barriers are still due — they are swallowed.
    draining_unaligned: bool = False

    def __post_init__(self) -> None:
        self.channels = tuple(self.channels)
        if not self.channels:
            raise CheckpointError("aligner needs at least one channel")

    # -- queries -------------------------------------------------------------

    def is_blocked(self, channel: Hashable) -> bool:
        """Should the subtask leave this channel's queued items alone?"""
        return (self.current_id is not None
                and not self.draining_unaligned
                and channel in self.arrived)

    def is_spilling(self, channel: Hashable) -> bool:
        """After an unaligned snapshot, is this channel still delivering
        pre-barrier items that must be copied into the checkpoint's
        in-flight state as they are processed?"""
        return self.draining_unaligned and channel not in self.arrived

    @property
    def aligning(self) -> bool:
        return self.current_id is not None

    # -- events --------------------------------------------------------------

    def on_barrier(self, channel: Hashable,
                   checkpoint_id: int) -> AlignmentResult:
        """Barrier arrived on ``channel``.  Returns what to do."""
        if channel not in self.channels:
            raise CheckpointError(f"unknown channel {channel!r}")
        if checkpoint_id <= self.completed_id:
            return AlignmentResult(IGNORED, checkpoint_id)
        if self.current_id is None:
            self.current_id = checkpoint_id
            self.arrived = set()
            self.pending_cycles = 0
            self.draining_unaligned = False
        elif checkpoint_id < self.current_id:
            # A marker from a checkpoint the coordinator already
            # abandoned, surfacing late from a previously blocked
            # channel: drop it.
            return AlignmentResult(IGNORED, checkpoint_id)
        elif checkpoint_id > self.current_id:
            # A newer barrier overtaking an in-progress alignment means
            # the coordinator abandoned the old checkpoint; restart
            # alignment on the newer id.
            self.current_id = checkpoint_id
            self.arrived = set()
            self.pending_cycles = 0
            self.draining_unaligned = False
        if channel in self.arrived:
            return AlignmentResult(IGNORED, checkpoint_id)  # duplicated marker
        self.arrived.add(channel)
        if self.draining_unaligned:
            # Snapshot already taken unaligned; this straggler marker
            # closes the channel's spill (its pre-barrier items are all
            # in the checkpoint's in-flight state now).
            if len(self.arrived) == len(self.channels):
                self._finish()
            return AlignmentResult(STRAGGLER, checkpoint_id)
        if len(self.arrived) == len(self.channels):
            cid = self.current_id
            self._finish()
            return AlignmentResult(COMPLETE, cid)
        return AlignmentResult(BLOCKED, checkpoint_id)

    def on_cycle(self) -> AlignmentResult | None:
        """Called once per drain cycle while aligning; may trigger the
        unaligned escape hatch."""
        if self.current_id is None or self.draining_unaligned:
            return None
        self.pending_cycles += 1
        if (self.unaligned_after is not None
                and self.pending_cycles > self.unaligned_after):
            lagging = tuple(c for c in self.channels
                            if c not in self.arrived)
            self.draining_unaligned = True
            return AlignmentResult(SPILL, self.current_id,
                                   spill_channels=lagging)
        return None

    def reset(self) -> None:
        """Forget any in-progress alignment (restore path)."""
        self.current_id = None
        self.arrived = set()
        self.pending_cycles = 0
        self.draining_unaligned = False

    def _finish(self) -> None:
        self.completed_id = max(self.completed_id, self.current_id or -1)
        self.last_alignment_cycles = self.pending_cycles
        self.current_id = None
        self.arrived = set()
        self.pending_cycles = 0
        self.draining_unaligned = False
