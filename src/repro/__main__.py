"""``python -m repro`` — library info, self-check, and demos.

With no subcommand, prints the subsystem inventory with import health
and a one-shot smoke of the end-to-end loop, so a fresh checkout can
verify itself without running the full test suite.

``python -m repro demo-geo`` runs the geo-distributed story end to
end: a keyed job pinned to an edge region, its input log mirrored to
the core, the whole edge region lost mid-stream, and the deployment
failing over to the replica — with the committed output checked
bit-identical to a fault-free run.

``python -m repro demo-datafault`` runs the data-fault tolerance
story: a hospital vitals stream with poisoned and corrupted records
dead-lettered under a per-operator policy, an operator crash layered
on top, and the committed sink + DLQ checked invariant against the
crash-free run with the same poison.
"""

from __future__ import annotations

import argparse
import importlib
import sys

SUBSYSTEMS = [
    ("repro.core", "the AR x Big-Data convergence pipeline"),
    ("repro.eventlog", "Kafka-like partitioned replicated log"),
    ("repro.streaming", "Flink-like event-time dataflow engine"),
    ("repro.analytics", "sketches, recommenders, anomaly detection"),
    ("repro.vision", "pure-numpy AR tracking stack"),
    ("repro.sensors", "GPS/IMU, fusion, spatial index, POIs"),
    ("repro.render", "occlusion, declutter, frame-budget compositor"),
    ("repro.offload", "CloudRiDAR-style offloading + battery models"),
    ("repro.privacy", "DP mechanisms, location privacy, attacks"),
    ("repro.simnet", "deterministic discrete-event simulation"),
    ("repro.context", "semantic entities, ARML, interpretation"),
    ("repro.datagen", "seeded workload generators"),
    ("repro.store", "tiered serving store: hot + analytical tiers"),
    ("repro.apps", "retail/tourism/healthcare/public/education"),
    ("repro.geo", "geo control plane: region failover + handoff"),
]


def _smoke() -> str:
    """One pass around the loop; returns a short result line."""
    import numpy as np

    from repro import ARBigDataPipeline, PipelineConfig
    from repro.context import SemanticEntity
    from repro.vision import look_at

    pipeline = ARBigDataPipeline(PipelineConfig(seed=0))
    pipeline.create_topic("smoke")
    for i in range(50):
        pipeline.ingest("smoke", {"s": f"x{i % 2}", "v": float(i)},
                        key=f"x{i % 2}", timestamp=float(i))
    results = pipeline.windowed_aggregate(
        "smoke", key_fn=lambda v: v["s"], value_fn=lambda v: v["v"],
        window_s=25.0, aggregate="count")
    pipeline.add_entity(SemanticEntity(
        entity_id="x0", entity_type="thing",
        position=np.array([0.0, 0.0, 5.0]), name="x0"))
    pipeline.add_entity(SemanticEntity(
        entity_id="x1", entity_type="thing",
        position=np.array([0.5, 0.0, 5.0]), name="x1"))
    pipeline.interpreter.register_default("count")
    bound = pipeline.interpret_and_publish([
        {"tag": "count", "subject": r.key, "value": r.value}
        for r in results])
    session = pipeline.open_session("smoke-user")
    session.sync()
    frame = session.render(look_at(eye=[0, 0, 0], target=[0, 0, 5.0]))
    total = sum(r.value for r in results)
    return (f"{total} records windowed, {bound.bound} bound, "
            f"{frame.drawn} annotations rendered")


def _demo_geo() -> int:
    """Two-region failover, end to end, against a golden run."""
    from repro.chaos import canonical_sinks, fault_free_sinks
    from repro.eventlog import LogCluster, Producer, TopicConfig
    from repro.geo import GeoDeployment
    from repro.simnet import (
        FailureInjector,
        RegionFailureEvent,
        Simulator,
        region_topology,
    )
    from repro.streaming import JobBuilder, parallel_log_source
    from repro.streaming.placement import placement_from_topology
    from repro.streaming.windows import TumblingWindows
    from repro.util.rng import make_rng

    topic, n_records, keys = "demo.events", 240, 8
    pins = {topic: "edge-a", "by_key": "edge-a",
            "window_sum": "edge-a", "out": "edge-a"}

    def fill(cluster: LogCluster) -> None:
        cluster.create_topic(TopicConfig(name=topic, partitions=4))
        producer = Producer(cluster, idempotent=True)
        for i in range(n_records):
            producer.send(topic, {"k": i % keys, "v": float(i)},
                          key=f"k-{i % keys}", timestamp=float(i))

    def build_job(cluster: LogCluster):
        builder = JobBuilder("demo-geo")
        factory, splits = parallel_log_source(cluster, topic)
        (builder.source(topic, splits=splits, split_factory=factory)
                .key_by(lambda v: v["k"], name="by_key")
                .window(TumblingWindows(20.0), "sum",
                        value_fn=lambda v: v["v"], name="window_sum")
                .sink("out"))
        for node, region in pins.items():
            builder.pin_region(node, region)
        builder.declare_cross_region(topic, "by_key")
        return builder.build()

    golden_cluster = LogCluster(num_brokers=1)
    fill(golden_cluster)
    golden = canonical_sinks(fault_free_sinks(
        lambda: build_job(golden_cluster), parallelism=2))

    primary = LogCluster(num_brokers=1)
    standby = LogCluster(num_brokers=1)
    fill(primary)
    topo = region_topology(make_rng(11))
    sim = Simulator()
    FailureInjector(sim, topo).schedule_region(
        RegionFailureEvent("edge-a", down_at=4.0, up_at=1e9))
    deployment = GeoDeployment(
        build_job,
        primary_cluster=primary, standby_cluster=standby, topic=topic,
        primary_region="edge-a", standby_region="core",
        placement=placement_from_topology(topo, dict(pins),
                                          default_region="core"),
        parallelism=2, source_batch=8, step_cycles=2, interval_cycles=2,
        region_timeout_s=2.0, topology=topo, simulator=sim,
        observer="core")
    print(f"demo-geo: {n_records} records pinned to edge-a, mirrored "
          "to core; edge-a dies at t=4.0s")
    report = deployment.run()
    failover = report.failover
    if failover is None:
        print("demo-geo FAILED: region loss never detected")
        return 1
    print(f"  region lost: {failover.lost_region} -> failed over to "
          f"{failover.to_region} (MTTR {failover.mttr_s:.2f} sim s)")
    print(f"  restored checkpoint: {failover.checkpoint_id} — replayed "
          f"{failover.replayed} of a full-restart {failover.full_restart_equiv}")
    print(f"  mirror records pumped: {report.mirror_pumped}, "
          f"checkpoints committed: {report.checkpoints}")
    identical = canonical_sinks(report.sink_values) == golden
    print(f"  committed output vs fault-free run: "
          f"{'IDENTICAL' if identical else 'DIVERGED'}")
    return 0 if identical else 1


def _demo_datafault() -> int:
    """A poisoned hospital vitals stream surviving on its error
    policies: dead letters to a transactional DLQ, a crash layered on
    top, committed output invariant — with the DLQ inspectable."""
    from repro.chaos import (
        SITE_DATA,
        SITE_OPERATOR,
        FaultInjector,
        FaultPlan,
        FaultSpec,
        run_with_recovery,
    )
    from repro.datagen.health import generate_patients, vitals_stream
    from repro.streaming import DEAD_LETTER, DLQ_SINK, Element, JobBuilder
    from repro.streaming.windows import TumblingWindows
    from repro.util.rng import RngRegistry

    registry = RngRegistry(seed=17)
    patients = generate_patients(registry.get("patients"), n=4,
                                 horizon_s=600.0)
    samples = []
    for patient in patients:
        samples.extend(vitals_stream(
            patient, registry.get(f"vitals-{patient.patient_id}"),
            horizon_s=600.0, period_s=10.0))
    samples.sort(key=lambda s: (s.timestamp, s.patient_id, s.vital))
    events = [Element({"patient": s.patient_id, "vital": s.vital,
                       "value": s.value}, timestamp=s.timestamp)
              for s in samples]

    def build_job():
        builder = JobBuilder("demo-datafault")
        (builder.source("vitals", list(events))
                .map(lambda v: {"patient": v["patient"],
                                "vital": v["vital"],
                                "value": float(v["value"])},
                     name="featurize")
                .on_error(DEAD_LETTER)
                .key_by(lambda v: v["patient"], name="by_patient")
                .window(TumblingWindows(60.0), "sum",
                        value_fn=lambda v: v["value"], name="ward_load")
                .sink("out"))
        return builder.build()

    data_specs = (
        FaultSpec("udf_exception", SITE_DATA, at=40, count=3,
                  target="featurize"),
        FaultSpec("corrupt_value", SITE_DATA, at=220, count=2,
                  param="wrong_type", target="featurize"),
    )
    crash_spec = FaultSpec("operator_crash", SITE_OPERATOR,
                           at=len(events) // 2, target="ward_load")

    def run(specs, name):
        return run_with_recovery(
            build_job(),
            FaultInjector(FaultPlan(specs=specs, seed=17, name=name)))

    print(f"demo-datafault: {len(events)} vitals samples from "
          f"{len(patients)} patients; 5 records poisoned, operator "
          "crash layered on top")
    golden = run(data_specs, "demo-data-only")
    report = run(data_specs + (crash_spec,), "demo-layered")

    letters = report.sink_values.get(DLQ_SINK, [])
    print(f"  committed windows: {len(report.sink_values['out'])}, "
          f"dead letters: {len(letters)}, crashes survived: "
          f"{report.crashes}, restores: {report.restores}")
    print("  dead-letter queue (committed transactionally with the sink):")
    for letter in letters:
        value = letter.value
        what = (f"{value['patient']}/{value['vital']}"
                if isinstance(value, dict) and "patient" in value
                else repr(value)[:40])
        print(f"    t={letter.timestamp:7.1f} {what:24s} "
              f"op={letter.operator} fault={letter.fault} "
              f"error={letter.error_type}")
    identical = all(
        [repr(v) for v in report.sink_values[name]]
        == [repr(v) for v in golden.sink_values[name]]
        for name in golden.sink_values)
    print(f"  committed sink+DLQ vs crash-free run with the same "
          f"poison: {'IDENTICAL' if identical else 'DIVERGED'}")
    if not letters or not identical:
        print("demo-datafault FAILED")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Reproduction of 'When Augmented Reality Meets Big "
                    "Data' (ICDCS 2017)")
    parser.add_argument("--no-smoke", action="store_true",
                        help="skip the end-to-end smoke check")
    sub = parser.add_subparsers(dest="command")
    sub.add_parser("demo-geo",
                   help="two-region failover demo: edge loss, mirror "
                        "replay, exactly-once output")
    sub.add_parser("demo-datafault",
                   help="data-fault tolerance demo: poisoned vitals "
                        "stream, transactional DLQ, crash-invariant "
                        "committed output")
    args = parser.parse_args(argv)

    if args.command == "demo-geo":
        return _demo_geo()
    if args.command == "demo-datafault":
        return _demo_datafault()

    import repro
    print(f"repro {repro.__version__}")
    print()
    failures = 0
    for module_name, description in SUBSYSTEMS:
        try:
            module = importlib.import_module(module_name)
            exported = len(getattr(module, "__all__", []))
            status = f"ok  ({exported:3d} exports)"
        except Exception as exc:  # pragma: no cover - import disasters
            status = f"FAILED: {exc}"
            failures += 1
        print(f"  {module_name:18s} {status}  - {description}")
    if not args.no_smoke:
        print()
        try:
            print(f"smoke: {_smoke()}")
        except Exception as exc:  # pragma: no cover
            print(f"smoke FAILED: {exc}")
            failures += 1
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
