"""Unit tests: sparse optical flow and the hybrid tracker."""

import numpy as np
import pytest

from repro.util.rng import make_rng
from repro.util.errors import VisionError
from repro.vision import (
    CameraIntrinsics,
    HybridTracker,
    PlanarTarget,
    Pose,
    look_at,
    make_texture,
    render_plane,
    track_points,
)

INTR = CameraIntrinsics(fx=400, fy=400, cx=160, cy=120, width=320,
                        height=240)


def _shifted_frames(shift_px, rng, noise=0.0):
    target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
    pose1 = look_at(eye=[0.25, 0.25, -0.8], target=[0.25, 0.25, 0.0])
    # Translate the camera parallel to the plane without re-aiming, so
    # the image shifts by a known amount.
    t2 = pose1.translation - pose1.rotation @ np.array(
        [shift_px * 0.8 / 400.0, 0.0, 0.0])
    pose2 = Pose(pose1.rotation, t2)
    f1 = render_plane(target, INTR, pose1, rng=rng, noise_sigma=noise)
    f2 = render_plane(target, INTR, pose2, rng=rng, noise_sigma=noise)
    return target, pose1, pose2, f1, f2


class TestTrackPoints:
    def _corner_points(self, target, pose1, n=40):
        from repro.vision import detect_corners
        frame = render_plane(target, INTR, pose1)
        corners = detect_corners(frame, max_corners=n)
        return np.array([[kp.x, kp.y] for kp in corners])

    def test_recovers_known_shift(self):
        rng = make_rng(0)
        target, pose1, pose2, f1, f2 = _shifted_frames(4.0, rng)
        points = self._corner_points(target, pose1)
        result = track_points(f1, f2, points)
        assert result.valid.sum() >= 10
        flow = result.points[result.valid] - points[result.valid]
        # Camera moved +x, so image content moved ~4 px in -x.
        assert np.median(flow[:, 0]) == pytest.approx(-4.0, abs=0.5)
        assert abs(np.median(flow[:, 1])) < 0.5

    def test_zero_motion_zero_flow(self):
        rng = make_rng(1)
        target, pose1, _p2, f1, _f2 = _shifted_frames(0.0, rng)
        points = self._corner_points(target, pose1)
        result = track_points(f1, f1, points)
        flow = result.points[result.valid] - points[result.valid]
        assert np.abs(flow).max() < 0.2

    def test_large_shift_via_pyramid(self):
        rng = make_rng(2)
        target, pose1, pose2, f1, f2 = _shifted_frames(12.0, rng)
        points = self._corner_points(target, pose1)
        result = track_points(f1, f2, points, levels=4)
        flow = result.points[result.valid] - points[result.valid]
        assert result.valid.sum() >= 5
        assert np.median(flow[:, 0]) == pytest.approx(-12.0, abs=1.0)

    def test_flat_points_invalidated(self):
        rng = make_rng(3)
        flat = np.full((240, 320), 0.5)
        points = np.array([[160.0, 120.0], [50.0, 50.0]])
        result = track_points(flat, flat, points)
        assert not result.valid.any()

    def test_shape_mismatch_rejected(self):
        with pytest.raises(VisionError):
            track_points(np.zeros((10, 10)), np.zeros((20, 20)),
                         np.zeros((1, 2)))

    def test_even_window_rejected(self):
        with pytest.raises(VisionError):
            track_points(np.zeros((32, 32)), np.zeros((32, 32)),
                         np.zeros((1, 2)), window=8)


class TestHybridTracker:
    def _orbit(self, tracker, rng, frames=12, start=0):
        target = tracker.target
        errors = []
        for i in range(start, start + frames):
            eye = [0.2 + 0.01 * i, 0.25 + 0.005 * i, -0.8]
            pose_true = look_at(eye=eye, target=[0.25, 0.25, 0.0])
            frame = render_plane(target, INTR, pose_true, rng=rng,
                                 noise_sigma=0.01)
            result = tracker.track(frame)
            errors.append(tracker.registration_error_px(result, pose_true))
        return errors

    def test_mostly_flow_after_first_detection(self):
        rng = make_rng(4)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = HybridTracker(target, INTR, rng)
        errors = self._orbit(tracker, rng, frames=12)
        assert tracker.detections <= 2
        assert tracker.flow_frames >= 10
        assert float(np.mean(errors)) < 2.0

    def test_flow_accuracy_matches_detection(self):
        rng = make_rng(5)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = HybridTracker(target, INTR, rng)
        errors = self._orbit(tracker, rng, frames=10)
        assert max(errors) < 3.0  # no drift blow-up (keyframe anchoring)

    def test_periodic_redetection(self):
        rng = make_rng(6)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = HybridTracker(target, INTR, rng, redetect_every=5)
        self._orbit(tracker, rng, frames=12)
        assert tracker.detections >= 2

    def test_recovers_after_target_lost(self):
        rng = make_rng(7)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = HybridTracker(target, INTR, rng)
        self._orbit(tracker, rng, frames=3)
        # Blank frame: flow fails, detection fails -> TrackingLost.
        from repro.util.errors import TrackingLost
        with pytest.raises(TrackingLost):
            tracker.track(np.full((240, 320), 0.5))
        # Target returns: the tracker recovers via detection.
        errors = self._orbit(tracker, rng, frames=3, start=4)
        assert min(errors) < 2.0

    def test_flow_profile_cheaper_than_detection(self):
        rng = make_rng(8)
        target = PlanarTarget(make_texture(rng, size=256), 0.5, 0.5)
        tracker = HybridTracker(target, INTR, rng)
        self._orbit(tracker, rng, frames=2)
        assert tracker.last_mode == "flow"
        flow_pixels = tracker.last_profile.pixels
        detect_pixels = tracker.detector.last_profile.pixels
        assert flow_pixels < detect_pixels / 4
