"""StoreSink: exactly-once bridge from committed epochs into the store.

The serving store never sees in-flight data.  A :class:`StoreSink`
registers as a checkpoint-coordinator commit listener (the same seam
:class:`~repro.streaming.txn_sink.TransactionalLogSink` uses): on every
finalized checkpoint it receives the sink's *committed* output, takes
the delta past what it already applied, **stages** it (shard routing,
key encoding, column building — all the failure-prone work) and then
**applies** it: every affected hot shard and the analytical store
install the epoch atomically and record ``last_applied_epoch``.

Why the delta logic is crash-proof: committed output only ever grows as
a list prefix — checkpoint N's projection is a prefix of checkpoint
N+k's — so ``committed[applied_rows:]`` after any crash/restore/rescale
is exactly the rows the store has not seen.  A crash *inside* the
listener (injected at the ``stage``/``apply``/``compact`` fault sites)
restores the job to the just-finalized checkpoint; the next commit's
delta then contains everything the interrupted apply missed, and the
per-shard epoch guard drops anything it did not.

The sink also registers as a *consumer* on the
:class:`~repro.streaming.coordinator.CheckpointStore` and advances its
retain-watermark after each apply, so checkpoint pruning can never
delete a manifest the store might still need to replay from.
"""

from __future__ import annotations

from typing import Any

from ..streaming.element import Element
from ..util.errors import StoreError
from .tiered import TieredStore

__all__ = ["StoreSink"]


class StoreSink:
    """Applies a transactional sink's committed epochs to a
    :class:`~repro.store.tiered.TieredStore`, exactly once."""

    def __init__(self, store: TieredStore, *, sink_name: str | None = None,
                 consumer_name: str | None = None,
                 injector: Any = None) -> None:
        self.store = store
        self.sink_name = sink_name
        self.consumer_name = consumer_name or (
            f"store-sink:{sink_name}" if sink_name else "store-sink")
        self.injector = injector
        self._applied_rows = 0
        self._checkpoint_store: Any = None
        self.applied_epochs = 0
        self.last_applied_epoch = 0

    # -- wiring --------------------------------------------------------------

    def attach(self, coordinator: Any) -> "StoreSink":
        """Register on a coordinator: commit listener + retain-watermark
        consumer.  Pass as ``on_coordinator=`` to the chaos harness —
        listeners survive coordinator rebuilds, and re-attaching after
        one only refreshes the checkpoint-store handle."""
        store = getattr(coordinator, "store", None)
        if store is not None:
            self._checkpoint_store = store
            store.register_consumer(self.consumer_name,
                                    self.last_applied_epoch)
        listeners = coordinator.listeners
        if self._on_commit not in listeners:
            listeners.append(self._on_commit)
        return self

    def _on_commit(self, checkpoint_id: int, sink_name: str,
                   committed: list[Element]) -> None:
        if self.sink_name is not None and sink_name != self.sink_name:
            return
        self.on_checkpoint_committed(checkpoint_id, committed)

    # -- the epoch-apply protocol --------------------------------------------

    def on_checkpoint_committed(self, checkpoint_id: int,
                                committed: list[Element]) -> int:
        """Stage and apply the newly committed delta.  Returns rows
        applied (0 when replaying an already-applied commit)."""
        if len(committed) < self._applied_rows:
            # Committed output is a prefix-growing projection; shrinking
            # below what we applied means the caller handed us a
            # different sink's stream.
            raise StoreError(
                f"committed output ({len(committed)} rows) rewound below "
                f"applied rows ({self._applied_rows}) — StoreSink must "
                "follow a single transactional sink")
        delta = committed[self._applied_rows:]
        staged = self.stage(checkpoint_id, delta)
        return self.apply(checkpoint_id, staged)

    def stage(self, epoch: int, elements: list[Element]) -> dict[str, Any]:
        """Phase 1: build per-shard rows and analytical columns off to
        the side.  Crash here and nothing happened."""
        if self.injector is not None:
            self.injector.before_store_phase("stage")
        return self.store.stage_epoch(epoch, elements) | {
            "rows": len(elements)}

    def apply(self, epoch: int, staged: dict[str, Any]) -> int:
        """Phase 2: install the staged epoch (atomic per shard, guarded
        by ``last_applied_epoch``), advance the retain-watermark, then
        let the hot store flush/compact."""
        if self.injector is not None:
            self.injector.before_store_phase("apply")
        self.store.install_epoch(staged)
        self._applied_rows += staged["rows"]
        self.last_applied_epoch = epoch
        self.applied_epochs += 1
        if self._checkpoint_store is not None:
            self._checkpoint_store.consumer_applied(self.consumer_name,
                                                    epoch)
        if self.injector is not None:
            self.injector.before_store_phase("compact")
        self.store.maintain()
        return staged["rows"]
