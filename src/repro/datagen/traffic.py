"""Traffic / VANET workload (Section 3.4).

Vehicles drive a ring road under an Intelligent-Driver-Model-lite
car-following rule; every vehicle broadcasts (position, speed, heading)
beacons — the VANET share the paper describes.  A scripted slowdown
creates the shock wave whose upstream propagation the public-services
app must warn drivers about.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..util.errors import ConfigError

__all__ = ["VehicleState", "Beacon", "RingRoadSim"]


@dataclass(frozen=True)
class VehicleState:
    vehicle_id: str
    s_m: float  # arc position along the ring
    speed_mps: float


@dataclass(frozen=True)
class Beacon:
    """One VANET broadcast."""

    vehicle_id: str
    timestamp: float
    x: float
    y: float
    speed_mps: float
    heading_rad: float


class RingRoadSim:
    """Single-lane ring road with simplified IDM car following."""

    def __init__(self, rng: np.random.Generator, num_vehicles: int = 30,
                 ring_length_m: float = 2_000.0, desired_speed: float = 14.0,
                 time_headway: float = 1.5, min_gap: float = 4.0,
                 max_accel: float = 1.2, comfort_decel: float = 2.0) -> None:
        if num_vehicles < 2:
            raise ConfigError("need at least two vehicles")
        if ring_length_m <= num_vehicles * min_gap * 2:
            raise ConfigError("ring too short for vehicle count")
        self.ring = ring_length_m
        self.v0 = desired_speed
        self.t_headway = time_headway
        self.s0 = min_gap
        self.a_max = max_accel
        self.b = comfort_decel
        spacing = ring_length_m / num_vehicles
        jitter = rng.uniform(-spacing * 0.2, spacing * 0.2,
                             size=num_vehicles)
        self.positions = (np.arange(num_vehicles) * spacing + jitter) \
            % ring_length_m
        order = np.argsort(self.positions)
        self.positions = self.positions[order]
        self.speeds = np.full(num_vehicles, desired_speed * 0.8) \
            + rng.uniform(-1.0, 1.0, size=num_vehicles)
        self.ids = [f"car-{i:03d}" for i in range(num_vehicles)]
        self.time = 0.0
        self._forced_slow: dict[int, tuple[float, float, float]] = {}

    @property
    def num_vehicles(self) -> int:
        return len(self.ids)

    def force_slowdown(self, vehicle_index: int, start_s: float,
                       end_s: float, speed_mps: float) -> None:
        """Cap one vehicle's speed over [start, end] (incident script)."""
        if not 0 <= vehicle_index < self.num_vehicles:
            raise ConfigError("vehicle index out of range")
        self._forced_slow[vehicle_index] = (start_s, end_s, speed_mps)

    def step(self, dt: float = 0.5) -> None:
        """One IDM update for every vehicle."""
        n = self.num_vehicles
        new_speeds = np.empty(n)
        for i in range(n):
            lead = (i + 1) % n
            gap = (self.positions[lead] - self.positions[i]) % self.ring
            gap = max(gap - 4.0, 0.1)  # minus vehicle length
            dv = self.speeds[i] - self.speeds[lead]
            s_star = self.s0 + max(
                0.0, self.speeds[i] * self.t_headway
                + self.speeds[i] * dv / (2 * np.sqrt(self.a_max * self.b)))
            accel = self.a_max * (1 - (self.speeds[i] / self.v0) ** 4
                                  - (s_star / gap) ** 2)
            new_speeds[i] = max(0.0, self.speeds[i] + accel * dt)
            if i in self._forced_slow:
                start, end, cap = self._forced_slow[i]
                if start <= self.time <= end:
                    new_speeds[i] = min(new_speeds[i], cap)
        self.speeds = new_speeds
        self.positions = (self.positions + self.speeds * dt) % self.ring
        self.time += dt

    def xy_of(self, s_m: float) -> tuple[float, float]:
        """Ring arc position -> plane coordinates (circle embedding)."""
        radius = self.ring / (2 * np.pi)
        theta = s_m / radius
        return (radius * np.cos(theta), radius * np.sin(theta))

    def beacons(self) -> list[Beacon]:
        """Current VANET broadcast from every vehicle."""
        out = []
        radius = self.ring / (2 * np.pi)
        for i in range(self.num_vehicles):
            x, y = self.xy_of(float(self.positions[i]))
            theta = self.positions[i] / radius
            out.append(Beacon(
                vehicle_id=self.ids[i], timestamp=self.time, x=x, y=y,
                speed_mps=float(self.speeds[i]),
                heading_rad=float((theta + np.pi / 2) % (2 * np.pi))))
        return out

    def states(self) -> list[VehicleState]:
        return [VehicleState(self.ids[i], float(self.positions[i]),
                             float(self.speeds[i]))
                for i in range(self.num_vehicles)]
