#!/usr/bin/env python
"""Observability gate: span-tree completeness + instrumentation overhead.

Part 1 — completeness.  Runs the end-to-end traced reference pipeline in
all three execution modes and asserts, per mode:

- the trace forms one connected tree rooted at ``frame``;
- every produced record has a ``produce`` span and a ``consume`` span
  parented on it (causality survives the broker hop);
- the job span contains a span for the source, the sink and every
  logical operator of the reference job;
- an ``offload:frame`` (with at least one attempt) and a
  ``render:compose`` span exist;
- the (name, parent-name) multiset is identical across modes — chaining
  and batching must not change the observable trace shape.

Part 2 — overhead.  Times the reference streaming job with observability
off (no hooks), with a disabled tracer (hooks wired, ``enabled=False``)
and fully enabled (tracer + registry).  The gated statistic is the
median of within-round paired throughput ratios (see the comment in
``check_overhead`` on why): disabled must hold >= 93% of off (the ~0%
claim) and enabled >= 90% (the <5% claim), each with a noise allowance
for shared-machine CPU throttling.

Usage:  python tools/check_obs.py [--events N] [--repeats R]
        python tools/check_obs.py --skip-overhead
"""

from __future__ import annotations

import argparse
import statistics
import sys
import time
from collections import Counter

from gatelib import Gate, ensure_paths

ensure_paths()

from repro.chaos.harness import (  # noqa: E402
    reference_events,
    reference_job,
    reference_operator_names,
)
from repro.obs import Tracer, build_tree, traced_reference_run  # noqa: E402
from repro.streaming.runtime import Executor  # noqa: E402
from repro.util.metrics import MetricsRegistry  # noqa: E402

MODES = {
    "per_item": dict(batch_mode=False, chaining=False),
    "batched": dict(batch_mode=True, chaining=False),
    "chained": dict(batch_mode=True, chaining=True),
}


def _parent_shape(spans) -> Counter:
    """Multiset of (span name, parent span name) pairs."""
    by_id = {s.span_id: s for s in spans}
    return Counter((s.name,
                    by_id[s.parent_id].name if s.parent_id in by_id else None)
                   for s in spans)


def check_completeness(n_events: int) -> bool:
    print(f"== span-tree completeness ({n_events} events) ==", flush=True)
    ok = True
    shapes: dict[str, Counter] = {}
    for mode, kwargs in MODES.items():
        run = traced_reference_run(seed=0, n_events=n_events, **kwargs)
        spans = run.tracer.spans
        problems: list[str] = []

        if run.tracer.open_spans():
            problems.append(f"{len(run.tracer.open_spans())} spans left open")
        roots = build_tree(spans)
        if len(roots) != 1 or roots[0].name != "frame":
            problems.append(f"expected a single 'frame' root, got "
                            f"{[r.name for r in roots]}")

        names = Counter(s.name for s in spans)
        if names["produce"] != n_events:
            problems.append(f"produce spans: {names['produce']} != {n_events}")
        if names["consume"] != n_events:
            problems.append(f"consume spans: {names['consume']} != {n_events}")
        produce_ids = {s.span_id for s in spans if s.name == "produce"}
        orphan = sum(1 for s in spans
                     if s.name == "consume" and s.parent_id not in produce_ids)
        if orphan:
            problems.append(f"{orphan} consume spans not parented on a "
                            "produce span")

        job_nodes = [r for r in roots[0].walk()
                     if r.name.startswith("job:")]
        if len(job_nodes) != 1:
            problems.append(f"expected one job span, got {len(job_nodes)}")
        else:
            children = {c.name for c in job_nodes[0].children}
            wanted = ({f"op:{n}" for n in reference_operator_names()}
                      | {"source:events", "sink:out"})
            missing = wanted - children
            if missing:
                problems.append(f"job span missing children: "
                                f"{sorted(missing)}")

        if names["offload:frame"] != 1 or names["offload:attempt"] < 1:
            problems.append("missing offload:frame/offload:attempt spans")
        if names["render:compose"] != 1:
            problems.append("missing render:compose span")

        shapes[mode] = _parent_shape(spans)
        status = "ok" if not problems else "FAIL"
        if problems:
            ok = False
        print(f"  {mode:>9}: {len(spans)} spans  {status}")
        for p in problems:
            print(f"             - {p}")

    baseline = shapes["per_item"]
    for mode in ("batched", "chained"):
        if shapes[mode] != baseline:
            ok = False
            diff = (shapes[mode] - baseline) + (baseline - shapes[mode])
            print(f"  trace shape differs in {mode} vs per_item: "
                  f"{dict(diff)}")
    if ok:
        print("  trace shape identical across modes  ok")
    return ok


def _one_run(events, tracer, registry) -> float:
    """Elements/sec of one reference-job run under the given hooks."""
    executor = Executor(reference_job(list(events)), tracer=tracer,
                        metrics=registry)
    start = time.perf_counter()
    executor.run(source_batch=256)
    return len(events) / (time.perf_counter() - start)


def check_overhead(n_events: int, repeats: int) -> bool:
    print(f"\n== instrumentation overhead ({n_events} events, "
          f"best of {repeats}) ==", flush=True)
    events = reference_events(seed=0, n=n_events)
    # Fresh hooks per run (a shared registry would accumulate samples);
    # configs are interleaved round-robin after a warmup pass so clock
    # drift and cache warmth hit all three equally.
    configs = {
        "off": lambda: (None, None),
        "disabled": lambda: (Tracer(enabled=False), None),
        "enabled": lambda: (Tracer(), MetricsRegistry()),
    }
    rates: dict[str, list[float]] = {name: [] for name in configs}
    for name, make in configs.items():
        _one_run(events, *make())  # warmup, discarded
    for _ in range(repeats):
        for name, make in configs.items():
            rates[name].append(_one_run(events, *make()))
    # CPU throttling on shared machines swings absolute rates by more
    # than the budgets being gated, but drifts slowly — so each round's
    # configs run back-to-back and the gated statistic is the median of
    # *within-round* ratios, which cancels the drift.
    ok = True
    off = statistics.median(rates["off"])
    for label, key, budget in (("disabled tracer", "disabled", 0.93),
                               ("enabled", "enabled", 0.90)):
        ratio = statistics.median(
            r / o for r, o in zip(rates[key], rates["off"]))
        status = "ok" if ratio >= budget else "FAIL"
        if status == "FAIL":
            ok = False
        print(f"  {label:>15}: {statistics.median(rates[key]):12.0f}/s "
              f"vs off {off:12.0f}/s "
              f"(paired {ratio:6.1%}, budget >= {budget:.0%})  {status}")
    return ok


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--events", type=int, default=200,
                        help="events for the completeness runs")
    parser.add_argument("--overhead-events", type=int, default=100_000,
                        help="events per overhead run (big enough that "
                             "one run outlasts CPU-throttle bursts)")
    parser.add_argument("--repeats", type=int, default=3)
    parser.add_argument("--skip-overhead", action="store_true")
    args = parser.parse_args()

    gate = Gate("check_obs")
    ok = check_completeness(args.events)
    if not args.skip_overhead:
        ok = check_overhead(args.overhead_events, args.repeats) and ok
    return gate.verdict(ok, "trace incomplete or overhead above budget")


if __name__ == "__main__":
    sys.exit(main())
