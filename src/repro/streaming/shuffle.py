"""Keyed shuffles: stable key -> key-group -> subtask mapping.

The physical plan (see :mod:`repro.streaming.execution`) splits every
keyed operator into N subtasks.  Elements are routed to subtasks not by
hashing the key modulo N — which would make checkpoints unportable
across parallelism changes — but through a fixed intermediate space of
**key groups** (Flink's design): a key hashes to one of
``num_key_groups`` groups for the lifetime of the job, and each subtask
owns a contiguous *range* of groups that depends on the current
parallelism.  Keyed state is snapshotted *per key group*, so a
checkpoint taken at parallelism N can be restored at parallelism M by
reassigning group ranges — no state is ever split or rehashed.

Hashing uses FNV-1a over ``repr(key)`` (:func:`repro.util.ids.stable_hash`),
the same process-stable hash the eventlog producer partitions by, so a
topic keyed the same way and an operator at equal parallelism line up.
"""

from __future__ import annotations

from typing import Any, Iterable

from ..util.errors import StreamError
from ..util.ids import split_ranges, stable_hash

__all__ = [
    "DEFAULT_KEY_GROUPS",
    "key_group_for",
    "key_group_range",
    "subtask_for_key_group",
    "subtask_for_key",
    "subtasks_for_keys",
    "group_by_key_group",
    "merge_key_groups",
]

#: Default size of the key-group space — the *maximum parallelism* a
#: keyed operator can ever be rescaled to.  128 keeps snapshots small
#: while leaving generous headroom over realistic subtask counts.
DEFAULT_KEY_GROUPS = 128


def key_group_for(key: Any, num_key_groups: int) -> int:
    """The key group a key belongs to — fixed for the job's lifetime.

    Keys may be any value with a deterministic ``repr`` (strings, ints,
    floats, tuples of those); ``repr`` keeps distinct types distinct
    (``1`` vs ``"1"``) where ``str`` would collide them.
    """
    if key is None:
        raise StreamError("cannot hash-partition an unkeyed element; "
                          "add key_by() upstream of the shuffle")
    return stable_hash(repr(key)) % num_key_groups


def key_group_range(num_key_groups: int, parallelism: int,
                    subtask: int) -> range:
    """The contiguous key-group range owned by one subtask."""
    if not 0 <= subtask < parallelism:
        raise StreamError(f"subtask {subtask} outside parallelism "
                          f"{parallelism}")
    return split_ranges(num_key_groups, parallelism)[subtask]


def subtask_for_key_group(key_group: int, num_key_groups: int,
                          parallelism: int) -> int:
    """Which subtask owns a key group at the given parallelism.

    Closed form of the inverse of :func:`key_group_range`:
    ``subtask = key_group * parallelism // num_key_groups``.
    """
    if not 0 <= key_group < num_key_groups:
        raise StreamError(f"key group {key_group} outside "
                          f"[0, {num_key_groups})")
    return key_group * parallelism // num_key_groups


def subtask_for_key(key: Any, num_key_groups: int, parallelism: int) -> int:
    """Route a key straight to its subtask (hash -> group -> range)."""
    return subtask_for_key_group(key_group_for(key, num_key_groups),
                                 num_key_groups, parallelism)


def subtasks_for_keys(keys: Iterable[Any], num_key_groups: int,
                      parallelism: int) -> list[int]:
    """Subtask index per key — the dictionary-routing helper behind the
    columnar hash shuffle: hash each *distinct* key-dictionary entry
    once, then gather per row through the batch's codes column instead
    of hashing every element."""
    return [subtask_for_key_group(key_group_for(k, num_key_groups),
                                  num_key_groups, parallelism)
            for k in keys]


def group_by_key_group(data: dict[Any, Any],
                       num_key_groups: int) -> dict[int, dict[Any, Any]]:
    """Regroup a per-key state dict by key group (snapshot helper)."""
    out: dict[int, dict[Any, Any]] = {}
    for key, value in data.items():
        out.setdefault(key_group_for(key, num_key_groups), {})[key] = value
    return out


def merge_key_groups(groups: Iterable[dict[Any, Any]]) -> dict[Any, Any]:
    """Flatten key-group blobs back into one per-key dict (restore
    helper).  Groups are disjoint by construction, so plain update."""
    out: dict[Any, Any] = {}
    for blob in groups:
        out.update(blob)
    return out
