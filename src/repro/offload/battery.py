"""Battery and device-class models (the paper's "battery life" barrier).

Section 4 names battery life among the practical barriers, and Section
4.1 observes that "the trend of minimization in AR devices conflicts
with the growing volume" of data: smaller devices have smaller batteries
AND slower CPUs, which is precisely what offloading trades against.

A :class:`DeviceClass` bundles the CPU, power states and battery of a
form factor; :class:`Battery` integrates per-frame energy into lifetime.
Presets span the paper's device spectrum from phone to the Figure-3
contact lens.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..util.errors import OffloadError
from .executor import EnergyModel

__all__ = ["Battery", "DeviceClass", "DEVICE_CLASSES"]


class Battery:
    """An energy reservoir drained by frame energy."""

    def __init__(self, capacity_j: float) -> None:
        if capacity_j <= 0:
            raise OffloadError("battery capacity must be positive")
        self.capacity_j = capacity_j
        self.remaining_j = capacity_j
        self.frames_served = 0

    @property
    def fraction(self) -> float:
        return self.remaining_j / self.capacity_j

    @property
    def empty(self) -> bool:
        return self.remaining_j <= 0

    def drain(self, energy_j: float) -> bool:
        """Consume one frame's energy; False when the battery died."""
        if energy_j < 0:
            raise OffloadError("energy must be non-negative")
        if self.empty:
            return False
        self.remaining_j -= energy_j
        if self.remaining_j < 0:
            self.remaining_j = 0.0
            return False
        self.frames_served += 1
        return True

    def lifetime_hours(self, energy_per_frame_j: float, fps: float) -> float:
        """Projected battery life at a steady per-frame energy."""
        if energy_per_frame_j <= 0 or fps <= 0:
            raise OffloadError("energy and fps must be positive")
        seconds = self.capacity_j / (energy_per_frame_j * fps)
        return seconds / 3600.0


@dataclass(frozen=True)
class DeviceClass:
    """A wearable form factor: compute, power states, battery.

    Battery capacities in joules (1 Wh = 3600 J).
    """

    name: str
    cpu_hz: float
    energy: EnergyModel
    battery_j: float

    def battery(self) -> Battery:
        return Battery(self.battery_j)


# The device spectrum the paper spans: phones today, glasses (Google
# Glass era), and the Figure-3 contact lens with a tiny harvested budget.
DEVICE_CLASSES: dict[str, DeviceClass] = {
    "phone": DeviceClass(
        name="phone", cpu_hz=2.0e9,
        energy=EnergyModel(active_w=2.5, radio_w=1.2, idle_w=0.3),
        battery_j=12.0 * 3600.0),  # ~12 Wh
    "glasses": DeviceClass(
        name="glasses", cpu_hz=0.6e9,
        energy=EnergyModel(active_w=1.2, radio_w=0.8, idle_w=0.15),
        battery_j=2.1 * 3600.0),  # ~2.1 Wh (Glass-class)
    "contact-lens": DeviceClass(
        name="contact-lens", cpu_hz=0.02e9,
        energy=EnergyModel(active_w=0.02, radio_w=0.015, idle_w=0.002),
        battery_j=0.012 * 3600.0),  # ~12 mWh harvested/stored
}
